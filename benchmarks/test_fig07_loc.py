"""Figure 7: lines of code of each MACEDON protocol specification.

The paper reports that every bundled overlay is expressible in a few hundred
lines of mac code (NICE ~500, SplitStream <200, the rest in between), versus
thousands of lines for hand-written implementations.  This benchmark counts
the LOC of the specifications shipped in this reproduction and the size of the
code generated from them.
"""

from __future__ import annotations

from repro.eval.loc import expansion_factor, generated_loc, spec_loc
from repro.eval.reports import format_table
from repro.protocols import BUNDLED_PROTOCOLS


def test_fig07_specification_lines_of_code(once):
    def run():
        spec = spec_loc()
        generated = generated_loc()
        expansion = expansion_factor()
        return spec, generated, expansion

    spec, generated, expansion = once(run)

    rows = [(name, spec[name], generated[name], f"{expansion[name]:.1f}x")
            for name in sorted(spec)]
    print()
    print(format_table(["protocol", "spec LOC", "generated LOC", "expansion"],
                       rows, title="Figure 7 — specification size"))

    # Every protocol from the paper's Figure 7 is present.
    assert set(BUNDLED_PROTOCOLS) <= set(spec)
    # The paper's qualitative claims: all specs are "a few hundred lines" ...
    assert all(loc < 600 for loc in spec.values())
    # ... SplitStream is the smallest because it reuses Scribe/Pastry ...
    assert spec["splitstream"] == min(spec.values())
    assert spec["splitstream"] < 200
    # ... and every generated module is larger than its specification (the
    # bulk of the hand-written code a specification replaces lives in the
    # shared runtime, which is reused by every protocol — the paper's point).
    assert all(factor > 1.0 for factor in expansion.values())
