"""Microbenchmarks for the simulation core (kernel events/sec, emulator
packets/sec).

These are the pytest-visible companions of ``scripts/run_benchmarks.py``:
small enough to run in every test invocation, with deliberately conservative
throughput floors so they fail only on genuine order-of-magnitude
regressions (CI machines vary).  The authoritative before/after numbers live
in ``BENCH_core.json``; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import bench_emulator, bench_kernel, metrics_fingerprint

#: Floors are ~10x below the measured numbers (see BENCH_core.json) so they
#: only trip on real regressions, not machine variance.
KERNEL_FLOOR_EVENTS_PER_SEC = 40_000
EMULATOR_FLOOR_PACKETS_PER_SEC = 10_000


@pytest.mark.bench
def test_kernel_events_per_sec_floor():
    result = bench_kernel(num_events=50_000)
    assert result["has_schedule_fast"]
    assert result["events_per_sec"] > KERNEL_FLOOR_EVENTS_PER_SEC
    assert result["events_with_handles_per_sec"] > KERNEL_FLOOR_EVENTS_PER_SEC


@pytest.mark.bench
def test_emulator_packets_per_sec_floor():
    result = bench_emulator(num_hosts=100, num_packets=10_000)
    assert result["packets_per_sec"] > EMULATOR_FLOOR_PACKETS_PER_SEC
    assert result["delivered"] > 0
    # O(N)-amortised host attachment: 100 hosts must attach near-instantly.
    assert result["attach_seconds"] < 0.5


@pytest.mark.bench
@pytest.mark.determinism
def test_fingerprint_workload_is_deterministic():
    assert metrics_fingerprint() == metrics_fingerprint()
