"""Figure 9: NICE overlay end-to-end latency per site (64 members).

Same run as Figure 8, different y-axis: the absolute overlay latency from the
source to members of each site, which the paper reports as roughly 10–40 ms
across the eight sites.
"""

from __future__ import annotations

from repro.eval import ExperimentConfig, OverlayExperiment, group_by_site, mean
from repro.eval.reports import format_table
from repro.network import multi_site_topology
from repro.protocols import nice_agent

#: Published per-site latencies (ms) from the NICE paper's Figure 16, for the
#: side-by-side column.
NICE_SIGCOMM_LATENCY_MS = [12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 38.0, 42.0]

MEMBERS_PER_SITE = 8
NUM_SITES = 8


def build_and_measure():
    topology = multi_site_topology([MEMBERS_PER_SITE] * NUM_SITES, seed=91,
                                   name="nice-8-sites-latency")
    experiment = OverlayExperiment(
        [nice_agent()],
        ExperimentConfig(num_nodes=MEMBERS_PER_SITE * NUM_SITES, seed=91,
                         topology=topology, convergence_time=180.0),
    )
    experiment.init_all()
    experiment.converge()
    source = experiment.nodes[0]
    latencies = experiment.multicast_latency_probe(source, group=1, packets=5)
    site_of = {node.address: topology.client_sites.get(node.host.topology_node, 0)
               for node in experiment.nodes}
    per_site = group_by_site(latencies, site_of)
    return per_site


def test_fig09_nice_latency_distribution(once):
    per_site = once(build_and_measure)

    rows = []
    for site in range(NUM_SITES):
        values_ms = [value * 1000 for value in per_site.get(site, [])]
        rows.append((site, len(values_ms), f"{mean(values_ms):.1f}",
                     f"{NICE_SIGCOMM_LATENCY_MS[site]:.1f}"))
    print()
    print(format_table(["site", "members", "latency ms (MACEDON)",
                        "latency ms (SIGCOMM)"], rows,
                       title="Figure 9 — NICE overlay latency per site"))

    all_ms = [value * 1000 for values in per_site.values() for value in values]
    assert all_ms, "no latency samples collected"
    # Paper's range: tens of milliseconds, not seconds, and not microseconds.
    assert 1.0 < mean(all_ms) < 500.0
    # Latency must exceed the best possible single LAN hop (~1 ms).
    assert min(all_ms) >= 1.0
