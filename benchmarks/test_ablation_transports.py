"""Ablation: transport priority classes and locking classification.

Two of the design choices DESIGN.md calls out:

* **Priority-segregated transports** — the paper motivates declaring several
  blocking transports so high-priority control traffic is not head-of-line
  blocked behind bulk data.  We measure control-message latency across a
  congested bottleneck when control shares the bulk transport versus when it
  uses its own instance.
* **Read vs. write locking of transitions** — control transitions serialize
  exclusively, data transitions share the lock.  We measure the read fraction
  of lock acquisitions for a streaming workload, the quantity that determines
  how much parallelism a multi-threaded deployment could extract.
"""

from __future__ import annotations

from repro.eval import ExperimentConfig, OverlayExperiment, mean
from repro.eval.reports import format_table
from repro.apps import StreamReceiver, StreamingSource
from repro.network import dumbbell_topology
from repro.protocols import randtree_agent
from repro.runtime import MacedonNode, Simulator
from repro.network import NetworkEmulator
from repro.transport import TransportKind, TransportHost


def control_latency(separate_transport: bool, seed: int) -> float:
    """Latency of small control messages while bulk data saturates a bottleneck."""
    simulator = Simulator(seed=seed)
    topology = dumbbell_topology(clients_per_side=1,
                                 bottleneck_bandwidth=125_000.0)
    emulator = NetworkEmulator(simulator, topology)
    sender = emulator.attach_host()
    receiver_addr = emulator.attach_host()
    host = TransportHost(simulator, emulator, sender.address)
    receiver_host = TransportHost(simulator, emulator, receiver_addr.address)
    host.declare(TransportKind.TCP, "BULK")
    receiver_host.declare(TransportKind.TCP, "BULK")
    if separate_transport:
        host.declare(TransportKind.SWP, "CONTROL")
        receiver_host.declare(TransportKind.SWP, "CONTROL")
    control_name = "CONTROL" if separate_transport else "BULK"

    arrivals: dict[int, float] = {}
    sent_at: dict[int, float] = {}

    def deliver(src, payload, size, transport):
        if isinstance(payload, tuple) and payload[0] == "control":
            arrivals[payload[1]] = simulator.now

    receiver_host.set_deliver_upcall(deliver)
    host.set_deliver_upcall(lambda *args: None)

    # Saturate the bottleneck with bulk messages.
    for index in range(200):
        host.send("BULK", receiver_addr.address, ("bulk", index), 1400)
    # Interleave small control messages.
    for index in range(10):
        def send_control(i=index):
            sent_at[i] = simulator.now
            host.send(control_name, receiver_addr.address, ("control", i), 64)
        simulator.schedule(0.5 + index * 0.2, send_control)
    simulator.run(until=60.0)
    latencies = [arrivals[i] - sent_at[i] for i in arrivals if i in sent_at]
    return mean(latencies) if latencies else float("inf")


def test_ablation_priority_transports(once):
    def run():
        shared = control_latency(separate_transport=False, seed=141)
        separate = control_latency(separate_transport=True, seed=142)
        return shared, separate

    shared, separate = once(run)
    print()
    print(format_table(["configuration", "control latency ms"],
                       [("control on bulk TCP", f"{shared * 1000:.1f}"),
                        ("dedicated control transport", f"{separate * 1000:.1f}")],
                       title="Ablation — priority-segregated transports"))
    # A dedicated transport avoids head-of-line blocking behind the bulk queue.
    assert separate < shared


def test_ablation_locking_read_fraction(once):
    def run():
        experiment = OverlayExperiment(
            [randtree_agent()],
            ExperimentConfig(num_nodes=20, seed=143, convergence_time=60.0))
        experiment.init_all()
        experiment.converge()
        source = experiment.bootstrap
        receivers = [StreamReceiver(node) for node in experiment.nodes[1:]]
        streamer = StreamingSource(source, 1, rate_bps=80_000, packet_bytes=1000)
        streamer.start(duration=20.0)
        experiment.run(30.0)
        fractions = [node.lowest_agent.lock.stats.read_fraction()
                     for node in experiment.nodes]
        delivered = mean([r.packets_received for r in receivers])
        return mean(fractions), delivered

    read_fraction, delivered = once(run)
    print()
    print(f"\nAblation — locking: mean read-lock fraction under streaming = "
          f"{read_fraction:.2f} (packets delivered per node: {delivered:.0f})")
    # Under a data-heavy workload most transitions are read-locked data
    # operations, which is what the paper's multi-threaded runtime exploits.
    assert read_fraction > 0.5
    assert delivered > 0
