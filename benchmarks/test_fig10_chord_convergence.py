"""Figure 10: Chord routing-table convergence over time.

The paper joins 1000 Chord nodes, dumps every node's finger table every two
seconds, and plots the per-node average number of correct route entries for
three systems: MACEDON Chord with a 1-second fix-fingers timer, MACEDON Chord
with a 20-second timer, and MIT's lsd with its dynamically adjusted timer.
The qualitative result: the aggressive 1-second static timer converges fastest,
lsd's dynamic strategy is in between, and the 20-second timer is slowest.

Scaled down here to 60 nodes and ~80 seconds (EXPERIMENTS.md records the
mapping); the ordering of the three curves is what is asserted.  Each variant
is one declarative :class:`ScenarioSpec` — a staggered-join churn model plus
a sampled convergence series — so the same spec extends to churn/crash
variants by adding models.
"""

from __future__ import annotations

from repro.baselines import LsdChordAgent
from repro.eval import ChurnModel, SampleSeries, ScenarioSpec, average_correct_route_entries
from repro.eval.reports import format_table
from repro.protocols import chord_agent

NUM_NODES = 60
SNAPSHOT_INTERVAL = 2.0
DURATION = 80.0


def run_variant(agent_factory, protocol_name: str, fix_period: float | None,
                seed: int):
    def configure(experiment) -> None:
        if fix_period is not None:
            for node in experiment.nodes:
                node.agent(protocol_name).fix_period = fix_period

    spec = ScenarioSpec(
        name=f"fig10-{protocol_name}-{fix_period}",
        agents=lambda: [agent_factory()],
        num_nodes=NUM_NODES,
        duration=DURATION,
        seed=seed,
        models=(ChurnModel(join="staggered", join_spacing=0.25),),
        samples=(SampleSeries(
            "correct_entries", SNAPSHOT_INTERVAL,
            lambda exp: average_correct_route_entries(exp.nodes, protocol_name)),),
        configure=configure,
    )
    return spec.run().series["correct_entries"]


def area_under(series):
    """Sum of samples — a convergence-speed score (higher = faster/earlier)."""
    return sum(value for _, value in series)


def test_fig10_chord_routing_table_convergence(once):
    def run():
        fast = run_variant(chord_agent, "chord", 1.0, seed=101)
        slow = run_variant(chord_agent, "chord", 20.0, seed=101)
        lsd = run_variant(LsdChordAgent, "lsd_chord", 1.0, seed=101)
        return fast, slow, lsd

    fast, slow, lsd = once(run)

    rows = []
    for (t, f), (_, s), (_, l) in zip(fast, slow, lsd):
        rows.append((f"{t:.0f}", f"{f:.1f}", f"{l:.1f}", f"{s:.1f}"))
    print()
    print(format_table(
        ["time s", "MACEDON 1s timer", "MIT lsd (dynamic)", "MACEDON 20s timer"],
        rows, title="Figure 10 — average correct route entries over time"))

    # All three converge upward over the run.
    assert fast[-1][1] > fast[0][1]
    assert lsd[-1][1] > lsd[0][1]
    # The paper's ordering: static 1 s >= lsd dynamic >= static 20 s.
    assert area_under(fast) >= area_under(lsd) * 0.95
    assert area_under(lsd) >= area_under(slow)
    assert fast[-1][1] >= slow[-1][1]
    # The 1-second curve reaches a mostly-correct table (out of 32 entries).
    assert fast[-1][1] > 20.0
