"""Figure 11: average latency of received Pastry packets vs. number of nodes.

The paper streams 10 Kbps of 1000-byte packets from every node to uniformly
random keys after a 300-second convergence period and reports the average
per-packet latency for MACEDON Pastry and FreePastry (RMI), for 10–250 nodes.
FreePastry's latency is far higher (the paper attributes ~80 % of the gap to
RMI overhead) and it cannot be run beyond ~100 participants.

Scaled down here: fewer node counts, shorter convergence and measurement
windows.  The assertions check the paper's shape — MACEDON much faster at
every population, and the FreePastry baseline refusing to exceed its
population cap.
"""

from __future__ import annotations

import pytest

from repro.apps import RandomRouteWorkload
from repro.baselines import FreePastryAgent, FreePastryCapacityError, reset_freepastry_population
from repro.eval import ExperimentConfig, OverlayExperiment, mean
from repro.eval.reports import format_table
from repro.protocols import pastry_agent

NODE_COUNTS = [10, 25, 50, 75]
CONVERGENCE = 80.0
MEASURE = 30.0


def measure(agent_class, num_nodes: int, seed: int) -> float:
    experiment = OverlayExperiment(
        [agent_class], ExperimentConfig(num_nodes=num_nodes, seed=seed,
                                        convergence_time=CONVERGENCE))
    experiment.init_all(staggered=0.2)
    experiment.converge()
    workload = RandomRouteWorkload(experiment.nodes, rate_bps=10_000,
                                   packet_bytes=1000, seed=seed)
    workload.start(MEASURE)
    experiment.run(MEASURE + 10.0)
    workload.stop()
    return workload.average_latency()


def test_fig11_pastry_vs_freepastry_latency(once):
    def run():
        macedon = {}
        freepastry = {}
        for count in NODE_COUNTS:
            reset_freepastry_population()
            macedon[count] = measure(pastry_agent(), count, seed=110 + count)
            reset_freepastry_population()
            freepastry[count] = measure(FreePastryAgent(), count, seed=110 + count)
        return macedon, freepastry

    macedon, freepastry = once(run)

    rows = [(count, f"{macedon[count] * 1000:.1f}", f"{freepastry[count] * 1000:.1f}")
            for count in NODE_COUNTS]
    print()
    print(format_table(["nodes", "MACEDON Pastry (ms)", "FreePastry/RMI (ms)"],
                       rows, title="Figure 11 — average per-packet latency"))

    for count in NODE_COUNTS:
        assert macedon[count] > 0
        assert freepastry[count] > 0
        # FreePastry is consistently slower; the paper reports MACEDON roughly
        # 80% lower latency (i.e. FreePastry several times higher).
        assert freepastry[count] > 1.5 * macedon[count]
    overall_ratio = mean(list(freepastry.values())) / mean(list(macedon.values()))
    assert overall_ratio > 2.0

    # FreePastry cannot be pushed past its memory ceiling (~100 participants).
    reset_freepastry_population()
    with pytest.raises(FreePastryCapacityError):
        measure(FreePastryAgent(), 120, seed=999)
    reset_freepastry_population()
