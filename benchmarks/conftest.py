"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure of the MACEDON paper's
evaluation.  The experiments are scaled down from the paper's ModelNet runs
(hundreds to a thousand emulated hosts, hundreds of seconds) to sizes that run
in seconds on one machine; EXPERIMENTS.md records both the paper's numbers and
the numbers measured here, and the assertions in each benchmark check the
qualitative shape rather than absolute values.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run a macro-experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""
    def _run(fn):
        return run_once(benchmark, fn)
    return _run
