"""Section 4.1 claim: Scribe switches DHT substrate with a one-line change.

"the Scribe application-layer multicast protocol can be switched from using
Pastry to Chord by changing a single line in its MACEDON specification."
This benchmark builds Scribe over both substrates from the same specification
(overriding only the ``uses`` header) and verifies multicast delivery works on
both, reporting delivery rate and mean latency side by side.
"""

from __future__ import annotations

from repro.apps import StreamReceiver, StreamingSource
from repro.eval import ExperimentConfig, OverlayExperiment, mean
from repro.eval.reports import format_table
from repro.protocols import scribe_stack

NUM_NODES = 30
GROUP = 77


def run_over(base: str, seed: int):
    experiment = OverlayExperiment(
        scribe_stack(base=base),
        ExperimentConfig(num_nodes=NUM_NODES, seed=seed, convergence_time=100.0))
    experiment.init_all(staggered=0.2)
    experiment.converge()
    source = experiment.nodes[1]
    source.macedon_create_group(GROUP)
    experiment.run(5.0)
    receivers = [StreamReceiver(node) for node in experiment.nodes if node is not source]
    for node in experiment.nodes:
        if node is not source:
            node.macedon_join(GROUP)
    experiment.run(40.0)
    streamer = StreamingSource(source, GROUP, rate_bps=80_000, packet_bytes=1000)
    streamer.start(duration=20.0)
    experiment.run(40.0)
    sent = streamer.stats.packets_sent
    delivery = mean([r.packets_received / sent for r in receivers]) if sent else 0.0
    latency = mean([r.average_latency() for r in receivers if r.deliveries])
    return delivery, latency


def test_scribe_substrate_switch(once):
    def run():
        return run_over("pastry", seed=131), run_over("chord", seed=131)

    (pastry_delivery, pastry_latency), (chord_delivery, chord_latency) = once(run)

    print()
    print(format_table(
        ["substrate", "delivery rate", "mean latency ms"],
        [("pastry", f"{pastry_delivery:.2f}", f"{pastry_latency * 1000:.1f}"),
         ("chord", f"{chord_delivery:.2f}", f"{chord_latency * 1000:.1f}")],
        title="Scribe over two DHT substrates (one-line change)"))

    assert pastry_delivery > 0.9
    assert chord_delivery > 0.9
    assert pastry_latency > 0
    assert chord_latency > 0
