"""Overlay behaviour under the curated adversarial scenarios.

The paper's robustness claim is that generated overlays keep working through
joins, failures, and recovery; the adversarial library pushes past the
benign-churn benchmark into the stress patterns real deployments see —
flash crowds and flapping one-directional partitions.  Two library entries
are exercised here, the same two ``scripts/run_benchmarks.py`` records in
``BENCH_core.json``:

* **flash-crowd** — registry-compiled Chord absorbs a Poisson burst of
  arrivals against a small warm core, with route probes running through the
  wave;
* **scribe-flapping** — Scribe-over-Pastry multicast while the stub-domain
  uplinks flap as directed (one-way) cuts, repeatedly blackholing the path
  toward the rendezvous point.

Qualitative assertions: the faults actually bite (join burst happened,
directed cuts dropped packets), every runtime invariant holds at the end,
and delivery stays high because the protocols repair themselves.
"""

from __future__ import annotations

from repro.eval import ScenarioRunner, check_invariants, library_spec
from repro.eval.reports import format_table
from repro.protocols.ring import ring_successor_correctness

SEEDS = (1, 2, 3)


def test_flash_crowd_chord_converges_and_serves_lookups(once):
    summary = once(lambda: ScenarioRunner(library_spec("flash-crowd"),
                                          seeds=SEEDS).run())

    success = summary.metric("workload.success_ratio")
    print()
    print(format_table(
        ["metric", "mean", "min"],
        [("lookup success", f"{success.mean:.3f}", f"{success.minimum:.3f}"),
         ("crowd joins", f"{summary.metric('flashcrowd.crowd').mean:.0f}",
          f"{summary.metric('flashcrowd.crowd').minimum:.0f}")],
        title=f"Chord flash crowd, seeds {list(SEEDS)}"))

    # The burst happened: 8 crowd nodes joined on top of the 4-node core.
    assert summary.metric("flashcrowd.crowd").minimum == 8
    # Lookups keep succeeding through the arrival wave.
    assert success.minimum > 0.80
    for result in summary.results:
        # No invariant violations, and the ring absorbed the crowd.
        assert check_invariants(result) == []
        assert ring_successor_correctness(result.experiment.nodes,
                                          "chord") >= 0.8


def test_scribe_multicast_survives_flapping_directed_cuts(once):
    def run():
        return [library_spec("scribe-flapping", seed=seed).run()
                for seed in SEEDS]

    results = once(run)

    for result in results:
        # The directed cuts actually fired (two cycles, cut + heal each).
        cut_events = [detail for _, kind, detail in result.events
                      if kind == "link-cut"]
        assert len(cut_events) == 4
        assert all("->" in detail for detail in cut_events)
        # The tree repairs around the flapping uplinks: multicast delivery
        # stays high and every invariant holds at the end.
        assert result.metrics["workload.success_ratio"] > 0.80
        assert result.metrics["workload.duplicates"] == 0
        assert check_invariants(result) == []
