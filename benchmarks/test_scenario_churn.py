"""Lookup success under churn, on the generated Chord specification.

The paper's evaluation argues MACEDON overlays keep working "through joins,
failures, and recovery"; this benchmark quantifies that for the DHT routing
path: registry-compiled Chord (``specs/chord.mac``) serves random-key
lookups while 10% of the membership fail-stops and rejoins (plus a no-churn
control), executed by the scenario engine across three seeds and aggregated
by :class:`ScenarioRunner`.

Qualitative assertions (absolute numbers live in ``BENCH_core.json`` via
``scripts/run_benchmarks.py``):

* without churn, a converged ring serves essentially every lookup;
* under 10% churn, success degrades but stays above 60% — repairs (failure
  detection, successor promotion, finger pruning, rejoin) keep the overlay
  routable;
* Chord's successor pointers re-converge by the end of the run.
"""

from __future__ import annotations

from repro.eval import ChurnModel, ScenarioRunner, ScenarioSpec, WorkloadModel
from repro.eval.reports import format_table
from repro.protocols import chord_agent
from repro.protocols.ring import ring_successor_correctness
from repro.runtime.failure import FailureDetectorConfig

NUM_NODES = 20
DURATION = 240.0
CHURN_FRACTION = 0.10
SEEDS = (1, 2, 3)

FAILURE = FailureDetectorConfig(failure_timeout=10.0, heartbeat_timeout=4.0,
                                check_interval=1.0)


def churn_spec(churn_fraction: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"chord-churn-{int(churn_fraction * 100)}pct",
        agents=lambda: [chord_agent()],
        num_nodes=NUM_NODES,
        duration=DURATION,
        failure_config=FAILURE,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5,
                       churn_fraction=churn_fraction,
                       churn_start=60.0, churn_end=200.0, downtime=15.0),
            WorkloadModel(kind="route", source=-1, start=40.0,
                          packets=120, gap=1.5),
        ),
    )


def test_scenario_lookup_success_under_churn(once):
    def run():
        control = ScenarioRunner(churn_spec(0.0), seeds=SEEDS).run()
        churny = ScenarioRunner(churn_spec(CHURN_FRACTION), seeds=SEEDS).run()
        return control, churny

    control, churny = once(run)

    rows = []
    for summary in (control, churny):
        success = summary.metric("workload.success_ratio")
        latency = summary.metric("workload.latency_mean")
        rows.append((summary.name, f"{success.mean:.3f}", f"{success.stddev:.3f}",
                     f"{latency.mean * 1000:.1f}",
                     f"{summary.metric('nodes.crashes').mean:.1f}"))
    print()
    print(format_table(
        ["scenario", "lookup success", "stddev", "latency ms", "crashes"],
        rows, title=f"Chord lookups, {NUM_NODES} nodes, seeds {list(SEEDS)}"))

    assert len(control.results) == len(SEEDS)
    assert len(churny.results) == len(SEEDS)

    control_success = control.metric("workload.success_ratio")
    churn_success = churny.metric("workload.success_ratio")
    # A converged, churn-free overlay serves essentially everything.
    assert control_success.minimum > 0.95
    # Churn hurts, but repair keeps the overlay routable.
    assert churn_success.mean <= control_success.mean
    assert churn_success.mean > 0.60
    # Churn actually happened (10% of 19 non-bootstrap nodes, each run).
    assert churny.metric("nodes.crashes").minimum >= 1
    # The ring repairs itself by the end of every seeded run.
    for result in churny.results:
        assert ring_successor_correctness(result.experiment.nodes,
                                          "chord") >= 0.8
