"""Figure 8: NICE stretch distribution across 8 sites (64 members).

The paper re-creates the NICE SIGCOMM topology, runs 64 members, and compares
observed per-site stretch against the published values (roughly 1–4, higher
for distant sites).  Here the 8-site topology is reconstructed with inter-site
latencies in the published range and the same measurement is taken: overlay
multicast latency from the source divided by direct IP latency, averaged per
site.
"""

from __future__ import annotations

from repro.eval import ExperimentConfig, OverlayExperiment, group_by_site, mean, stretch_samples
from repro.eval.reports import format_table
from repro.network import multi_site_topology
from repro.protocols import nice_agent

#: Published per-site stretch from the NICE paper (Figure 15 there), eyeballed
#: from the plot; used only for side-by-side reporting.
NICE_SIGCOMM_STRETCH = [1.3, 1.6, 1.9, 2.1, 2.4, 2.8, 3.2, 3.8]

MEMBERS_PER_SITE = 8
NUM_SITES = 8


def build_and_measure():
    topology = multi_site_topology([MEMBERS_PER_SITE] * NUM_SITES, seed=81,
                                   name="nice-8-sites")
    experiment = OverlayExperiment(
        [nice_agent()],
        ExperimentConfig(num_nodes=MEMBERS_PER_SITE * NUM_SITES, seed=81,
                         topology=topology, convergence_time=180.0),
    )
    experiment.init_all()
    experiment.converge()
    source = experiment.nodes[0]
    latencies = experiment.multicast_latency_probe(source, group=1, packets=5)
    samples = stretch_samples(experiment.emulator, source.address, latencies)
    stretch_by_receiver = {s.receiver: s.stretch for s in samples}
    site_of = {}
    for node in experiment.nodes:
        site_of[node.address] = topology.client_sites.get(node.host.topology_node, 0)
    per_site = group_by_site(stretch_by_receiver, site_of)
    return per_site, latencies


def test_fig08_nice_stretch_distribution(once):
    per_site, latencies = once(build_and_measure)

    rows = []
    site_means = {}
    for site in range(NUM_SITES):
        values = per_site.get(site, [])
        site_means[site] = mean(values)
        rows.append((site, len(values), f"{mean(values):.2f}",
                     f"{NICE_SIGCOMM_STRETCH[site]:.2f}"))
    print()
    print(format_table(["site", "members", "stretch (MACEDON)", "stretch (SIGCOMM)"],
                       rows, title="Figure 8 — NICE stretch per site (64 members)"))

    measured = [value for values in per_site.values() for value in values]
    # Most members received the probe burst and produced a stretch sample.
    assert len(latencies) >= 0.8 * (MEMBERS_PER_SITE * NUM_SITES - 1)
    # The paper's range: stretch is small but above 1 (an overlay cannot beat IP
    # unicast), with per-site averages in the low single digits.
    assert all(value >= 0.99 for value in measured)
    assert mean(measured) < 8.0
    assert max(site_means.values()) < 12.0
