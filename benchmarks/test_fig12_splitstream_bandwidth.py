"""Figure 12: SplitStream per-node average bandwidth for two cache policies.

The paper builds a 300-node SplitStream forest over Scribe/Pastry, streams
1000-byte packets at 600 Kbps from one source, and plots per-node average
received bandwidth over time for two Pastry location-cache policies: no cache
eviction (≈580 Kbps sustained) versus a short cache lifetime (≈500 Kbps — the
re-resolution traffic and multi-hop detours eat into goodput).

Scaled down here (fewer nodes, lower rate, shorter run); the assertions check
the shape: both configurations deliver most of the source rate, and the
no-eviction policy delivers at least as much as the short-lifetime policy.
"""

from __future__ import annotations

from repro.apps import StreamReceiver, StreamingSource, bandwidth_timeseries
from repro.eval import ExperimentConfig, OverlayExperiment, mean
from repro.eval.reports import format_series
from repro.protocols import splitstream_stack

NUM_NODES = 40
RATE_BPS = 120_000          # scaled from the paper's 600 Kbps
PACKET_BYTES = 1000
CONVERGENCE = 120.0
STREAM_SECONDS = 60.0
BUCKET = 10.0
GROUP = 4242


def run_policy(cache_lifetime: float, seed: int):
    experiment = OverlayExperiment(
        splitstream_stack(), ExperimentConfig(num_nodes=NUM_NODES, seed=seed,
                                              convergence_time=CONVERGENCE))
    for node in experiment.nodes:
        node.agent("pastry").cache_lifetime = cache_lifetime
    experiment.init_all(staggered=0.2)
    experiment.converge()

    source = experiment.nodes[1]
    source.macedon_create_group(GROUP)
    experiment.run(10.0)
    receivers = []
    for node in experiment.nodes:
        if node is source:
            continue
        receivers.append(StreamReceiver(node))
        node.macedon_join(GROUP)
    experiment.run(40.0)

    stream_start = experiment.simulator.now
    streamer = StreamingSource(source, GROUP, rate_bps=RATE_BPS,
                               packet_bytes=PACKET_BYTES)
    streamer.start(duration=STREAM_SECONDS)
    experiment.run(STREAM_SECONDS + 15.0)
    streamer.stop()

    series = bandwidth_timeseries(receivers, start=stream_start,
                                  end=stream_start + STREAM_SECONDS, bucket=BUCKET)
    average = mean([value for _, value in series])
    return series, average


def test_fig12_splitstream_bandwidth_cache_policies(once):
    def run():
        no_eviction = run_policy(cache_lifetime=0.0, seed=121)
        short_lifetime = run_policy(cache_lifetime=1.0, seed=121)
        return no_eviction, short_lifetime

    (series_keep, avg_keep), (series_evict, avg_evict) = once(run)

    print()
    print(format_series("Figure 12 — no cache evictions (bps per node)",
                        series_keep, x_label="time s", y_label="bandwidth bps"))
    print(format_series("Figure 12 — 1 s cache lifetime (bps per node)",
                        series_evict, x_label="time s", y_label="bandwidth bps"))
    print(f"average: no-eviction={avg_keep:.0f} bps, short-lifetime={avg_evict:.0f} bps")

    # Both policies deliver a large fraction of the source rate...
    assert avg_keep > 0.5 * RATE_BPS
    assert avg_evict > 0.3 * RATE_BPS
    # ...and disabling eviction delivers at least as much as a short lifetime
    # (the paper's 580 vs 500 Kbps ordering).
    assert avg_keep >= avg_evict * 0.98
