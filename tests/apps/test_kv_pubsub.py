"""Replicated-KV and pub/sub application tests: the quorum edge cases.

The interesting KV behaviors are the degraded ones — a replica crashing
mid-read, a crash/recover cycle wiping a replica's store (stale epoch), and
partition-healed divergence mended by the anti-entropy sweep — so each gets
a scripted experiment here, driven through the same OverlayExperiment the
scenario engine uses.
"""

from __future__ import annotations

import pytest

from repro.apps import KvStore, PubSub
from repro.eval import ExperimentConfig, OverlayExperiment
from repro.eval.library import FAST_FAILURE
from repro.protocols import chord_agent, scribe_stack


def build_kv_experiment(num_nodes=10, seed=11, *, failure_config=None):
    experiment = OverlayExperiment(
        [chord_agent()],
        ExperimentConfig(num_nodes=num_nodes, seed=seed,
                         convergence_time=60.0,
                         failure_config=failure_config))
    experiment.init_all()
    experiment.converge()
    stores = {node.address: KvStore(node, replicas=3, write_quorum=2,
                                    read_quorum=2)
              for node in experiment.nodes}
    return experiment, stores


def holders_of(stores, key):
    return sorted(address for address, store in stores.items()
                  if key in store.store)


def root_of(stores, key):
    """The holder whose replica set is the other holders (the key's root)."""
    holders = set(holders_of(stores, key))
    for address in sorted(holders):
        targets = set(stores[address].replica_targets()) | {address}
        if holders <= targets:
            return address
    raise AssertionError(f"no root among holders {sorted(holders)}")


def test_quorum_validation():
    experiment, stores = build_kv_experiment(num_nodes=4, seed=3)
    node = experiment.nodes[0]
    with pytest.raises(ValueError, match="replicas"):
        KvStore(node, replicas=0)
    with pytest.raises(ValueError, match="quorums"):
        KvStore(node, replicas=3, write_quorum=4)
    with pytest.raises(ValueError, match="quorums"):
        KvStore(node, replicas=3, read_quorum=0)


def test_put_then_get_reads_written_version():
    experiment, stores = build_kv_experiment()
    client = stores[experiment.nodes[0].address]
    key = 12345
    client.put(key, version=7, seqno=1)
    experiment.run(5.0)
    assert [record.kind for record in client.completed] == ["put"]
    assert client.completed[0].acks >= 2
    # The write landed on a full replica set.
    assert len(holders_of(stores, key)) == 3

    client.get(key, seqno=2)
    experiment.run(5.0)
    assert [record.kind for record in client.completed] == ["put", "get"]
    read = client.completed[-1]
    assert read.version == 7
    assert read.acks >= 2


def test_read_completes_with_replica_crashed_mid_read():
    """Q=2 of N=3: a non-root replica dying between write and read must not
    cost the quorum or the version."""
    experiment, stores = build_kv_experiment(failure_config=FAST_FAILURE)
    client = stores[experiment.nodes[0].address]
    key = 777
    client.put(key, version=9, seqno=1)
    experiment.run(5.0)
    root = root_of(stores, key)
    victim = next(address for address in holders_of(stores, key)
                  if address != root)
    experiment.crash_node(experiment.node(victim))
    # Let failure detection evict the corpse from routing tables so the
    # read's route does not dead-end on the crashed hop.
    experiment.run(20.0)

    client.get(key, seqno=2)
    experiment.run(5.0)
    read = client.completed[-1]
    assert read.kind == "get"
    assert read.version == 9
    # Root + surviving replica answered; the corpse did not.
    assert read.acks == 2


def test_stale_epoch_replica_recovers_empty_and_read_still_correct():
    """Fail-stop loses the store: after crash/recover the replica's epoch
    check wipes its state, it answers reads with version -1, and the quorum
    max still returns the real version from the survivors."""
    experiment, stores = build_kv_experiment(failure_config=FAST_FAILURE)
    client = stores[experiment.nodes[0].address]
    key = 4242
    client.put(key, version=5, seqno=1)
    experiment.run(5.0)
    root = root_of(stores, key)
    victim = next(address for address in holders_of(stores, key)
                  if address != root)
    victim_node = experiment.node(victim)
    experiment.crash_node(victim_node)
    experiment.run(2.0)
    experiment.recover_node(victim_node)
    experiment.run(10.0)

    # The store survives as an object but its state must not survive the
    # crash: the lazy epoch check wipes it on the next touch.
    stores[victim]._check_epoch()
    assert key not in stores[victim].store

    client.get(key, seqno=2)
    experiment.run(5.0)
    read = client.completed[-1]
    assert read.kind == "get"
    assert read.version == 5


def test_partition_healed_divergence_mended_by_repair():
    """A minority cut off from the replica set falls behind; after the heal
    an anti-entropy sweep re-routes every stored key to its current root,
    restoring the full replica set at the newest version."""
    experiment, stores = build_kv_experiment(num_nodes=10, seed=11,
                                             failure_config=FAST_FAILURE)
    client = stores[experiment.nodes[0].address]
    key = 31337
    client.put(key, version=1, seqno=1)
    experiment.run(5.0)
    holders = holders_of(stores, key)
    assert len(holders) == 3
    root = root_of(stores, key)
    straggler = next(address for address in holders if address != root)

    # Cut one replica off, then write a newer version from the majority side.
    indices = {node.address: index
               for index, node in enumerate(experiment.nodes)}
    majority = [index for address, index in indices.items()
                if address != straggler]
    experiment.partition([majority, [indices[straggler]]])
    client.put(key, version=2, seqno=2)
    experiment.run(30.0)
    assert client.completed[-1].kind == "put"
    # Divergence: the cut-off replica still serves the old version.
    assert stores[straggler].store[key] == 1

    experiment.heal_partition()
    experiment.run(30.0)
    for store in stores.values():
        store.repair()
    experiment.run(10.0)

    client.get(key, seqno=3)
    experiment.run(5.0)
    assert client.completed[-1].version == 2
    # Anti-entropy re-established a full replica set at the newest version
    # (membership may have shifted across the partition, so the set need not
    # be the original holders; a stale ex-replica keeping v1 is harmless
    # because reads never consult it).
    v2_holders = [address for address in holders_of(stores, key)
                  if stores[address].store[key] == 2]
    assert len(v2_holders) >= 3


def test_kv_chains_foreign_payloads_to_previous_handler():
    experiment, stores = build_kv_experiment(num_nodes=4, seed=3)
    node = experiment.nodes[1]
    seen = []
    # KvStore was installed on top of this handler by build_kv_experiment,
    # so re-create the layering explicitly on a fresh node pair.
    node.macedon_register_handlers(
        deliver=lambda payload, size, mtype: seen.append(payload))
    store = KvStore(node)
    experiment.nodes[0].macedon_route(node.highest_agent.my_key,
                                      "plain-text", 64)
    experiment.run(5.0)
    assert "plain-text" in seen
    assert store.completed == []


def build_pubsub_experiment(num_nodes=12, seed=21):
    experiment = OverlayExperiment(
        [agent for agent in scribe_stack("pastry")],
        ExperimentConfig(num_nodes=num_nodes, seed=seed,
                         convergence_time=60.0))
    experiment.init_all()
    experiment.converge()
    apps = {node.address: PubSub(node) for node in experiment.nodes}
    return experiment, apps


def test_pubsub_topic_delivery_and_dedup():
    experiment, apps = build_pubsub_experiment()
    addresses = [node.address for node in experiment.nodes]
    publisher = apps[addresses[0]]
    members = addresses[1:7]
    publisher.create_topic(3)
    experiment.run(2.0)
    for address in members:
        apps[address].subscribe(3)
    experiment.run(10.0)

    for seqno in range(5):
        publisher.publish(3, seqno, size=500)
        experiment.run(1.0)
    experiment.run(10.0)

    for address in members:
        delivered = {delivery.seqno for delivery in apps[address].deliveries}
        assert delivered == {0, 1, 2, 3, 4}, address
        assert apps[address].duplicates == 0
        for delivery in apps[address].deliveries:
            assert delivery.topic == 3
            assert delivery.source == addresses[0]
            assert delivery.latency > 0
    # Scribe never redelivers to the origin.
    assert publisher.deliveries == []
    # Non-members heard nothing.
    for address in addresses[7:]:
        assert apps[address].deliveries == []


def test_pubsub_unsubscribe_stops_delivery():
    experiment, apps = build_pubsub_experiment(num_nodes=8, seed=9)
    addresses = [node.address for node in experiment.nodes]
    publisher = apps[addresses[0]]
    publisher.create_topic(0)
    experiment.run(2.0)
    for address in addresses[1:4]:
        apps[address].subscribe(0)
    experiment.run(10.0)

    publisher.publish(0, 100)
    experiment.run(5.0)
    leaver = apps[addresses[1]]
    assert [delivery.seqno for delivery in leaver.deliveries] == [100]
    leaver.unsubscribe(0)
    experiment.run(5.0)
    publisher.publish(0, 101)
    experiment.run(5.0)
    assert [delivery.seqno for delivery in leaver.deliveries] == [100]
    assert {delivery.seqno for delivery in apps[addresses[2]].deliveries} \
        == {100, 101}
