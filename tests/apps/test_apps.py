"""Tests for the streaming and random-route test applications."""

from __future__ import annotations

import pytest

from repro.apps import (
    AppPayload,
    RandomRouteWorkload,
    StreamReceiver,
    StreamingSource,
    bandwidth_timeseries,
)
from repro.eval import ExperimentConfig, OverlayExperiment
from repro.protocols import chord_agent, randtree_agent


def test_app_payload_tag_stable():
    payload = AppPayload(seqno=3, sent_at=1.0, source=42, stream_id=7)
    assert payload.tag == "app:7:42:3"


def build_tree_experiment():
    experiment = OverlayExperiment([randtree_agent()],
                                   ExperimentConfig(num_nodes=12, seed=61,
                                                    convergence_time=60.0))
    experiment.init_all()
    experiment.converge()
    return experiment


def test_streaming_source_rate_and_delivery():
    experiment = build_tree_experiment()
    source = experiment.bootstrap
    receivers = [StreamReceiver(node) for node in experiment.nodes[1:]]
    streamer = StreamingSource(source, group=1, rate_bps=80_000, packet_bytes=1000)
    start = experiment.simulator.now
    streamer.start(duration=10.0)
    experiment.run(20.0)
    # 80 kbps of 1000-byte packets = 10 packets/second for 10 seconds.
    assert streamer.stats.packets_sent == pytest.approx(100, abs=2)
    for receiver in receivers:
        assert receiver.packets_received >= 0.9 * streamer.stats.packets_sent
        assert receiver.average_latency() > 0
        assert receiver.loss_rate(streamer.stats.packets_sent) <= 0.1
    series = bandwidth_timeseries(receivers, start=start, end=start + 10.0, bucket=2.0)
    assert len(series) == 5
    assert all(value > 0 for _, value in series[1:])


def test_streaming_source_stop_and_validation():
    experiment = build_tree_experiment()
    with pytest.raises(ValueError):
        StreamingSource(experiment.bootstrap, 1, rate_bps=0)
    streamer = StreamingSource(experiment.bootstrap, 1, rate_bps=10_000)
    streamer.start()
    experiment.run(1.0)
    streamer.stop()
    sent = streamer.stats.packets_sent
    experiment.run(5.0)
    assert streamer.stats.packets_sent == sent


def test_stream_receiver_deduplicates_and_filters():
    experiment = build_tree_experiment()
    node = experiment.nodes[1]
    receiver = StreamReceiver(node, stream_id=5)
    payload = AppPayload(seqno=1, sent_at=0.0, source=9, stream_id=5)
    node.app_deliver(node.lowest_agent, payload, 100, 0)
    node.app_deliver(node.lowest_agent, payload, 100, 0)            # duplicate
    other = AppPayload(seqno=1, sent_at=0.0, source=9, stream_id=6)  # other stream
    node.app_deliver(node.lowest_agent, other, 100, 0)
    node.app_deliver(node.lowest_agent, "not-a-payload", 100, 0)
    assert receiver.packets_received == 1


def test_bandwidth_timeseries_validation():
    with pytest.raises(ValueError):
        bandwidth_timeseries([], start=0, end=10, bucket=0)


def test_random_route_workload_on_chord():
    experiment = OverlayExperiment([chord_agent()],
                                   ExperimentConfig(num_nodes=15, seed=62,
                                                    convergence_time=90.0))
    experiment.init_all()
    experiment.converge()
    workload = RandomRouteWorkload(experiment.nodes, rate_bps=20_000,
                                   packet_bytes=1000, seed=1)
    workload.start(duration=10.0)
    experiment.run(25.0)
    workload.stop()
    assert workload.packets_sent > 100
    assert workload.delivery_rate() > 0.9
    assert workload.average_latency() > 0
    assert sum(workload.per_receiver_counts().values()) == len(workload.samples)


def test_random_route_workload_requires_nodes():
    with pytest.raises(ValueError):
        RandomRouteWorkload([])
