"""Reliable-transport behaviour across fail-stop restarts (incarnation epochs).

A restarted host starts its reliable streams from sequence zero while peers
still hold pre-crash connection state.  Without the epoch handshake the two
sides deadlock on mismatched sequence numbers — or worse, a retransmission of
pre-crash traffic poisons the fresh receive window and later shadows a
genuine same-sequence segment.  These tests pin the reset semantics.
"""

from __future__ import annotations

from repro.network.emulator import NetworkEmulator
from repro.network.topology import transit_stub_topology
from repro.runtime.engine import Simulator
from repro.transport.base import TransportKind
from repro.transport.demux import TransportHost


def build():
    simulator = Simulator(seed=21)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=21))
    p = emulator.attach_host().address
    x = emulator.attach_host().address
    return simulator, emulator, p, x


def tcp_host(simulator, emulator, address, inbox, epoch=0):
    host = TransportHost(simulator, emulator, address, epoch=epoch)
    host.declare(TransportKind.TCP, "T")
    host.set_deliver_upcall(
        lambda src, payload, size, name: inbox.append(payload))
    return host


def test_stale_pre_crash_retransmission_cannot_poison_fresh_stream():
    simulator, emulator, p, x = build()
    p_inbox, x_inbox = [], []
    host_p = tcp_host(simulator, emulator, p, p_inbox)
    host_x = tcp_host(simulator, emulator, x, x_inbox)

    # Established stream: two messages delivered normally.
    host_p.send("T", x, "a", 100)
    host_p.send("T", x, "b", 100)
    simulator.run(until=2.0)
    assert x_inbox == ["a", "b"]

    # X fail-stops; P keeps (re)transmitting "c" into the void.
    host_x.shutdown()
    emulator.detach_host(x)
    host_p.send("T", x, "c", 100)
    simulator.run(until=8.0)

    # X recovers with a bumped incarnation and a fresh transport subsystem.
    emulator.reattach_host(x)
    x_inbox2: list = []
    tcp_host(simulator, emulator, x, x_inbox2, epoch=1)
    # Let P's pending retransmission of the old-stream "c" hit the fresh
    # host: it must be challenged away, never buffered.
    simulator.run(until=40.0)
    assert x_inbox2 == []

    # New traffic flows on a fresh stream, in order, exactly once — and the
    # sequence slot the stale "c" occupied is not shadowed.
    for payload in ("d", "e", "f"):
        host_p.send("T", x, payload, 100)
    simulator.run(until=80.0)
    assert x_inbox2 == ["d", "e", "f"]


def test_restarted_sender_resets_peer_connection():
    simulator, emulator, p, x = build()
    p_inbox, x_inbox = [], []
    tcp_host(simulator, emulator, p, p_inbox)
    host_x = tcp_host(simulator, emulator, x, x_inbox)

    host_x.send("T", p, "one", 100)
    simulator.run(until=2.0)
    assert p_inbox == ["one"]

    # X restarts and immediately talks again from sequence zero: P must
    # reset rather than discard the new stream as duplicates.
    host_x.shutdown()
    emulator.detach_host(x)
    simulator.run(until=4.0)
    emulator.reattach_host(x)
    host_x2 = tcp_host(simulator, emulator, x, [], epoch=1)
    host_x2.send("T", p, "two", 100)
    host_x2.send("T", p, "three", 100)
    simulator.run(until=10.0)
    assert p_inbox == ["one", "two", "three"]
