"""Tests for the transport subsystem (UDP, TCP, SWP, and the demux)."""

from __future__ import annotations

import pytest

from repro.network.emulator import NetworkEmulator
from repro.network.topology import dumbbell_topology, transit_stub_topology
from repro.runtime.engine import Simulator
from repro.transport import (
    AimdWindow,
    FixedWindow,
    TransportError,
    TransportHost,
    TransportKind,
)


def make_pair(*, loss=0.0, bottleneck=None, seed=1):
    simulator = Simulator(seed=seed)
    if bottleneck is None:
        topology = transit_stub_topology(4, seed=seed)
    else:
        topology = dumbbell_topology(clients_per_side=1,
                                     bottleneck_bandwidth=bottleneck)
    emulator = NetworkEmulator(simulator, topology, random_loss_rate=loss)
    a = emulator.attach_host()
    b = emulator.attach_host()
    host_a = TransportHost(simulator, emulator, a.address)
    host_b = TransportHost(simulator, emulator, b.address)
    return simulator, host_a, host_b, a.address, b.address


def collect(host):
    sink = []
    host.set_deliver_upcall(lambda src, payload, size, name: sink.append((src, payload, size, name)))
    return sink


@pytest.mark.parametrize("kind", [TransportKind.UDP, TransportKind.TCP, TransportKind.SWP])
def test_basic_delivery_all_kinds(kind):
    simulator, host_a, host_b, addr_a, addr_b = make_pair()
    host_a.declare(kind, "X")
    host_b.declare(kind, "X")
    received = collect(host_b)
    collect(host_a)
    host_a.send("X", addr_b, {"n": 1}, 200)
    simulator.run(until=10)
    assert len(received) == 1
    src, payload, size, name = received[0]
    assert src == addr_a and payload == {"n": 1} and size == 200 and name == "X"


def test_udp_loses_packets_without_recovery():
    simulator, host_a, host_b, _, addr_b = make_pair(loss=0.5, seed=7)
    host_a.declare(TransportKind.UDP, "U")
    host_b.declare(TransportKind.UDP, "U")
    received = collect(host_b)
    collect(host_a)
    for index in range(100):
        host_a.send("U", addr_b, index, 100)
    simulator.run(until=30)
    assert 0 < len(received) < 100


def test_tcp_recovers_from_loss():
    simulator, host_a, host_b, _, addr_b = make_pair(loss=0.15, seed=8)
    host_a.declare(TransportKind.TCP, "T")
    host_b.declare(TransportKind.TCP, "T")
    received = collect(host_b)
    collect(host_a)
    for index in range(30):
        host_a.send("T", addr_b, index, 200)
    simulator.run(until=600)
    assert len(received) == 30
    transport = host_a.get("T")
    assert transport.stats.retransmissions > 0


def test_swp_recovers_from_loss():
    simulator, host_a, host_b, _, addr_b = make_pair(loss=0.2, seed=9)
    host_a.declare(TransportKind.SWP, "S")
    host_b.declare(TransportKind.SWP, "S")
    received = collect(host_b)
    collect(host_a)
    for index in range(30):
        host_a.send("S", addr_b, index, 200)
    simulator.run(until=300)
    assert len(received) == 30


def test_tcp_in_order_delivery():
    simulator, host_a, host_b, _, addr_b = make_pair(loss=0.15, seed=10)
    host_a.declare(TransportKind.TCP, "T")
    host_b.declare(TransportKind.TCP, "T")
    received = collect(host_b)
    collect(host_a)
    for index in range(40):
        host_a.send("T", addr_b, index, 150)
    simulator.run(until=300)
    payloads = [payload for _, payload, _, _ in received]
    assert payloads == sorted(payloads)


def test_large_message_fragmentation_and_reassembly():
    simulator, host_a, host_b, _, addr_b = make_pair(seed=11)
    host_a.declare(TransportKind.TCP, "T")
    host_b.declare(TransportKind.TCP, "T")
    received = collect(host_b)
    collect(host_a)
    host_a.send("T", addr_b, "big", 10_000)
    simulator.run(until=60)
    assert len(received) == 1
    assert received[0][2] == 10_000
    assert host_a.get("T").stats.segments_sent > 5


def test_aimd_window_behaviour():
    window = AimdWindow(initial_window=2.0, ssthresh=8.0)
    for _ in range(10):
        window.on_ack(1)
    assert window.cwnd > 8.0          # passed slow start into congestion avoidance
    before = window.cwnd
    window.on_timeout()
    assert window.cwnd == 1.0
    assert window.ssthresh == pytest.approx(max(before / 2, 2.0))
    window.on_fast_retransmit()
    assert window.cwnd <= before


def test_fixed_window_never_adapts():
    window = FixedWindow(window_size=4)
    window.on_ack(10)
    window.on_timeout()
    assert window.window() == 4.0


def test_congestion_limits_throughput_on_bottleneck():
    simulator, host_a, host_b, _, addr_b = make_pair(bottleneck=50_000.0, seed=12)
    host_a.declare(TransportKind.TCP, "T")
    host_b.declare(TransportKind.TCP, "T")
    received = collect(host_b)
    collect(host_a)
    for index in range(100):
        host_a.send("T", addr_b, index, 1400)
    simulator.run(until=5.0)
    delivered_bytes = sum(size for _, _, size, _ in received)
    # 50 kB/s bottleneck for ~5 s cannot deliver much more than ~250 kB.
    assert delivered_bytes <= 300_000
    assert delivered_bytes > 0


def test_demux_rejects_duplicate_and_unknown_names():
    simulator, host_a, host_b, _, addr_b = make_pair(seed=13)
    host_a.declare(TransportKind.TCP, "T")
    with pytest.raises(TransportError):
        host_a.declare(TransportKind.UDP, "T")
    with pytest.raises(TransportError):
        host_a.send("UNKNOWN", addr_b, None, 10)
    assert "T" in host_a
    assert host_a.names == ["T"]


def test_default_transport_created_on_demand():
    simulator, host_a, host_b, _, addr_b = make_pair(seed=14)
    transport = host_a.ensure_default()
    host_b.ensure_default()
    received = collect(host_b)
    collect(host_a)
    host_a.send(host_a.DEFAULT_TRANSPORT, addr_b, "x", 10)
    simulator.run(until=10)
    assert transport.kind == TransportKind.TCP
    assert len(received) == 1


def test_queued_bytes_reporting():
    simulator, host_a, host_b, _, addr_b = make_pair(bottleneck=10_000.0, seed=15)
    host_a.declare(TransportKind.TCP, "T")
    host_b.declare(TransportKind.TCP, "T")
    collect(host_b)
    collect(host_a)
    for index in range(50):
        host_a.send("T", addr_b, index, 1400)
    assert host_a.get("T").queued_bytes(addr_b) > 0
    assert host_a.get("T").connection_count() == 1
