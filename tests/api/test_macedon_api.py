"""Tests for the overlay-generic MACEDON API surface."""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import (
    MacedonAPI,
    macedon_create_group,
    macedon_init,
    macedon_join,
    macedon_multicast,
    macedon_register_handlers,
    macedon_route,
)
from repro.api.handlers import Handlers
from repro.network import NetworkEmulator, transit_stub_topology
from repro.protocols import randtree_agent, scribe_stack
from repro.runtime import MacedonNode, Simulator


@dataclass(frozen=True)
class Pkt:
    seqno: int


def build_nodes(stack, count, seed=91):
    simulator = Simulator(seed=seed)
    emulator = NetworkEmulator(simulator, transit_stub_topology(count, seed=seed))
    nodes = [MacedonNode(simulator, emulator, stack) for _ in range(count)]
    return simulator, nodes


def test_handlers_dataclass():
    handlers = Handlers()
    assert not handlers.any_registered()
    handlers = Handlers(deliver=lambda p, s, t: None)
    assert handlers.any_registered()


def test_object_api_mirrors_node_operations():
    simulator, nodes = build_nodes([randtree_agent()], 6)
    apis = [MacedonAPI(node) for node in nodes]
    got = []
    for api, node in zip(apis, nodes):
        api.register_handlers(deliver=lambda p, s, t: got.append(s))
        api.init(nodes[0].address)
    simulator.run(until=60)
    assert apis[0].address == nodes[0].address
    assert apis[0].key == nodes[0].highest_agent.my_key
    apis[0].multicast(1, Pkt(0), 500)
    simulator.run(until=80)
    assert len(got) == len(nodes) - 1
    assert all(size == 500 for size in got)


def test_c_style_api_functions_drive_scribe_session():
    simulator, nodes = build_nodes(scribe_stack(), 12, seed=92)
    received = []
    for node in nodes:
        macedon_register_handlers(node, deliver=lambda p, s, t: received.append(s))
        macedon_init(node, nodes[0].address)
    simulator.run(until=120)
    source = nodes[1]
    macedon_create_group(source, 55)
    simulator.run(until=125)
    for node in nodes:
        if node is not source:
            macedon_join(node, 55)
    simulator.run(until=160)
    macedon_multicast(source, 55, Pkt(1), 800)
    simulator.run(until=200)
    assert len(received) >= len(nodes) - 1


def test_application_switches_overlay_without_code_changes():
    """The same application code runs over two different overlays."""

    def run_app(stack, group, seed):
        simulator, nodes = build_nodes(stack, 10, seed=seed)
        delivered = []
        for node in nodes:
            node.macedon_register_handlers(deliver=lambda p, s, t: delivered.append(p))
            node.macedon_init(nodes[0].address)
        simulator.run(until=120)
        source = nodes[0]
        source.macedon_create_group(group)
        simulator.run(until=125)
        for node in nodes[1:]:
            node.macedon_join(group)
        simulator.run(until=160)
        source.macedon_multicast(group, Pkt(9), 600)
        simulator.run(until=200)
        return len(delivered)

    over_tree = run_app([randtree_agent()], 7, seed=93)
    over_scribe = run_app(scribe_stack(), 7, seed=94)
    assert over_tree >= 9
    assert over_scribe >= 9


def test_route_via_functional_api():
    simulator, nodes = build_nodes([randtree_agent()], 4, seed=95)
    for node in nodes:
        macedon_init(node, nodes[0].address)
    simulator.run(until=30)
    seen = []
    nodes[0].macedon_register_handlers(deliver=lambda p, s, t: seen.append(p))
    # randtree 'route' pushes toward the root, which delivers.
    macedon_route(nodes[2], 0, Pkt(3), 100)
    simulator.run(until=40)
    assert seen and seen[0] == Pkt(3)
