"""Tests for the lsd-Chord and FreePastry baselines."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FreePastryAgent,
    FreePastryCapacityError,
    LsdChordAgent,
    reset_freepastry_population,
)
from repro.eval import ExperimentConfig, OverlayExperiment, average_correct_route_entries
from repro.protocols import pastry_agent


def test_lsd_chord_joins_and_adapts_timer():
    experiment = OverlayExperiment([LsdChordAgent()],
                                   ExperimentConfig(num_nodes=20, seed=71,
                                                    convergence_time=120.0))
    experiment.init_all(staggered=0.2)
    experiment.converge()
    agents = [node.agent("lsd_chord") for node in experiment.nodes]
    assert all(agent.state == "joined" for agent in agents)
    # The adaptive policy actually adjusted periods, and periods stay in bounds.
    assert sum(agent.fix_adjustments for agent in agents) > 0
    for agent in agents:
        assert agent.MIN_FIX_PERIOD <= agent.fix_period <= agent.MAX_FIX_PERIOD
    # Routing tables converge like regular Chord's.
    assert average_correct_route_entries(experiment.nodes, "lsd_chord") > 20


def test_freepastry_population_cap_and_reset():
    reset_freepastry_population()
    agent_class = FreePastryAgent()
    assert agent_class.MAX_POPULATION == 100
    experiment = OverlayExperiment([agent_class],
                                   ExperimentConfig(num_nodes=10, seed=72,
                                                    convergence_time=60.0))
    assert agent_class.population == 10
    reset_freepastry_population()
    assert agent_class.population == 0


def test_freepastry_slower_than_macedon_pastry_on_same_workload():
    reset_freepastry_population()

    def average_join_latency(cls, seed):
        experiment = OverlayExperiment([cls], ExperimentConfig(num_nodes=12, seed=seed,
                                                               convergence_time=90.0))
        experiment.init_all()
        experiment.converge()
        latencies = experiment.multicast_latency_probe(
            experiment.nodes[1], group=1, packets=2)
        # Pastry has no multicast transition; fall back to a routed probe below.
        return experiment

    # Use direct per-message delay instead: send one route and time delivery.
    def routed_latency(cls, seed):
        experiment = OverlayExperiment([cls], ExperimentConfig(num_nodes=12, seed=seed,
                                                               convergence_time=90.0))
        experiment.init_all()
        experiment.converge()
        target = experiment.nodes[5]
        arrival = {}
        target.macedon_register_handlers(
            deliver=lambda p, s, t: arrival.setdefault("t", experiment.simulator.now))
        start = experiment.simulator.now
        experiment.nodes[9].macedon_route(target.lowest_agent.my_key, None, 500)
        experiment.run(20.0)
        reset_freepastry_population()
        assert "t" in arrival
        return arrival["t"] - start

    macedon = routed_latency(pastry_agent(), seed=73)
    freepastry = routed_latency(FreePastryAgent(), seed=73)
    assert freepastry > macedon


def test_freepastry_capacity_error_raised():
    reset_freepastry_population()
    agent_class = FreePastryAgent()
    with pytest.raises(FreePastryCapacityError):
        OverlayExperiment([agent_class],
                          ExperimentConfig(num_nodes=agent_class.MAX_POPULATION + 5,
                                           seed=74, convergence_time=10.0))
    reset_freepastry_population()
