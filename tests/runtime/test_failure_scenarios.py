"""Failure-detector behaviour under scenario-driven crashes.

The paper's runtime declares a peer failed after *f* seconds of silence and
solicits a heartbeat exchange after *g* < *f* seconds.  These tests drive
real fail-stop crashes through the scenario engine's :class:`CrashModel`
and pin the three properties that matter:

* a heartbeat is solicited once silence passes *g* (and not before);
* the ``error`` API transition fires once silence passes *f*, so the
  protocol repairs its neighbor sets;
* heartbeat-only traffic (no protocol chatter at all) keeps a live peer
  alive indefinitely — no false positives.
"""

from __future__ import annotations

from repro.eval import CrashModel, ExperimentConfig, OverlayExperiment
from repro.protocols.ring import ring_agent
from repro.runtime.failure import FailureDetectorConfig

F = 10.0   # failure timeout (paper's f)
G = 4.0    # heartbeat timeout (paper's g)
CHECK = 1.0


def build_pair():
    """Bootstrap + one joined peer, mutually monitored via the ring set."""
    experiment = OverlayExperiment(
        [ring_agent()],
        ExperimentConfig(num_nodes=2, seed=3, convergence_time=300.0,
                         failure_config=FailureDetectorConfig(
                             failure_timeout=F, heartbeat_timeout=G,
                             check_interval=CHECK)))
    experiment.init_all()
    experiment.run(20.0)
    a, b = experiment.nodes
    assert a.lowest_agent.successor == b.address
    assert b.lowest_agent.successor == a.address
    assert a.failure_detector.monitored_peers() == [b.address]
    assert b.failure_detector.monitored_peers() == [a.address]
    return experiment, a, b


def quiet_protocol_traffic(experiment) -> None:
    """Cancel ring maintenance so only runtime heartbeats remain."""
    for node in experiment.nodes:
        node.lowest_agent.timer_cancel("stabilize")
        node.lowest_agent.timer_cancel("join_retry")
    # Drain anything already queued or in flight.
    experiment.run(5.0)


def test_heartbeat_solicited_after_g_but_not_before():
    experiment, a, b = build_pair()
    quiet_protocol_traffic(experiment)
    crash_time = experiment.simulator.now
    experiment.apply_model(CrashModel(at=0.0, victims=(1,), exempt=()))
    baseline = a.failure_detector.stats.heartbeats_sent

    # Strictly inside the g window: no solicitation yet.
    experiment.run(G - 2 * CHECK)
    assert a.failure_detector.stats.heartbeats_sent == baseline

    # Past g (plus sweep slack): the detector starts soliciting heartbeats.
    experiment.run(3 * CHECK)
    assert experiment.simulator.now - crash_time < F
    assert a.failure_detector.stats.heartbeats_sent > baseline


def test_error_upcall_fires_at_f_and_prunes_neighbors():
    experiment, a, b = build_pair()
    quiet_protocol_traffic(experiment)
    experiment.apply_model(CrashModel(at=0.0, victims=(1,), exempt=()))

    experiment.run(F + 2 * CHECK)
    detector = a.failure_detector
    assert detector.stats.failures_declared == 1
    assert detector.monitored_peers() == []
    agent = a.lowest_agent
    # The ring agent's error transition removed the dead peer and fell back
    # to a singleton ring.
    assert not agent.ring_set.query(b.address)
    assert agent.successor == a.address
    assert agent.predecessor == 0


def test_heartbeat_only_traffic_prevents_false_positives():
    experiment, a, b = build_pair()
    quiet_protocol_traffic(experiment)
    # Nobody crashes; the only packets from here on are heartbeat pings and
    # pongs solicited by the detectors themselves.
    experiment.run(5 * F)
    for node in (a, b):
        assert node.failure_detector.stats.failures_declared == 0
        assert node.failure_detector.stats.heartbeats_sent > 0
    assert a.lowest_agent.successor == b.address
    assert b.lowest_agent.successor == a.address


def test_recovered_peer_is_detected_and_ring_reforms():
    experiment, a, b = build_pair()
    experiment.apply_model(CrashModel(at=0.0, victims=(1,), exempt=(),
                                      recover_after=F + 10.0))
    experiment.run(F + 5.0)
    assert a.lowest_agent.successor == a.address   # b declared dead
    experiment.run(60.0)                           # b recovers and rejoins
    assert b.alive and b.initialized
    assert a.lowest_agent.successor == b.address
    assert b.lowest_agent.successor == a.address
