"""Shard partitioner coverage: assignment totality, domain integrity,
client/access-router co-location, and degenerate-topology fallbacks."""

from __future__ import annotations

import pytest

from repro.network.topology import (
    ROLE_ATTR,
    dumbbell_topology,
    multi_site_topology,
    transit_stub_topology,
)
from repro.runtime.sharded.partition import (
    ShardPlanError,
    plan_shards,
    stub_domains,
)


@pytest.fixture(scope="module")
def topology():
    return transit_stub_topology(48, seed=3)


def test_every_host_assigned_exactly_once(topology):
    plan = plan_shards(topology, 48, 4)
    assert plan.num_shards == 4
    assert len(plan.shard_of_node) == 48
    assert set(plan.shard_of_host) == set(topology.clients)
    assert all(0 <= s < plan.num_shards for s in plan.shard_of_node)
    # owned_nodes() partitions the node indices: no overlap, no gaps.
    owned = [plan.owned_nodes(s) for s in range(plan.num_shards)]
    flat = [i for group in owned for i in group]
    assert sorted(flat) == list(range(48))
    assert len(flat) == len(set(flat))
    for shard, group in enumerate(owned):
        assert all(plan.owns(shard, i) for i in group)


def test_stub_domains_never_split(topology):
    plan = plan_shards(topology, 48, 4)
    # All clients of one domain land on one shard.
    domain_shards: dict[int, set[int]] = {}
    for client, domain in plan.domain_of_host.items():
        domain_shards.setdefault(domain, set()).add(plan.shard_of_host[client])
    for domain, shards in domain_shards.items():
        assert len(shards) == 1, f"domain {domain} split across {shards}"


def test_clients_follow_access_router(topology):
    plan = plan_shards(topology, 48, 4)
    domains = stub_domains(topology)
    router_domain = {router: index
                     for index, members in enumerate(domains)
                     for router in members}
    graph = topology.graph
    for client in topology.clients:
        stub_neighbors = [router_domain[n] for n in graph.neighbors(client)
                          if n in router_domain]
        assert stub_neighbors, f"client {client} has no stub access router"
        assert plan.domain_of_host[client] == stub_neighbors[0]


def test_hosts_per_shard_accounts_for_used_clients(topology):
    plan = plan_shards(topology, 30, 4)
    assert sum(plan.hosts_per_shard) == 30
    assert len(plan.shard_of_node) == 30
    # The greedy packer keeps the used population roughly balanced: no shard
    # can exceed another by more than the largest domain's used-client count.
    domain_used: dict[int, int] = {}
    for client in topology.clients[:30]:
        domain = plan.domain_of_host[client]
        domain_used[domain] = domain_used.get(domain, 0) + 1
    assert (max(plan.hosts_per_shard) - min(plan.hosts_per_shard)
            <= max(domain_used.values()))


def test_lookahead_positive_and_finite(topology):
    plan = plan_shards(topology, 48, 4)
    assert 0.0 < plan.lookahead < float("inf")


def test_plan_is_deterministic(topology):
    first = plan_shards(topology, 48, 4)
    second = plan_shards(topology, 48, 4)
    assert first == second


def test_single_shard_trivial_plan(topology):
    plan = plan_shards(topology, 48, 1)
    assert plan.num_shards == 1
    assert plan.lookahead == float("inf")
    assert set(plan.shard_of_node) == {0}


def test_multi_site_pseudo_domains_cap_shards():
    # No stub-role routers: each site gateway becomes a pseudo-domain, and
    # asking for more shards than sites degrades to one shard per site.
    topo = multi_site_topology([4, 4, 4])
    assert stub_domains(topo) == []
    plan = plan_shards(topo, 12, 8)
    assert plan.requested_shards == 8
    assert plan.num_shards == 3
    # Co-located clients (same gateway) stay together.
    domain_shards: dict[int, set[int]] = {}
    for client, domain in plan.domain_of_host.items():
        domain_shards.setdefault(domain, set()).add(plan.shard_of_host[client])
    assert all(len(s) == 1 for s in domain_shards.values())
    assert 0.0 < plan.lookahead < float("inf")


def test_dumbbell_degrades_to_two_shards():
    topo = dumbbell_topology(clients_per_side=3)
    plan = plan_shards(topo, 6, 4)
    assert plan.num_shards == 2
    assert sorted(plan.hosts_per_shard) == [3, 3]
    assert 0.0 < plan.lookahead < float("inf")


def test_rejects_bad_arguments(topology):
    with pytest.raises(ShardPlanError):
        plan_shards(topology, 48, 0)
    with pytest.raises(ShardPlanError):
        plan_shards(topology, len(topology.clients) + 1, 2)


def test_stub_domains_are_stub_routers_only(topology):
    graph = topology.graph
    for domain in stub_domains(topology):
        for router in domain:
            assert graph.nodes[router][ROLE_ATTR] == "stub"
