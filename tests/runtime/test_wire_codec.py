"""Wire-codec property tests: the size model made real.

Every bundled specification's message types must round-trip through
:class:`repro.runtime.messages.WireCodec` — including empty lists, max-width
scalars, and nested wrapped messages — and the encoded byte length must equal
the spec-compile-time wire-size model (``MessageType.size_of``), which is
what lets live datagrams occupy exactly the bytes the emulator charges in
simulation.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.payload import AppPayload
from repro.codegen.registry import get_registry
from repro.protocols import BUNDLED_PROTOCOLS
from repro.runtime.messages import (FIELD_TYPE_SIZES, MESSAGE_HEADER_BYTES,
                                    FieldSpec, Message, MessageCatalog,
                                    MessageType, WireCodec, WireError,
                                    WrappedMessage, wire_id)

#: Value generators per field type; each returns (edge values, random value).
_EDGE_VALUES = {
    "int": [0, 1, -1, 2**31 - 1, -(2**31)],
    "long": [0, 1, -1, 2**63 - 1, -(2**63)],
    "double": [0.0, -1.5, 1e300, -1e-300],
    "float": [0.0, 1.5, -2.0],
    "bool": [True, False],
    "key": [0, 1, 2**32 - 1],
    "ipaddr": [0, 1, 2**32 - 1],
    "neighbor": [0, 1, 2**64 - 1],
    "string": ["", "x", "hé€llo", "a" * 200],
}


def _random_value(type_name: str, rng: random.Random):
    if type_name in ("int",):
        return rng.randint(-(2**31), 2**31 - 1)
    if type_name == "long":
        return rng.randint(-(2**63), 2**63 - 1)
    if type_name in ("double", "float"):
        return rng.choice([0.0, 0.5, -123.25, 4096.0])
    if type_name == "bool":
        return rng.random() < 0.5
    if type_name in ("key", "ipaddr"):
        return rng.randrange(2**32)
    if type_name == "neighbor":
        return rng.randrange(2**64)
    if type_name == "string":
        return "".join(rng.choice("abcdefghij") for _ in range(rng.randrange(8)))
    raise AssertionError(type_name)


def _fill_fields(message_type: MessageType, rng: random.Random,
                 lists_empty: bool = False) -> dict:
    fields = {}
    for spec in message_type.fields:
        if spec.is_list:
            if lists_empty:
                fields[spec.name] = []
            else:
                fields[spec.name] = [_random_value(spec.type_name, rng)
                                     for _ in range(rng.randrange(1, 6))]
        else:
            fields[spec.name] = _random_value(spec.type_name, rng)
    return fields


def _stack_and_codec(protocol: str):
    stack = get_registry().load_stack(protocol)
    return stack, WireCodec.for_agents(stack)


@pytest.mark.parametrize("protocol", BUNDLED_PROTOCOLS)
def test_every_spec_message_round_trips_at_model_size(protocol):
    """Seeded property sweep: random field values for every message type."""
    stack, codec = _stack_and_codec(protocol)
    rng = random.Random(f"wire:{protocol}")
    for agent_class in stack:
        for message_type in agent_class.MESSAGE_TYPES:
            for trial in range(8):
                fields = _fill_fields(message_type, rng,
                                      lists_empty=(trial == 0))
                message = Message(type=message_type, fields=fields,
                                  priority=rng.choice([-1, 0, 1, 2]),
                                  protocol=agent_class.PROTOCOL)
                encoded = codec.encode_message(message)
                # The headline property: wire bytes == the size model.
                assert len(encoded) == message.size, \
                    (protocol, message_type.name, fields)
                decoded, end = codec.decode_message(encoded)
                assert end == len(encoded)
                assert decoded.protocol == agent_class.PROTOCOL
                assert decoded.type is message_type
                assert decoded.priority == message.priority
                for spec in message_type.fields:
                    got, want = decoded.fields[spec.name], fields[spec.name]
                    if spec.type_name in ("double", "float") \
                            and not spec.is_list:
                        assert got == pytest.approx(want)
                    else:
                        assert got == want, (message_type.name, spec.name)


@pytest.mark.parametrize("protocol", BUNDLED_PROTOCOLS)
def test_max_width_scalars_round_trip(protocol):
    stack, codec = _stack_and_codec(protocol)
    for agent_class in stack:
        for message_type in agent_class.MESSAGE_TYPES:
            fields = {}
            for spec in message_type.fields:
                edges = _EDGE_VALUES[spec.type_name]
                fields[spec.name] = list(edges) if spec.is_list else edges[-1]
            message = Message(type=message_type, fields=fields,
                              protocol=agent_class.PROTOCOL)
            encoded = codec.encode_message(message)
            assert len(encoded) == message.size
            decoded, _ = codec.decode_message(encoded)
            assert decoded.fields == fields


def test_wrapped_message_nests_at_model_size():
    """A Scribe control message wrapped inside a Pastry data message (the
    layering wire path) encodes to exactly the outer message's model size."""
    stack, codec = _stack_and_codec("scribe")
    pastry, scribe = stack
    scribe_types = {t.name: t for t in scribe.MESSAGE_TYPES}
    pastry_types = {t.name: t for t in pastry.MESSAGE_TYPES}
    join_type = scribe_types["join"]
    inner_fields = {"gid": 77, "member": 4}
    wrapped = WrappedMessage(
        protocol="scribe", name="join", fields=dict(inner_fields),
        payload=None, payload_size=0, source=42, source_key=9,
        size=join_type.size_of(inner_fields, 0))
    outer_type = pastry_types["pdata"]
    outer = Message(type=outer_type, fields={}, payload=wrapped,
                    payload_size=wrapped.size, protocol="pastry")
    encoded = codec.encode_message(outer)
    assert len(encoded) == outer.size
    decoded, _ = codec.decode_message(encoded)
    inner = decoded.payload
    assert isinstance(inner, WrappedMessage)
    assert inner.protocol == "scribe" and inner.name == "join"
    assert inner.fields == inner_fields
    assert inner.source == 42
    assert inner.size == wrapped.size


def test_doubly_nested_wrapped_message():
    """Two wrapping levels (wrapped inside wrapped inside a data message)
    round-trip at exactly the outer model size."""
    stack, codec = _stack_and_codec("splitstream")
    by_protocol = {cls.PROTOCOL: cls for cls in stack}
    scribe_types = {t.name: t for t in by_protocol["scribe"].MESSAGE_TYPES}
    inner_type = scribe_types["tdata"]
    inner_fields = {spec.name: 3 for spec in inner_type.fields
                    if not spec.is_list}
    inner_fields.update({spec.name: [1, 2] for spec in inner_type.fields
                         if spec.is_list})
    inner = WrappedMessage(protocol="scribe", name="tdata",
                           fields=inner_fields, payload=b"tail",
                           payload_size=64, source=5,
                           size=inner_type.size_of(inner_fields, 64))
    mid_type = scribe_types["mdata"]
    mid_fields = {spec.name: 8 for spec in mid_type.fields if not spec.is_list}
    mid_fields.update({spec.name: [9] for spec in mid_type.fields
                       if spec.is_list})
    middle = WrappedMessage(protocol="scribe", name="mdata", fields=mid_fields,
                            payload=inner, payload_size=inner.size, source=6,
                            size=mid_type.size_of(mid_fields, inner.size))
    pastry_types = {t.name: t for t in by_protocol["pastry"].MESSAGE_TYPES}
    outer = Message(type=pastry_types["pdata"], fields={}, payload=middle,
                    payload_size=middle.size, protocol="pastry")
    encoded = codec.encode_message(outer)
    assert len(encoded) == outer.size
    decoded, _ = codec.decode_message(encoded)
    assert decoded.payload.payload.fields == inner_fields
    assert decoded.payload.payload.payload == b"tail"


def test_payload_kinds_round_trip():
    stack, codec = _stack_and_codec("chord")
    data_type = {t.name: t for t in stack[0].MESSAGE_TYPES}["data"]
    app = AppPayload(seqno=12, sent_at=34.5, source=6, size=1000, stream_id=9)
    for payload, payload_size in [
        (None, 0), (None, 500), (b"\x00\xffbytes", 100), ("text", 64),
        (12345, 64), (2.5, 64), (True, 64), (app, 1000),
    ]:
        message = Message(type=data_type, fields={"target": 1, "hops": 2},
                          payload=payload, payload_size=payload_size,
                          protocol="chord")
        encoded = codec.encode_message(message)
        assert len(encoded) == message.size, (payload, payload_size)
        decoded, _ = codec.decode_message(encoded)
        assert decoded.payload == payload
        assert decoded.payload_size == payload_size


def test_heartbeat_payload_round_trips():
    from repro.runtime.node import _Heartbeat
    _, codec = _stack_and_codec("chord")
    for kind in ("ping", "pong"):
        block = codec.encode_payload(_Heartbeat(kind=kind))
        decoded, end = codec.decode_payload(block)
        assert end == len(block)
        assert isinstance(decoded, _Heartbeat) and decoded.kind == kind


def test_string_fields_are_length_prefixed_and_round_trip():
    note = MessageType("note", (FieldSpec("text", "string"),
                                FieldSpec("tags", "string", is_list=True),
                                FieldSpec("count", "int")))
    codec = WireCodec({"notes": MessageCatalog([note])})
    rng = random.Random(7)
    for _ in range(16):
        fields = {"text": _random_value("string", rng),
                  "tags": [_random_value("string", rng)
                           for _ in range(rng.randrange(4))],
                  "count": 3}
        message = Message(type=note, fields=fields, protocol="notes")
        encoded = codec.encode_message(message)
        assert len(encoded) == message.size
        decoded, _ = codec.decode_message(encoded)
        assert decoded.fields == fields
    # The model itself: 4-byte length prefix plus UTF-8 bytes.
    assert Message(type=note, fields={"text": "abc", "tags": [],
                                      "count": 0}).size == \
        MESSAGE_HEADER_BYTES + (4 + 3) + 4 + 4
    assert FIELD_TYPE_SIZES["string"] == 4


def test_unset_fields_encode_as_zero_defaults():
    """Scalars left unset travel as zero/False/empty — the live-mode analogue
    of the simulator's None reads (documented in docs/LIVE.md)."""
    stack, codec = _stack_and_codec("chord")
    lookup = {t.name: t for t in stack[0].MESSAGE_TYPES}["lookup"]
    message = Message(type=lookup, fields={}, protocol="chord")
    decoded, _ = codec.decode_message(codec.encode_message(message))
    assert decoded.fields["target"] == 0
    assert decoded.fields["hops"] == 0


def test_codec_errors_are_loud_and_typed():
    stack, codec = _stack_and_codec("chord")
    chord_types = {t.name: t for t in stack[0].MESSAGE_TYPES}
    message = Message(type=chord_types["data"], fields={"target": 1},
                      protocol="chord")
    encoded = codec.encode_message(message)

    # Unknown protocol for this codec.
    with pytest.raises(WireError, match="not built for"):
        codec.encode_message(Message(type=chord_types["data"], fields={},
                                     protocol="pastry"))
    # Truncated buffer.
    with pytest.raises(WireError, match="truncated"):
        codec.decode_message(encoded[:10])
    # Unknown message id (flip the type-id bytes).
    corrupted = bytearray(encoded)
    corrupted[8:12] = b"\xde\xad\xbe\xef"
    with pytest.raises(WireError, match="unknown message id"):
        codec.decode_message(bytes(corrupted))
    # Unsupported payload object.
    with pytest.raises(WireError, match="cannot encode payload"):
        codec.encode_message(Message(type=chord_types["data"], fields={},
                                     payload=object(), protocol="chord"))
    # Messages over the old 60 kB single-datagram cap now encode (the live
    # socket layer fragments them); only a runaway payload past the codec
    # ceiling still raises.
    big = codec.encode_message(Message(type=chord_types["data"], fields={},
                                       payload=None, payload_size=200_000,
                                       protocol="chord"))
    assert len(big) > 60_000
    with pytest.raises(WireError, match="ceiling"):
        codec.encode_message(Message(type=chord_types["data"], fields={},
                                     payload=None, payload_size=20_000_000,
                                     protocol="chord"))


def test_corrupt_length_prefixes_raise_instead_of_truncating():
    """A length prefix pointing past the buffer is line noise, not a short
    value silently handed to the protocol stack."""
    stack, codec = _stack_and_codec("chord")
    chord_types = {t.name: t for t in stack[0].MESSAGE_TYPES}
    message = Message(type=chord_types["data"], fields={"target": 1, "hops": 2},
                      payload=b"abcdef", payload_size=64, protocol="chord")
    encoded = bytearray(codec.encode_message(message))
    # The bytes-payload length prefix sits right after header + fields;
    # inflate it far past the end of the datagram.
    fields_width = chord_types["data"].fixed_size - MESSAGE_HEADER_BYTES
    prefix_at = MESSAGE_HEADER_BYTES + fields_width
    encoded[prefix_at:prefix_at + 4] = (10_000).to_bytes(4, "big")
    with pytest.raises(WireError, match="truncated"):
        codec.decode_message(bytes(encoded))

    note = MessageType("note", (FieldSpec("text", "string"),))
    note_codec = WireCodec({"notes": MessageCatalog([note])})
    good = bytearray(note_codec.encode_message(
        Message(type=note, fields={"text": "hello"}, protocol="notes")))
    good[MESSAGE_HEADER_BYTES:MESSAGE_HEADER_BYTES + 4] = \
        (9_999).to_bytes(4, "big")
    with pytest.raises(WireError, match="truncated"):
        note_codec.decode_message(bytes(good))


def test_wire_ids_are_stable_and_distinct_across_bundle():
    """Protocol/message ids are pure functions of the name and collide for
    no bundled specification (both endpoints derive them independently)."""
    assert wire_id("chord") == wire_id("chord")
    seen = {}
    for protocol in BUNDLED_PROTOCOLS:
        stack = get_registry().load_stack(protocol)
        for agent_class in stack:
            proto_id = wire_id(agent_class.PROTOCOL)
            assert seen.setdefault(proto_id, agent_class.PROTOCOL) == \
                agent_class.PROTOCOL
            message_ids = {}
            for message_type in agent_class.MESSAGE_TYPES:
                type_id = wire_id(message_type.name)
                assert message_ids.setdefault(type_id, message_type.name) == \
                    message_type.name


def test_kv_and_topic_payloads_round_trip_at_model_size():
    """The application-layer payloads (replicated KV, topic pub/sub) encode
    to exactly the size model and round-trip field-for-field — including
    negative versions (-1 = "no value") and max-width keys/seqnos."""
    from repro.apps.payload import KV_GET_REPLY, KvPayload, TopicPayload

    stack, codec = _stack_and_codec("chord")
    data_type = {t.name: t for t in stack[0].MESSAGE_TYPES}["data"]
    payloads = [
        KvPayload(op=KV_GET_REPLY, key=2**32 - 1, version=-1, seqno=2**60,
                  sent_at=12.25, source=3, replier=9, size=100,
                  stream_id=7001),
        KvPayload(op=0, key=0, version=2**62, seqno=-5, sent_at=0.0,
                  source=1, size=4096, stream_id=0),
        TopicPayload(topic=2**31, seqno=-1, sent_at=3.5, source=4,
                     size=500, stream_id=7001),
        TopicPayload(topic=0, seqno=2**62, sent_at=-1.0, source=2**60),
    ]
    for payload in payloads:
        message = Message(type=data_type, fields={"target": 1, "hops": 2},
                          payload=payload, payload_size=payload.size,
                          protocol="chord")
        encoded = codec.encode_message(message)
        assert len(encoded) == message.size, payload
        decoded, end = codec.decode_message(encoded)
        assert end == len(encoded)
        assert decoded.payload == payload
        assert decoded.payload_size == payload.size


def test_kv_and_topic_payload_blob_sizes_pinned():
    """The packed struct widths are wire format: changing them breaks mixed
    sim/live fleets, so the exact byte counts are pinned here."""
    from repro.runtime.messages import _KV_PAYLOAD, _TOPIC_PAYLOAD

    assert _KV_PAYLOAD.size == 61
    assert _TOPIC_PAYLOAD.size == 44


def test_ring_ipdata_round_trips_with_kv_payload():
    """The hand-written ring's routeIP message (``ipdata``) carries KV
    replies between live processes; it must encode at model size too."""
    from repro.apps.payload import KV_PUT_ACK, KvPayload
    from repro.protocols.ring import ring_agent

    agent_class = ring_agent()
    codec = WireCodec.for_agents([agent_class])
    ipdata = {t.name: t for t in agent_class.MESSAGE_TYPES}["ipdata"]
    payload = KvPayload(op=KV_PUT_ACK, key=77, version=12, seqno=34,
                        sent_at=5.5, source=2, replier=6, size=100,
                        stream_id=7001)
    message = Message(type=ipdata, fields={}, payload=payload,
                      payload_size=payload.size,
                      protocol=agent_class.PROTOCOL)
    encoded = codec.encode_message(message)
    assert len(encoded) == message.size
    decoded, _ = codec.decode_message(encoded)
    assert decoded.type.name == "ipdata"
    assert decoded.payload == payload
