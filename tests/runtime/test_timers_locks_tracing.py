"""Tests for the timer subsystem, instance locking, and tracing."""

from __future__ import annotations

import pytest

from repro.runtime.engine import Simulator
from repro.runtime.locks import InstanceLock, LockingViolation
from repro.runtime.timers import TimerError, TimerSpec, TimerTable
from repro.runtime.tracing import TraceLevel, Tracer


# ------------------------------------------------------------------------ timers
def test_timer_schedule_and_fire():
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, fired.append)
    timer = table.declare(TimerSpec("ping", period=2.0))
    timer.schedule()
    simulator.run()
    assert fired == ["ping"]
    assert timer.fire_count == 1
    assert not timer.scheduled


def test_timer_explicit_delay_overrides_period():
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, fired.append)
    timer = table.declare(TimerSpec("ping", period=10.0))
    timer.schedule(1.0)
    simulator.run(until=2.0)
    assert fired == ["ping"]


def test_timer_without_period_needs_delay():
    simulator = Simulator()
    table = TimerTable(simulator, lambda name: None)
    timer = table.declare(TimerSpec("oneshot"))
    with pytest.raises(TimerError):
        timer.schedule()
    timer.schedule(0.5)
    assert timer.scheduled


def test_reschedule_pushes_expiration_out():
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, fired.append)
    timer = table.declare(TimerSpec("t", period=5.0))
    timer.schedule(1.0)
    timer.reschedule(3.0)
    simulator.run(until=2.0)
    assert fired == []
    simulator.run(until=4.0)
    assert fired == ["t"]


def test_timer_cancel_and_cancel_all():
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, fired.append)
    a = table.declare(TimerSpec("a", 1.0))
    b = table.declare(TimerSpec("b", 1.0))
    a.schedule()
    b.schedule()
    a.cancel()
    table.cancel_all()
    simulator.run()
    assert fired == []


def test_timer_table_lookup_and_duplicates():
    simulator = Simulator()
    table = TimerTable(simulator, lambda name: None)
    table.declare(TimerSpec("x"))
    assert "x" in table
    with pytest.raises(TimerError):
        table.declare(TimerSpec("x"))
    with pytest.raises(TimerError):
        table.get("missing")


def test_negative_delay_rejected():
    simulator = Simulator()
    table = TimerTable(simulator, lambda name: None)
    timer = table.declare(TimerSpec("x"))
    with pytest.raises(TimerError):
        timer.schedule(-1.0)


# ------------------------------------------------------------------------- locks
def test_lock_modes_and_stats():
    lock = InstanceLock()
    with lock.acquire("write"):
        assert lock.current_mode == "write"
        lock.assert_writable("test")
    with lock.acquire("read"):
        assert lock.current_mode == "read"
    assert lock.stats.read_acquisitions == 1
    assert lock.stats.write_acquisitions == 1
    assert lock.stats.read_fraction() == pytest.approx(0.5)


def test_write_inside_read_raises_in_strict_mode():
    lock = InstanceLock(strict=True)
    with lock.acquire("read"):
        with pytest.raises(LockingViolation):
            lock.assert_writable("state_change")
    assert lock.stats.violations == 1


def test_write_inside_read_counted_in_lenient_mode():
    lock = InstanceLock(strict=False)
    with lock.acquire("read"):
        lock.assert_writable("state_change")
    assert lock.stats.violations == 1


def test_nested_acquisitions_counted():
    lock = InstanceLock()
    with lock.acquire("write"):
        with lock.acquire("read"):
            pass
    assert lock.stats.nested_acquisitions == 1


def test_unknown_mode_rejected():
    lock = InstanceLock()
    with pytest.raises(ValueError):
        with lock.acquire("exclusive"):
            pass


def test_explicit_lock_primitives():
    lock = InstanceLock()
    with lock.lock_write():
        assert lock.current_mode == "write"
    with lock.lock_read():
        assert lock.current_mode == "read"
    assert lock.current_mode is None


# ----------------------------------------------------------------------- tracing
def test_tracer_levels_filter_categories():
    tracer = Tracer()
    tracer.record(TraceLevel.OFF, 0.0, 1, "p", "state_change", "a")
    tracer.record(TraceLevel.LOW, 1.0, 1, "p", "state_change", "b")
    tracer.record(TraceLevel.LOW, 2.0, 1, "p", "timer", "c")       # needs HIGH
    tracer.record(TraceLevel.HIGH, 3.0, 1, "p", "timer", "d")
    assert tracer.count("state_change") == 1
    assert tracer.count("timer") == 1
    assert len(tracer.records(category="state_change")) == 1


def test_tracer_filters_by_protocol_and_node():
    tracer = Tracer()
    tracer.record(TraceLevel.HIGH, 0.0, 1, "chord", "transition", "x")
    tracer.record(TraceLevel.HIGH, 0.0, 2, "pastry", "transition", "y")
    assert len(tracer.records(protocol="chord")) == 1
    assert len(tracer.records(node=2)) == 1
    assert len(tracer.records()) == 2


def test_tracer_bounds_memory():
    tracer = Tracer(max_records=10)
    for index in range(25):
        tracer.record(TraceLevel.HIGH, float(index), 1, "p", "debug", str(index))
    assert len(tracer) == 10
    assert tracer.dropped == 15
    assert tracer.count("debug") == 25


def test_trace_level_parse():
    assert TraceLevel.parse("low") == TraceLevel.LOW
    assert TraceLevel.parse("HIGH") == TraceLevel.HIGH
    with pytest.raises(ValueError):
        TraceLevel.parse("verbose")
