"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runtime.engine import SimulationError, Simulator


def test_schedule_and_run_in_order():
    simulator = Simulator()
    order = []
    simulator.schedule(2.0, order.append, "b")
    simulator.schedule(1.0, order.append, "a")
    simulator.schedule(3.0, order.append, "c")
    simulator.run()
    assert order == ["a", "b", "c"]
    assert simulator.now == pytest.approx(3.0)


def test_same_time_events_preserve_insertion_order():
    simulator = Simulator()
    order = []
    for name in "abcde":
        simulator.schedule(1.0, order.append, name)
    simulator.run()
    assert order == list("abcde")


def test_zero_delay_event_runs_after_current_instant_events():
    simulator = Simulator()
    order = []

    def first():
        order.append("first")
        simulator.schedule(0.0, order.append, "nested")

    simulator.schedule(1.0, first)
    simulator.schedule(1.0, order.append, "second")
    simulator.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    simulator = Simulator()
    with pytest.raises(SimulationError):
        simulator.schedule(-0.1, lambda: None)


def test_cancel_prevents_execution():
    simulator = Simulator()
    fired = []
    handle = simulator.schedule(1.0, fired.append, 1)
    handle.cancel()
    simulator.run()
    assert fired == []
    assert handle.cancelled


def test_run_until_stops_at_boundary_and_advances_clock():
    simulator = Simulator()
    fired = []
    simulator.schedule(1.0, fired.append, 1)
    simulator.schedule(5.0, fired.append, 2)
    simulator.run(until=2.0)
    assert fired == [1]
    assert simulator.now == pytest.approx(2.0)
    simulator.run(until=10.0)
    assert fired == [1, 2]


def test_run_until_executes_events_exactly_at_boundary():
    simulator = Simulator()
    fired = []
    simulator.schedule(2.0, fired.append, 1)
    simulator.run(until=2.0)
    assert fired == [1]


def test_stop_from_callback():
    simulator = Simulator()
    fired = []

    def stopper():
        fired.append("stop")
        simulator.stop()

    simulator.schedule(1.0, stopper)
    simulator.schedule(2.0, fired.append, "late")
    simulator.run()
    assert fired == ["stop"]


def test_schedule_at_absolute_time():
    simulator = Simulator()
    fired = []
    simulator.schedule_at(5.0, fired.append, "x")
    simulator.run()
    assert simulator.now == pytest.approx(5.0)
    assert fired == ["x"]


def test_max_events_bound():
    simulator = Simulator()
    count = []

    def reschedule():
        count.append(1)
        simulator.schedule(1.0, reschedule)

    simulator.schedule(1.0, reschedule)
    simulator.run(max_events=10)
    assert len(count) == 10


def test_fork_rng_is_deterministic_and_independent():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    assert a.fork_rng("x").random() == b.fork_rng("x").random()
    assert a.fork_rng("x").random() != a.fork_rng("y").random()


def test_reentrant_run_rejected():
    simulator = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            simulator.run()

    simulator.schedule(1.0, nested)
    simulator.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    simulator = Simulator()
    times = []
    for delay in delays:
        simulator.schedule(delay, lambda: times.append(simulator.now))
    simulator.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


def test_schedule_fast_interleaves_with_schedule_in_insertion_order():
    simulator = Simulator()
    order = []
    simulator.schedule(1.0, order.append, "a")
    simulator.schedule_fast(1.0, order.append, "b")
    simulator.schedule(1.0, order.append, "c")
    simulator.schedule_fast(0.5, order.append, "first")
    simulator.run()
    assert order == ["first", "a", "b", "c"]


def test_schedule_fast_rejects_negative_delay_and_counts_as_pending():
    simulator = Simulator()
    with pytest.raises(SimulationError):
        simulator.schedule_fast(-0.5, lambda: None)
    simulator.schedule_fast(1.0, lambda: None)
    assert simulator.pending() == 1
    simulator.run()
    assert simulator.pending() == 0


def test_pending_counter_tracks_schedule_cancel_and_fire():
    simulator = Simulator()
    handles = [simulator.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert simulator.pending() == 5
    handles[0].cancel()
    handles[0].cancel()  # idempotent: must not double-decrement
    assert simulator.pending() == 4
    simulator.run(until=3.0)
    assert simulator.pending() == 2
    simulator.run()
    assert simulator.pending() == 0


def test_lazy_label_callable_resolved_on_read():
    simulator = Simulator()
    calls = []

    def expensive_label():
        calls.append(1)
        return "lazy"

    handle = simulator.schedule(1.0, lambda: None, label=expensive_label)
    assert not calls  # not formatted at schedule time
    assert handle.label == "lazy"
    assert "lazy" in simulator.drain_labels()
    assert len(calls) == 2  # once per read, never at schedule time
