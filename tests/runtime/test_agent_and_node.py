"""Tests for the agent runtime, layering, failure detection, and the node."""

from __future__ import annotations

import pytest

from repro.codegen import compile_mac
from repro.network import NetworkEmulator, transit_stub_topology
from repro.runtime import (
    FailureDetectorConfig,
    LockingViolation,
    MacedonNode,
    Simulator,
    Tracer,
)
from repro.runtime.agent import TransitionContext
from repro.runtime.stack import StackError

ECHO = """
protocol echo
addressing ip
trace_high
states { ready; }
transports { UDP U; TCP T; }
messages { U ping { int n; } U pong { int n; } }
state_variables { int pings; int pongs; fail_detect friends buddies; }
neighbor_types { friends 4 { double delay; } }
transitions {
    any API init { state_change("ready") }
    ready recv ping {
        pings = pings + 1
        send_msg("pong", source, n=field("n"))
    }
    ready recv pong { pongs = pongs + 1 }
    ready API route [locking read;] { send_msg("ping", dest_key, n=1) }
    ready API error {
        neighbor_remove(buddies, error_addr)
        pings = -1
    }
}
"""

BADLOCK = """
protocol badlock
addressing ip
states { ready; }
transports { UDP U; }
messages { U poke { } }
state_variables { int count; }
transitions {
    any API init { state_change("ready") }
    ready recv poke [locking read;] { count = count + 1 }
}
"""

UPPER = """
protocol upperproto uses echo
addressing ip
states { ready; }
messages { note { int v; } }
state_variables { int delivered; }
transitions {
    any API init { state_change("ready") }
    ready API multicast { routeip_msg("note", group, v=7) }
    ready recv note { delivered = delivered + field("v") }
}
"""


def build_pair(mac_text, n=2, **node_kwargs):
    agent_class = compile_mac(mac_text)
    simulator = Simulator(seed=3)
    emulator = NetworkEmulator(simulator, transit_stub_topology(max(n, 2), seed=3))
    nodes = [MacedonNode(simulator, emulator, [agent_class], **node_kwargs)
             for _ in range(n)]
    return simulator, nodes


def test_fsm_dispatch_and_message_exchange():
    simulator, (a, b) = build_pair(ECHO)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    assert a.lowest_agent.state == "ready"
    # route API (read-locked) sends a ping to the destination "key" (an address here).
    a.macedon_route(b.address, None, 0)
    simulator.run(until=5)
    assert b.lowest_agent.pings == 1
    assert a.lowest_agent.pongs == 1


def test_transition_scoped_by_state_not_dispatched_before_init():
    simulator, (a, b) = build_pair(ECHO)
    # Not initialised: agents are in "init" state so "ready recv ping" cannot fire.
    a.lowest_agent.send_msg("ping", b.address, n=1)
    simulator.run(until=5)
    assert b.lowest_agent.pings == 0


def test_locking_violation_detected_in_strict_mode():
    simulator, (a, b) = build_pair(BADLOCK, strict_locking=True)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    a.lowest_agent.send_msg("poke", b.address)
    with pytest.raises(LockingViolation):
        simulator.run(until=5)


def test_locking_violation_tolerated_in_lenient_mode():
    simulator, (a, b) = build_pair(BADLOCK, strict_locking=False)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    a.lowest_agent.send_msg("poke", b.address)
    simulator.run(until=5)
    assert b.lowest_agent.count == 1
    assert b.lowest_agent.lock.stats.violations == 1


def test_layering_stack_and_upcall_downcall():
    echo_class = compile_mac(ECHO)
    upper_class = compile_mac(UPPER)
    simulator = Simulator(seed=4)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=4))
    a = MacedonNode(simulator, emulator, [echo_class, upper_class])
    b = MacedonNode(simulator, emulator, [echo_class, upper_class])
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    assert a.stack.describe() == "upperproto/echo"
    assert a.highest_agent.PROTOCOL == "upperproto"
    # multicast on the top layer wraps a note and routeIPs it via echo's route...
    a.macedon_multicast(b.address, None, 0)
    simulator.run(until=5)
    # echo has no routeIP transition so the default passthrough drops at the
    # bottom layer; but the wrapped note goes via downcall route -> echo route
    # transition which sends a ping instead.  The point: no crash, and the
    # wrapped note is not mis-delivered.
    assert b.agent("upperproto").delivered in (0, 7)


def test_stack_layering_validation():
    echo_class = compile_mac(ECHO)
    upper_class = compile_mac(UPPER)
    simulator = Simulator(seed=5)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=5))
    with pytest.raises(StackError):
        MacedonNode(simulator, emulator, [upper_class])          # missing base
    with pytest.raises(StackError):
        MacedonNode(simulator, emulator, [upper_class, echo_class])  # wrong order


def test_failure_detection_triggers_error_transition():
    agent_class = compile_mac(ECHO)
    simulator = Simulator(seed=6)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=6))
    config = FailureDetectorConfig(failure_timeout=5.0, heartbeat_timeout=2.0,
                                   check_interval=1.0)
    a = MacedonNode(simulator, emulator, [agent_class], failure_config=config)
    b = MacedonNode(simulator, emulator, [agent_class], failure_config=config)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    # a monitors b through its fail_detect neighbor set.
    with a.lowest_agent.lock.acquire("write"):
        a.lowest_agent.neighbor_add(a.lowest_agent.buddies, b.address)
    assert b.address in a.failure_detector.monitored_peers()
    # Kill b: it stops receiving anything, so it cannot answer heartbeats and
    # after the failure timeout a's error transition fires.
    emulator.set_receive_callback(b.address, lambda packet: None)
    simulator.run(until=30)
    assert a.lowest_agent.pings == -1
    assert not a.lowest_agent.buddies.query(b.address)
    assert a.failure_detector.stats.failures_declared == 1
    assert a.failure_detector.stats.heartbeats_sent > 0


def test_heartbeats_keep_silent_but_alive_peer():
    agent_class = compile_mac(ECHO)
    simulator = Simulator(seed=7)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=7))
    config = FailureDetectorConfig(failure_timeout=6.0, heartbeat_timeout=2.0,
                                   check_interval=1.0)
    a = MacedonNode(simulator, emulator, [agent_class], failure_config=config)
    b = MacedonNode(simulator, emulator, [agent_class], failure_config=config)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    with a.lowest_agent.lock.acquire("write"):
        a.lowest_agent.neighbor_add(a.lowest_agent.buddies, b.address)
    simulator.run(until=60)
    # b answers heartbeats (the runtime does), so it is never declared failed.
    assert a.failure_detector.stats.failures_declared == 0
    assert a.lowest_agent.buddies.query(b.address)


def test_app_handlers_receive_upcalls():
    agent_class = compile_mac(ECHO)
    simulator = Simulator(seed=8)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=8))
    node = MacedonNode(simulator, emulator, [agent_class])
    delivered = []
    node.macedon_register_handlers(deliver=lambda p, s, t: delivered.append((p, s)))
    node.macedon_init(node.address)
    node.lowest_agent.upcall_deliver("payload", 42, 0)
    assert delivered == [("payload", 42)]


def test_trace_records_collected_per_protocol():
    agent_class = compile_mac(ECHO)
    simulator = Simulator(seed=9)
    tracer = Tracer()
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=9))
    a = MacedonNode(simulator, emulator, [agent_class], tracer=tracer)
    b = MacedonNode(simulator, emulator, [agent_class], tracer=tracer)
    a.macedon_init(a.address)
    b.macedon_init(a.address)
    a.macedon_route(b.address, None, 0)
    simulator.run(until=5)
    assert tracer.count("transition") > 0
    assert tracer.count("message_send") >= 2
    assert all(record.protocol == "echo" for record in tracer.records(category="transition"))


def test_unhandled_api_calls_are_noops_or_passthrough():
    agent_class = compile_mac(ECHO)
    simulator = Simulator(seed=10)
    emulator = NetworkEmulator(simulator, transit_stub_topology(2, seed=10))
    node = MacedonNode(simulator, emulator, [agent_class])
    node.macedon_init(node.address)
    # echo declares no join/leave/collect transitions: these must not raise.
    node.macedon_join(1)
    node.macedon_leave(1)
    node.macedon_collect(1, None, 0)
    node.macedon_create_group(1)
