"""Unit and property-based tests for hash addressing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runtime.keys import (
    DEFAULT_KEY_BITS,
    KeySpace,
    hash_key,
    in_interval,
    key_space_size,
    ring_distance,
    shared_prefix_length,
)


def test_hash_key_is_deterministic_and_bounded():
    assert hash_key("node-1") == hash_key("node-1")
    assert hash_key("node-1") != hash_key("node-2")
    assert 0 <= hash_key("anything") < key_space_size()


def test_hash_key_width():
    assert 0 <= hash_key("x", bits=8) < 256
    with pytest.raises(ValueError):
        hash_key("x", bits=0)


def test_in_interval_simple_and_wrapping():
    assert in_interval(5, 1, 10)
    assert not in_interval(1, 1, 10)
    assert in_interval(1, 1, 10, inclusive_start=True)
    assert in_interval(10, 1, 10, inclusive_end=True)
    # Wrapping interval (10, 3): contains 11.. and 0..2
    assert in_interval(0, 10, 3)
    assert in_interval(12, 10, 3)
    assert not in_interval(5, 10, 3)


def test_in_interval_degenerate_whole_ring():
    assert not in_interval(5, 5, 5)
    assert in_interval(7, 5, 5)
    assert in_interval(5, 5, 5, inclusive_start=True)


def test_ring_distance():
    size = key_space_size()
    assert ring_distance(0, 10) == 10
    assert ring_distance(10, 0) == size - 10
    assert ring_distance(7, 7) == 0


def test_key_space_digits_and_prefix():
    space = KeySpace(bits=32, digit_bits=4)
    assert space.num_digits == 8
    assert space.digit_base == 16
    key = 0x12345678
    assert space.digits(key) == [1, 2, 3, 4, 5, 6, 7, 8]
    assert space.shared_prefix(0x12345678, 0x1234FFFF) == 4
    assert space.shared_prefix(key, key) == 8
    assert space.shared_prefix(0x02345678, 0x12345678) == 0


def test_key_space_requires_divisible_width():
    with pytest.raises(ValueError):
        KeySpace(bits=30, digit_bits=4)


def test_successor_distance_order():
    space = KeySpace()
    keys = [10, 200, 3000]
    assert space.successor_distance_order(150, keys) == [200, 3000, 10]


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_ring_distance_antisymmetry(a, b):
    size = key_space_size()
    d_ab = ring_distance(a, b)
    d_ba = ring_distance(b, a)
    assert 0 <= d_ab < size
    if a != b:
        assert d_ab + d_ba == size
    else:
        assert d_ab == 0 and d_ba == 0


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_interval_membership_excludes_exactly_one_side(value, start, end):
    if start == end:
        return
    inside = in_interval(value, start, end)
    outside = in_interval(value, end, start)
    if value in (start, end):
        assert not inside or not outside
    else:
        # Every other point is in exactly one of the two arcs.
        assert inside != outside


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_shared_prefix_symmetric_and_bounded(a, b):
    length = shared_prefix_length(a, b, 4, 8)
    assert 0 <= length <= 8
    assert length == shared_prefix_length(b, a, 4, 8)
    if a == b:
        assert length == 8


@given(st.text(min_size=0, max_size=40))
def test_hash_key_stays_in_range(text):
    assert 0 <= hash_key(text) < 2 ** DEFAULT_KEY_BITS
