"""Tests for FSM state expressions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runtime.stateexpr import StateExprError, parse_state_expr

STATES = ["joining", "joined", "probing", "probed"]


def test_any_matches_everything():
    expr = parse_state_expr("any", STATES)
    assert expr.match_any
    for state in STATES + ["init"]:
        assert expr.matches(state)


def test_single_state():
    expr = parse_state_expr("joining", STATES)
    assert expr.matches("joining")
    assert not expr.matches("joined")


def test_alternation_with_and_without_parentheses():
    for text in ("joining|init", "(joining|init)"):
        expr = parse_state_expr(text, STATES)
        assert expr.matches("joining")
        assert expr.matches("init")
        assert not expr.matches("joined")


def test_negation():
    expr = parse_state_expr("!(joining|init)", STATES)
    assert not expr.matches("joining")
    assert not expr.matches("init")
    assert expr.matches("joined")
    assert expr.matches("probing")


def test_negated_single_state():
    expr = parse_state_expr("!joined", STATES)
    assert not expr.matches("joined")
    assert expr.matches("probing")


def test_unknown_state_rejected_when_known_states_given():
    with pytest.raises(StateExprError):
        parse_state_expr("flying", STATES)
    # Without a validation list, unknown names are allowed.
    expr = parse_state_expr("flying")
    assert expr.matches("flying")


@pytest.mark.parametrize("bad", ["", "|", "a||b", "(a|b", "a|b)", "!(", "!any",
                                 "a b", "a|", "(", ")"])
def test_malformed_expressions_rejected(bad):
    with pytest.raises(StateExprError):
        parse_state_expr(bad, STATES + ["a", "b"])


def test_init_always_allowed():
    expr = parse_state_expr("init", STATES)
    assert expr.matches("init")


@given(st.lists(st.sampled_from(STATES), min_size=1, max_size=4, unique=True),
       st.booleans(), st.sampled_from(STATES + ["init"]))
def test_membership_semantics(names, negated, probe):
    text = "|".join(names)
    if negated:
        text = f"!({text})"
    expr = parse_state_expr(text, STATES)
    expected = probe in names
    if negated:
        expected = not expected
    assert expr.matches(probe) == expected
