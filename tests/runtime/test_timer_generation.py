"""Generation-counter cancellation semantics of the fast timer path.

PR 4 moved protocol timers and transport retransmission timers off
handle-per-fire ``schedule()`` onto ``schedule_gen()``: a flat heap entry
capturing a generation token, cancelled by bumping the owner's generation
cell.  These tests pin the semantics the fast path must preserve: a
cancelled entry never fires, never counts as a processed event, and the
live-event counter stays exact through arbitrary cancel/reschedule churn.
"""

from __future__ import annotations

import pytest

from repro.runtime.engine import SimulationError, Simulator
from repro.runtime.timers import TimerError, TimerSpec, TimerTable


# ----------------------------------------------------------- engine primitives
def test_schedule_gen_fires_live_entry():
    simulator = Simulator()
    fired = []
    cell = [0]
    simulator.schedule_gen(1.0, lambda: fired.append(simulator.now), cell)
    assert simulator.pending() == 1
    simulator.run()
    assert fired == [1.0]
    assert simulator.pending() == 0
    assert simulator.events_processed == 1


def test_cancel_gen_discards_entry_like_a_cancelled_handle():
    simulator = Simulator()
    fired = []
    cell = [0]
    simulator.schedule_gen(1.0, lambda: fired.append("gen"), cell)
    simulator.cancel_gen(cell)
    assert simulator.pending() == 0
    simulator.run()
    assert fired == []
    # A generation-cancelled entry is discarded exactly like a cancelled
    # EventHandle event: it does not count as a processed event.
    assert simulator.events_processed == 0


def test_reschedule_after_cancel_only_new_entry_fires():
    simulator = Simulator()
    fired = []
    cell = [0]
    simulator.schedule_gen(1.0, lambda: fired.append("old"), cell)
    simulator.cancel_gen(cell)
    simulator.schedule_gen(3.0, lambda: fired.append("new"), cell)
    assert simulator.pending() == 1
    simulator.run()
    assert fired == ["new"]
    assert simulator.now == 3.0
    assert simulator.events_processed == 1


def test_schedule_gen_orders_with_other_entry_widths():
    simulator = Simulator()
    order = []
    cell = [0]
    simulator.schedule(1.0, order.append, "handle")
    simulator.schedule_gen(1.0, lambda: order.append("gen"), cell)
    simulator.schedule_fast(1.0, order.append, "fast")
    simulator.run()
    # Same time => insertion (seq) order across all three entry widths.
    assert order == ["handle", "gen", "fast"]


def test_schedule_gen_rejects_negative_delay():
    simulator = Simulator()
    with pytest.raises(SimulationError):
        simulator.schedule_gen(-0.1, lambda: None, [0])


def test_stale_gen_entry_does_not_advance_clock():
    simulator = Simulator()
    seen = []
    cell = [0]
    simulator.schedule_gen(5.0, lambda: None, cell)
    simulator.cancel_gen(cell)
    simulator.schedule(1.0, lambda: seen.append(simulator.now))
    simulator.run(until=10.0)
    assert seen == [1.0]
    assert simulator.now == 10.0


# ------------------------------------------------------------- protocol timers
def make_timer(period=2.0):
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, fired.append)
    timer = table.declare(TimerSpec("t", period=period))
    return simulator, timer, fired


def test_cancelled_timer_never_fires_and_uncounts_pending():
    simulator, timer, fired = make_timer()
    timer.schedule()
    assert simulator.pending() == 1
    timer.cancel()
    assert not timer.scheduled
    assert simulator.pending() == 0
    simulator.run()
    assert fired == []
    assert timer.fire_count == 0
    assert simulator.events_processed == 0


def test_cancel_is_idempotent():
    simulator, timer, fired = make_timer()
    timer.schedule()
    timer.cancel()
    timer.cancel()   # must not corrupt the live-event counter
    assert simulator.pending() == 0
    simulator.run()
    assert fired == []


def test_reschedule_supersedes_pending_entry():
    simulator, timer, fired = make_timer()
    timer.schedule(1.0)
    timer.reschedule(4.0)
    assert timer.expires_at == 4.0
    simulator.run(until=2.0)
    assert fired == []
    simulator.run()
    assert fired == ["t"]
    assert timer.fire_count == 1
    assert simulator.now == 4.0


def test_cancel_then_reschedule_fires_exactly_once():
    simulator, timer, fired = make_timer()
    timer.schedule(1.0)
    timer.cancel()
    timer.schedule(2.0)
    simulator.run()
    assert fired == ["t"]
    assert simulator.now == 2.0


def test_periodic_reschedule_from_expiry_reuses_generation_path():
    simulator = Simulator()
    fired = []
    table = TimerTable(simulator, lambda name: None)
    timer = table.declare(TimerSpec("beat", period=1.0))

    def on_expire(name):
        fired.append(simulator.now)
        if len(fired) < 5:
            timer.schedule()   # the paper's periodic idiom: self-reschedule

    table._on_expire = on_expire
    timer._on_expire = on_expire
    timer.schedule()
    simulator.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert timer.fire_count == 5
    assert simulator.pending() == 0


def test_scheduled_and_expires_at_track_generation_state():
    simulator, timer, _ = make_timer(period=3.0)
    assert not timer.scheduled
    assert timer.expires_at is None
    timer.schedule()
    assert timer.scheduled
    assert timer.expires_at == 3.0
    simulator.run()
    assert not timer.scheduled
    assert timer.expires_at is None


def test_negative_delay_still_raises_timer_error():
    simulator, timer, _ = make_timer()
    with pytest.raises(TimerError):
        timer.schedule(-0.5)
    # A rejected schedule must not have disturbed the pending count.
    assert simulator.pending() == 0
