"""Direct Tracer coverage: thresholds, views, bounds, overrides, sinks.

The basics (level filtering, protocol/node views, memory bound) are also
exercised in test_timers_locks_tracing.py; this module owns the deeper
contract the observability layer leans on — per-run category overrides,
drop accounting at the deque bound, ``clear()``, and the streaming sink.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import TraceSink
from repro.runtime.tracing import TraceLevel, Tracer


def fill(tracer: Tracer, count: int, category: str = "debug") -> None:
    for index in range(count):
        tracer.record(TraceLevel.HIGH, float(index), 1, "p", category,
                      str(index))


# ------------------------------------------------------------- thresholds
def test_category_thresholds_filter_exactly():
    tracer = Tracer()
    # state_change records at LOW, timer needs HIGH, debug needs HIGH.
    tracer.record(TraceLevel.LOW, 0.0, 1, "p", "state_change", "kept")
    tracer.record(TraceLevel.LOW, 1.0, 1, "p", "timer", "filtered")
    tracer.record(TraceLevel.MED, 2.0, 1, "p", "timer", "filtered")
    tracer.record(TraceLevel.HIGH, 3.0, 1, "p", "timer", "kept")
    assert [record.detail for record in tracer.records()] == ["kept", "kept"]
    # counts tally accepted records only.
    assert tracer.counts == {"state_change": 1, "timer": 1}


def test_route_hop_category_records_at_low():
    tracer = Tracer()
    tracer.record(TraceLevel.HIGH, 0.0, 1, "p", "route_hop", "hop",
                  trace_id=7, hop=0, src=2, latency=0.01)
    assert tracer.count("route_hop") == 1
    (record,) = tracer.records(category="route_hop")
    assert record.data == {"trace_id": 7, "hop": 0, "src": 2,
                           "latency": 0.01}


def test_filtered_record_views():
    tracer = Tracer()
    tracer.record(TraceLevel.HIGH, 0.0, 1, "chord", "transition", "a")
    tracer.record(TraceLevel.HIGH, 1.0, 2, "pastry", "transition", "b")
    tracer.record(TraceLevel.HIGH, 2.0, 1, "chord", "debug", "c")
    assert len(tracer.records(node=1)) == 2
    assert len(tracer.records(protocol="pastry")) == 1
    assert len(tracer.records(category="transition", node=1)) == 1
    assert len(tracer.records()) == 3


# ---------------------------------------------------------- drop accounting
def test_drop_accounting_at_the_bound():
    tracer = Tracer(max_records=5)
    fill(tracer, 12)
    assert len(tracer) == 5
    assert tracer.dropped == 7
    # The deque keeps the newest records (eviction from the head).
    assert [record.detail for record in tracer.records()] \
        == ["7", "8", "9", "10", "11"]
    # counts are accept-side: they keep tallying past the bound.
    assert tracer.count("debug") == 12


def test_clear_resets_records_counts_and_drops():
    tracer = Tracer(max_records=4)
    fill(tracer, 9)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
    assert tracer.counts == {}
    fill(tracer, 2)
    assert len(tracer) == 2 and tracer.dropped == 0


# ---------------------------------------------------------------- overrides
def test_per_run_category_overrides():
    tracer = Tracer(category_levels={"timer": "low", "debug": TraceLevel.OFF})
    assert tracer.has_overrides
    tracer.record(TraceLevel.LOW, 0.0, 1, "p", "timer", "now kept")
    tracer.record(TraceLevel.HIGH, 1.0, 1, "p", "debug", "now filtered")
    assert tracer.count("timer") == 1
    assert tracer.count("debug") == 0
    assert tracer.threshold("timer") == TraceLevel.LOW
    # Unmentioned categories keep their class defaults.
    assert tracer.threshold("transition") \
        == Tracer.CATEGORY_LEVELS["transition"]


def test_overrides_never_mutate_the_class_constant():
    before = dict(Tracer.CATEGORY_LEVELS)
    Tracer(category_levels={"timer": "low"})
    assert Tracer.CATEGORY_LEVELS == before
    # And a default tracer built afterwards still uses the defaults.
    tracer = Tracer()
    assert not tracer.has_overrides
    tracer.record(TraceLevel.LOW, 0.0, 1, "p", "timer", "filtered")
    assert tracer.count("timer") == 0


def test_unknown_override_category_rejected():
    with pytest.raises(ValueError):
        Tracer(category_levels={"not_a_category": "high"})


# --------------------------------------------------------------------- sink
def test_sink_streams_past_the_memory_bound(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(max_records=3, sink=TraceSink(str(path), meta={
        "mode": "sim"}))
    fill(tracer, 10)
    tracer.sink.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "repro.trace/1" and header["mode"] == "sim"
    # Every accepted record hit the stream, memory bound notwithstanding.
    assert len(lines) - 1 == 10 == tracer.sink.written
    assert len(tracer) == 3 and tracer.dropped == 7
    record = json.loads(lines[1])
    assert record["cat"] == "debug" and record["node"] == 1


def test_sink_only_sees_accepted_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=TraceSink(str(path)))
    tracer.record(TraceLevel.LOW, 0.0, 1, "p", "timer", "filtered")
    tracer.record(TraceLevel.HIGH, 1.0, 1, "p", "timer", "kept")
    tracer.sink.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2  # header + the one accepted record
