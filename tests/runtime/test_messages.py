"""Tests for typed protocol messages."""

from __future__ import annotations

import pytest

from repro.runtime.messages import (
    FieldSpec,
    Message,
    MessageCatalog,
    MessageError,
    MessageType,
    WrappedMessage,
    MESSAGE_HEADER_BYTES,
)


@pytest.fixture
def join_reply() -> MessageType:
    return MessageType("join_reply", (FieldSpec("response", "int"),
                                      FieldSpec("siblings", "ipaddr", is_list=True)),
                       "HIGHEST")


def test_message_field_access(join_reply):
    message = Message(type=join_reply, fields={"response": 1, "siblings": [2, 3]})
    assert message.name == "join_reply"
    assert message.field("response") == 1
    assert message.response == 1
    assert message.siblings == [2, 3]


def test_unknown_field_rejected_on_construction(join_reply):
    with pytest.raises(MessageError):
        Message(type=join_reply, fields={"nonsense": 1})


def test_field_access_unknown_name(join_reply):
    message = Message(type=join_reply, fields={"response": 1})
    with pytest.raises(MessageError):
        message.field("nonsense")
    # Declared but unset fields read as None via attribute access.
    assert message.siblings is None
    with pytest.raises(AttributeError):
        _ = message.totally_unknown


def test_size_model_accounts_for_fields_and_payload(join_reply):
    empty = Message(type=join_reply, fields={"response": 1, "siblings": []})
    loaded = Message(type=join_reply, fields={"response": 1, "siblings": [1, 2, 3]},
                     payload_size=500)
    assert empty.size >= MESSAGE_HEADER_BYTES + 4 + 4
    assert loaded.size == empty.size + 3 * 4 + 500


def test_string_field_size_varies():
    message_type = MessageType("note", (FieldSpec("text", "string"),))
    short = Message(type=message_type, fields={"text": "ab"})
    long = Message(type=message_type, fields={"text": "a" * 100})
    assert long.size > short.size


def test_catalog_lookup_and_duplicates(join_reply):
    catalog = MessageCatalog([join_reply])
    assert "join_reply" in catalog
    assert catalog.get("join_reply") is join_reply
    with pytest.raises(MessageError):
        catalog.add(join_reply)
    with pytest.raises(MessageError):
        catalog.get("missing")
    assert catalog.names() == ["join_reply"]


def test_wrapped_message_roundtrip(join_reply):
    wrapped = WrappedMessage(protocol="scribe", name="join_reply",
                             fields={"response": 1}, payload="data",
                             payload_size=10, source=42, source_key=7, size=60)
    message = wrapped.as_message(join_reply)
    assert message.response == 1
    assert message.payload == "data"
    assert message.payload_size == 10
    assert message.source == 42
    assert message.protocol == "scribe"


def test_message_ids_unique(join_reply):
    a = Message(type=join_reply, fields={"response": 1})
    b = Message(type=join_reply, fields={"response": 2})
    assert a.msg_id != b.msg_id


def test_unknown_field_type_rejected_at_spec_compile_time():
    # A typo'd field type must fail when the MessageType is built (i.e. when
    # the generated module imports), not silently charge a default size on
    # the first send.
    with pytest.raises(MessageError, match="unknown type 'in_t'"):
        MessageType("join_reply", (FieldSpec("response", "in_t"),))
    with pytest.raises(MessageError, match="unknown type"):
        MessageType("probe", (FieldSpec("peers", "nieghbor", is_list=True),))


def test_field_spec_size_of_unknown_type_raises():
    with pytest.raises(MessageError, match="unknown type"):
        FieldSpec("x", "quaternion").size_of(1)


def test_fixed_size_precomputed_and_var_fields_counted_per_send(join_reply):
    # int (4) is folded into fixed_size with the 16-byte header; the ipaddr
    # list stays per-send.
    assert join_reply.fixed_size == MESSAGE_HEADER_BYTES + 4
    assert join_reply.size_of({"response": 1, "siblings": []}) == \
        join_reply.fixed_size + 4
    assert join_reply.size_of({"response": 1, "siblings": [1, 2]}) == \
        join_reply.fixed_size + 4 + 2 * 4


def test_string_fields_charge_their_length_prefix():
    # Strings are length-prefixed on the wire (4-byte count + UTF-8 bytes) so
    # the size model and the WireCodec encoding agree byte-for-byte; an empty
    # or unset string is just the prefix.
    note = MessageType("note", (FieldSpec("text", "string"),))
    assert Message(type=note, fields={"text": ""}).size == \
        MESSAGE_HEADER_BYTES + 4
    assert Message(type=note).size == MESSAGE_HEADER_BYTES + 4
    assert Message(type=note, fields={"text": "abcde"}).size == \
        MESSAGE_HEADER_BYTES + 4 + 5
