"""Tests for neighbor sets."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.runtime.neighbors import (
    NeighborError,
    NeighborFieldSpec,
    NeighborSet,
    NeighborType,
)


@pytest.fixture
def children_type() -> NeighborType:
    return NeighborType("ochildren", 4, (NeighborFieldSpec("delay", "double"),
                                         NeighborFieldSpec("bandwidth", "double")))


@pytest.fixture
def children(children_type) -> NeighborSet:
    return NeighborSet("kids", children_type, rng=random.Random(1))


def test_add_query_entry_remove(children):
    entry = children.add(101, delay=0.5)
    assert children.query(101)
    assert children.size() == 1
    assert children.entry(101) is entry
    assert entry.delay == 0.5
    assert entry.bandwidth == 0.0
    assert entry.ipaddr == 101
    removed = children.remove(101)
    assert removed is entry
    assert not children.query(101)
    assert children.remove(101) is None


def test_add_existing_updates_fields(children):
    children.add(101, delay=0.5)
    children.add(101, delay=0.9, bandwidth=2.0)
    assert children.size() == 1
    assert children.entry(101).delay == 0.9
    assert children.entry(101).bandwidth == 2.0


def test_unknown_field_rejected(children):
    with pytest.raises(NeighborError):
        children.add(101, rtt=1.0)


def test_max_size_enforced(children):
    for address in range(4):
        children.add(address)
    assert children.is_full
    with pytest.raises(NeighborError):
        children.add(99)
    # Re-adding an existing member when full is fine (it is an update).
    children.add(2, delay=1.0)


def test_entry_for_missing_address_raises(children):
    with pytest.raises(NeighborError):
        children.entry(12345)


def test_random_and_first(children):
    assert children.random() is None
    assert children.first() is None
    children.add(1)
    children.add(2)
    picks = {children.random().addr for _ in range(50)}
    assert picks <= {1, 2}
    assert len(picks) == 2
    assert children.first().addr == 1


def test_clear_and_iteration_order(children):
    for address in (5, 3, 9):
        children.add(address)
    assert children.addresses() == [5, 3, 9]
    assert [entry.addr for entry in children] == [5, 3, 9]
    children.clear()
    assert len(children) == 0
    assert not children


def test_observers_fire_on_add_and_remove(children):
    events = []
    children.add_observer(lambda s, action, addr: events.append((action, addr)))
    children.add(7)
    children.remove(7)
    children.add(8)
    children.clear()
    assert events == [("add", 7), ("remove", 7), ("add", 8), ("remove", 8)]


def test_keys_follow_entries(children):
    children.add(1, key=111)
    children.add(2, key=222)
    assert children.keys() == [111, 222]


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=30))
def test_membership_matches_model(addresses):
    neighbor_type = NeighborType("peers", 1000)
    neighbor_set = NeighborSet("peers", neighbor_type, rng=random.Random(0))
    model: dict[int, None] = {}
    for address in addresses:
        neighbor_set.add(address)
        model[address] = None
    assert sorted(neighbor_set.addresses()) == sorted(model)
    assert neighbor_set.size() == len(model)
    for address in model:
        assert neighbor_set.query(address)
