"""SocketUdpNetwork: the emulator surface over real loopback sockets."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.protocols import chord_agent
from repro.runtime.messages import Message, WireCodec, WireError
from repro.transport.base import Datagram, Segment
from repro.transport.udp import SocketUdpNetwork

pytestmark = pytest.mark.live


def _free_ports(count: int) -> list[int]:
    """Ports the OS confirms are currently free (bound-and-released)."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@pytest.fixture()
def codec():
    return WireCodec.for_agents([chord_agent()])


def _pair(codec):
    ports = _free_ports(2)
    endpoints = {1: ("127.0.0.1", ports[0]), 2: ("127.0.0.1", ports[1])}
    return (SocketUdpNetwork(1, endpoints, codec),
            SocketUdpNetwork(2, endpoints, codec))


def _chord_message(fields=None, **kwargs) -> Message:
    chord_types = {t.name: t for t in chord_agent().MESSAGE_TYPES}
    return Message(type=chord_types["lookup"],
                   fields=fields or {"target": 99, "origin": 1, "purpose": 0,
                                     "idx": 4, "hops": 32},
                   protocol="chord", **kwargs)


async def _exchange(codec, packets, mutate=None):
    """Open a pair, deliver *packets* from node 1 to node 2, return arrivals."""
    left, right = _pair(codec)
    received = []
    right.set_receive_callback(2, received.append)
    await left.open()
    await right.open()
    if mutate is not None:
        mutate(left, right)
    try:
        from repro.network.packet import Packet
        for payload, size in packets:
            assert left.send(Packet(src=1, dst=2, payload=payload,
                                    size=size)) or mutate is not None
        for _ in range(50):
            if len(received) >= len(packets):
                break
            await asyncio.sleep(0.01)
        return left, right, received
    finally:
        left.close()
        right.close()


def test_datagram_frame_round_trips(codec):
    message = _chord_message()
    datagram = Datagram("CTRL", message, message.size)

    left, right, received = asyncio.run(
        _exchange(codec, [(datagram, message.size)]))
    assert len(received) == 1
    packet = received[0]
    assert packet.src == 1 and packet.dst == 2
    arrived = packet.payload
    assert type(arrived) is Datagram
    assert arrived.transport == "CTRL"
    assert arrived.size == message.size
    assert arrived.payload.fields == message.fields
    assert left.stats()["frames_sent"] == 1
    assert right.stats()["frames_received"] == 1


def test_segment_frame_preserves_reliable_envelope(codec):
    message = _chord_message()
    segment = Segment(transport="CTRL", kind="DATA", seq=17, payload=message,
                      size=message.size, ack=-1, msg_id=5, chunk=1, chunks=3,
                      epoch=2, dest_epoch=1)
    ack = Segment(transport="CTRL", kind="ACK", seq=0, ack=18, epoch=2)

    _, _, received = asyncio.run(
        _exchange(codec, [(segment, message.size), (ack, 0)]))
    assert len(received) == 2
    data_seg = received[0].payload
    assert isinstance(data_seg, Segment)
    assert (data_seg.kind, data_seg.seq, data_seg.ack) == ("DATA", 17, -1)
    assert (data_seg.msg_id, data_seg.chunk, data_seg.chunks) == (5, 1, 3)
    assert (data_seg.epoch, data_seg.dest_epoch) == (2, 1)
    assert data_seg.payload.fields == message.fields
    ack_seg = received[1].payload
    assert (ack_seg.kind, ack_seg.ack, ack_seg.epoch) == ("ACK", 18, 2)


def test_unknown_destination_and_detached_host_drop(codec):
    async def scenario():
        left, right = _pair(codec)
        arrivals = []
        right.set_receive_callback(2, arrivals.append)
        await left.open()
        await right.open()
        try:
            from repro.network.packet import Packet
            datagram = Datagram("CTRL", None, 8)
            # Unknown destination: dropped, counted, no exception.
            assert left.send(Packet(src=1, dst=99, payload=datagram,
                                    size=8)) is False
            # Crashed ("detached") sender: outgoing traffic vanishes.
            left.detach_host(1)
            assert left.send(Packet(src=1, dst=2, payload=datagram,
                                    size=8)) is False
            left.reattach_host(1)
            assert left.send(Packet(src=1, dst=2, payload=datagram,
                                    size=8)) is True
            for _ in range(100):
                if arrivals:
                    break
                await asyncio.sleep(0.01)
            # Crashed receiver: arrivals fall on dead silicon.
            right.detach_host(2)
            left.send(Packet(src=1, dst=2, payload=datagram, size=8))
            await asyncio.sleep(0.05)
            return left, arrivals
        finally:
            left.close()
            right.close()

    left, arrivals = asyncio.run(scenario())
    assert left.send_drops == 2
    assert len(arrivals) == 1


def test_line_noise_is_counted_and_dropped(codec):
    """Garbage datagrams (port scans, version skew) must not kill the node."""
    async def scenario():
        left, right = _pair(codec)
        arrivals = []
        right.set_receive_callback(2, arrivals.append)
        await left.open()
        await right.open()
        try:
            host, port = right.endpoints[2]
            noise = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            noise.sendto(b"definitely not a frame", (host, port))
            noise.sendto(b"\xcd\x02\x00\x00\x00\x01truncated", (host, port))
            noise.close()
            from repro.network.packet import Packet
            message = _chord_message()
            left.send(Packet(src=1, dst=2,
                             payload=Datagram("CTRL", message, message.size),
                             size=message.size))
            for _ in range(50):
                if arrivals:
                    break
                await asyncio.sleep(0.01)
            return right, arrivals
        finally:
            left.close()
            right.close()

    right, arrivals = asyncio.run(scenario())
    assert right.decode_errors == 2
    assert len(arrivals) == 1   # the real frame still got through


def test_local_address_must_be_in_endpoint_map(codec):
    with pytest.raises(WireError, match="missing from the endpoint map"):
        SocketUdpNetwork(5, {1: ("127.0.0.1", 9)}, codec)
    network = SocketUdpNetwork(1, {1: ("127.0.0.1", 9)}, codec)
    with pytest.raises(WireError, match="cannot register"):
        network.set_receive_callback(2, lambda packet: None)
