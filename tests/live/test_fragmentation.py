"""Datagram fragmentation: frames over 60 kB split, reassemble, time out.

These tests run socket-free: a fake transport captures what the sender
would put on the wire, and the captured datagrams are fed straight into the
receiver's ``datagram_received`` — same code path as a real socket, no
event loop, no ports.
"""

from __future__ import annotations

import struct
import time

import pytest

from repro.network.packet import Packet
from repro.protocols import chord_agent
from repro.runtime.messages import WireCodec
from repro.transport.base import Datagram
from repro.transport.udp import (FRAGMENT_THRESHOLD, FRAGMENT_TIMEOUT,
                                 SocketUdpNetwork)

pytestmark = pytest.mark.live

#: Bytes of Datagram framing around a bytes payload: header (6) + transport
#: name length byte + "CTRL" (4) + declared size (4) + payload type tag (1)
#: + payload length prefix (4).
_DATAGRAM_OVERHEAD = 20


class _FakeTransport:
    """Captures ``sendto`` calls instead of touching a socket."""

    def __init__(self):
        self.sent: list[tuple[bytes, tuple]] = []

    def sendto(self, data, endpoint):
        self.sent.append((bytes(data), endpoint))

    def close(self):
        pass


def _pair():
    codec = WireCodec.for_agents([chord_agent()])
    endpoints = {1: ("127.0.0.1", 1111), 2: ("127.0.0.1", 2222)}
    left = SocketUdpNetwork(1, endpoints, codec)
    left._transport = _FakeTransport()
    right = SocketUdpNetwork(2, endpoints, codec)
    received: list[Packet] = []
    right.set_receive_callback(2, received.append)
    return left, right, received


def _send_bytes(left, payload: bytes) -> list[bytes]:
    """Send one bytes-payload Datagram; return the wire datagrams."""
    left._transport.sent.clear()
    assert left.send(Packet(src=1, dst=2,
                            payload=Datagram("CTRL", payload, len(payload)),
                            size=len(payload))) is True
    return [data for data, _ in left._transport.sent]


def test_sub_cap_frame_is_one_datagram_with_the_pinned_layout():
    """Frames under the threshold keep the exact pre-fragmentation wire
    format — one datagram, byte-identical to the hand-packed layout — so
    mixed-version deployments interoperate for small messages."""
    left, right, received = _pair()
    payload = bytes(range(256)) * 4                       # 1 KiB
    wire = _send_bytes(left, payload)
    assert len(wire) == 1
    assert left.fragments_sent == 0

    expected = b"".join((
        SocketUdpNetwork._HEADER.pack(SocketUdpNetwork.MAGIC,
                                      SocketUdpNetwork._FRAME_DATAGRAM, 1),
        bytes([len("CTRL")]), b"CTRL",
        struct.pack("!I", len(payload)),
        left.codec.encode_payload(payload),
    ))
    assert wire[0] == expected

    right.datagram_received(wire[0], ("127.0.0.1", 1111))
    assert len(received) == 1
    assert received[0].payload.payload == payload
    assert right.fragments_received == 0


def test_frame_exactly_at_threshold_is_not_fragmented():
    left, right, received = _pair()
    payload = b"\xAB" * (FRAGMENT_THRESHOLD - _DATAGRAM_OVERHEAD)
    wire = _send_bytes(left, payload)
    assert len(wire) == 1
    assert len(wire[0]) == FRAGMENT_THRESHOLD
    assert left.fragments_sent == 0
    right.datagram_received(wire[0], ("127.0.0.1", 1111))
    assert received[0].payload.payload == payload


def test_oversized_frame_fragments_and_reassembles():
    left, right, received = _pair()
    payload = bytes(i & 0xFF for i in range(150_000))     # over two fragments
    wire = _send_bytes(left, payload)
    assert len(wire) == 3
    assert left.fragments_sent == 3
    for datagram in wire:
        assert len(datagram) <= FRAGMENT_THRESHOLD
        assert datagram[1] == SocketUdpNetwork._FRAME_FRAGMENT
    # Arrival order does not matter (UDP reorders freely).
    for datagram in reversed(wire):
        right.datagram_received(datagram, ("127.0.0.1", 1111))
    assert len(received) == 1
    arrived = received[0].payload
    assert arrived.transport == "CTRL"
    assert arrived.size == len(payload)
    assert arrived.payload == payload
    assert right.fragments_received == 3
    assert right._pending_fragments == {}


def test_lost_fragment_times_out_without_blocking_later_messages():
    left, right, received = _pair()
    first = _send_bytes(left, b"\x01" * 150_000)
    assert len(first) == 3
    # Lose the middle fragment: the message must never be delivered and its
    # buffer must be garbage-collected, IP-style.
    right.datagram_received(first[0], ("127.0.0.1", 1111))
    right.datagram_received(first[2], ("127.0.0.1", 1111))
    assert received == []
    assert len(right._pending_fragments) == 1
    right._gc_fragments(time.monotonic() + FRAGMENT_TIMEOUT + 1.0)
    assert right._pending_fragments == {}
    assert right.reassembly_timeouts == 1

    # A fresh message (new fragment id) reassembles cleanly afterwards.
    payload = b"\x02" * 150_000
    for datagram in _send_bytes(left, payload):
        right.datagram_received(datagram, ("127.0.0.1", 1111))
    assert len(received) == 1
    assert received[0].payload.payload == payload


def test_fragment_count_mismatch_is_line_noise_not_a_crash():
    left, right, received = _pair()
    wire = _send_bytes(left, b"\x03" * 150_000)
    right.datagram_received(wire[0], ("127.0.0.1", 1111))
    # Forge a fragment with the same id but a different count.
    _, _, src, frag_id, index, count = SocketUdpNetwork._FRAGMENT.unpack_from(
        wire[1], 0)
    forged = SocketUdpNetwork._FRAGMENT.pack(
        SocketUdpNetwork.MAGIC, SocketUdpNetwork._FRAME_FRAGMENT, src,
        frag_id, index, count + 7) + b"garbage"
    right.datagram_received(forged, ("127.0.0.1", 1111))
    assert received == []
    assert right.decode_errors == 1
