"""Compiling scenario fault models onto the live wall-clock schedule."""

from __future__ import annotations

import pytest

from repro.eval.library import resolve_protocol
from repro.eval.scenario import (ChurnModel, CorrelatedCrashModel, CrashModel,
                                 DegradeModel, FlappingPartitionModel,
                                 FlashCrowdModel, PartitionModel, ScenarioSpec,
                                 WorkloadModel)
from repro.live import (DegradeFault, KillNode, LiveClusterConfig,
                        LiveFaultError, PartitionFault, compile_fault_models,
                        fault_horizon, live_runnable)

pytestmark = pytest.mark.live


def _spec(*models, protocol="chord", num_nodes=6, duration=120.0, seed=3):
    return ScenarioSpec(name="compile-test",
                        agents=resolve_protocol(protocol),
                        num_nodes=num_nodes, duration=duration, seed=seed,
                        models=models)


def _config(**overrides):
    defaults = dict(nodes=6, duration=7.0, seed=3)
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def test_churn_compiles_to_kills_inside_the_workload_window():
    config = _config()
    spec = _spec(ChurnModel(churn_fraction=0.4, churn_start=30.0,
                            churn_end=60.0, downtime=8.0))
    faults = compile_fault_models(spec, config)
    assert len(faults) == 2            # 40% of the 5 non-exempt nodes
    for fault in faults:
        assert isinstance(fault, KillNode)
        assert fault.index != 0        # the bootstrap is exempt
        # Kill times land inside the rescaled [churn_start, churn_end]
        # window; the rescaled 8 s downtime is floored to a real outage.
        assert config.workload_start <= fault.at <= config.duration
        assert fault.respawn_after == pytest.approx(1.0)
    assert fault_horizon(faults) == max(f.at + f.respawn_after
                                        for f in faults)


def test_compilation_is_deterministic_per_seed():
    spec = _spec(ChurnModel(churn_fraction=0.4, churn_start=30.0,
                            churn_end=60.0))
    assert compile_fault_models(spec, _config()) \
        == compile_fault_models(spec, _config())
    assert compile_fault_models(spec, _config(seed=9)) \
        != compile_fault_models(spec, _config(seed=9, nodes=8, duration=8.0))


def test_crash_maps_named_victims_and_recovery():
    faults = compile_fault_models(
        _spec(CrashModel(at=60.0, victims=(2, 4), recover_after=30.0)),
        _config())
    assert [f.index for f in faults] == [2, 4]
    at = faults[0].at
    # t=60 of 120 sim seconds lands mid-window on the live clock.
    assert at == pytest.approx(1.9 + 60.0 * (7.0 - 1.9) / 120.0, abs=1e-3)
    assert all(f.at == at for f in faults)
    # 30 sim seconds rescale above the floor: scaled, not floored.
    assert faults[0].respawn_after == pytest.approx(30.0 * 5.1 / 120.0,
                                                    abs=1e-3)

    permanent = compile_fault_models(
        _spec(CrashModel(at=60.0, victims=(2,))), _config())
    assert permanent[0].respawn_after is None
    assert fault_horizon(permanent) == permanent[0].at

    with pytest.raises(LiveFaultError, match="out of range"):
        compile_fault_models(_spec(CrashModel(at=60.0, victims=(17,))),
                             _config())


def test_partition_compiles_groups_but_not_link_cuts():
    faults = compile_fault_models(
        _spec(PartitionModel(at=40.0, groups=((0, 1, 2), (3, 4, 5)),
                             heal_after=2.0)),
        _config())
    (fault,) = faults
    assert isinstance(fault, PartitionFault)
    assert fault.groups == ((0, 1, 2), (3, 4, 5))
    assert fault.heal_after == pytest.approx(0.5)   # floored heal span

    with pytest.raises(LiveFaultError, match="host groups only"):
        compile_fault_models(
            _spec(PartitionModel(at=40.0, links=((0, 3),))), _config())


def test_flapping_partition_emits_one_cut_per_surviving_cycle():
    faults = compile_fault_models(
        _spec(FlappingPartitionModel(at=30.0, period=20.0, duty=0.5,
                                     cycles=10, groups=((0, 1, 2),))),
        _config())
    # The floored 1 s period fits only 4 of the 10 cycles before the live
    # horizon; later cycles are dropped, not squeezed.
    assert len(faults) == 4
    assert all(isinstance(f, PartitionFault) for f in faults)
    ats = [f.at for f in faults]
    assert ats == sorted(ats)
    gaps = [b - a for a, b in zip(ats, ats[1:])]
    assert all(gap == pytest.approx(1.0, abs=1e-3) for gap in gaps)
    assert all(f.heal_after == pytest.approx(0.5) for f in faults)


def test_degrade_maps_factors_with_caps():
    faults = compile_fault_models(
        _spec(DegradeModel(at=40.0, restore_after=30.0, hosts=(3,),
                           latency_factor=5.0, bandwidth_factor=0.5)),
        _config())
    (fault,) = faults
    assert isinstance(fault, DegradeFault)
    assert fault.indices == (3,)
    assert fault.delay == pytest.approx(0.08)    # (5 - 1) * 0.02
    assert fault.loss == pytest.approx(0.5)      # 1 - bandwidth_factor

    capped = compile_fault_models(
        _spec(DegradeModel(at=40.0, hosts=(3,), latency_factor=100.0,
                           bandwidth_factor=0.0)),
        _config())
    assert capped[0].delay == pytest.approx(0.25)
    assert capped[0].loss == pytest.approx(0.75)

    with pytest.raises(LiveFaultError, match="access links only"):
        compile_fault_models(
            _spec(DegradeModel(at=40.0, links=((0, 1),),
                               bandwidth_factor=0.5)),
            _config())


def test_sim_only_models_raise_with_a_reason():
    with pytest.raises(LiveFaultError, match="emulated topology"):
        compile_fault_models(
            _spec(CorrelatedCrashModel(at=40.0, racks=4)), _config())
    with pytest.raises(LiveFaultError, match="sim-only"):
        compile_fault_models(
            _spec(FlashCrowdModel(core=2, at=30.0, stay=20.0)), _config())
    # Without the mass departure, the live join wave replaces the burst.
    assert compile_fault_models(
        _spec(FlashCrowdModel(core=2, at=30.0)), _config()) == ()


def test_live_runnable_tags():
    workload = WorkloadModel(kind="route", source=-1, start=40.0, packets=8,
                             gap=2.0)
    ok, reason = live_runnable(_spec(workload))
    assert ok and reason is None

    ok, reason = live_runnable(_spec(workload, protocol="ringdht"))
    assert not ok and "no live deployment" in reason

    ok, reason = live_runnable(_spec())
    assert not ok and "no WorkloadModel" in reason

    ok, reason = live_runnable(
        _spec(workload, CorrelatedCrashModel(at=40.0, racks=4)))
    assert not ok and "emulated topology" in reason
