"""Live fault injection end-to-end: real SIGKILLs, supervised respawns.

The in-test shapes stay small (4-5 nodes, a few seconds); the CI
live-churn-smoke job runs the 8-node version via scripts/run_live.py.
"""

from __future__ import annotations

import socket

import pytest

from repro.live import KillNode, LiveCluster, LiveClusterConfig, LiveClusterError

pytestmark = pytest.mark.live


def test_kill_and_supervised_respawn_recovers():
    """The acceptance shape: a mid-run SIGKILL, a supervised respawn through
    the restart-epoch machinery, and routing that recovers after the settle
    window."""
    config = LiveClusterConfig(
        nodes=5, duration=7.0, join_spacing=0.1, settle=0.8, packets=30,
        seed=7, base_port=49500,
        faults=(KillNode(at=3.0, index=2, respawn_after=1.0),),
        post_fault_settle=2.0)
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics

    assert metrics["nodes.killed"] == 1.0
    assert metrics["nodes.respawns"] == 1.0
    assert metrics["nodes.down"] == 0.0

    victim = outcome.per_node[2]
    assert victim["incarnation"] == 1
    # The transport restart epoch tracked the process incarnation, so the
    # reborn node's reliable traffic was not mistaken for the dead one's.
    assert victim["epoch"] == 1
    assert victim["state"] == "joined"

    # Probes scheduled into the victim's outage window are skipped, not
    # silently lost; the accounting sees them.
    assert metrics["workload.skipped"] >= 0.0
    # After the respawn plus the settle window, routing must work again.
    assert metrics["workload.post_fault_success_ratio"] >= 0.8
    assert metrics["nodes.callback_errors"] == 0.0


def test_kill_without_respawn_leaves_the_node_accounted_down():
    config = LiveClusterConfig(
        nodes=4, duration=5.5, join_spacing=0.1, settle=0.8, packets=16,
        seed=11, base_port=49520,
        faults=(KillNode(at=2.5, index=3),))
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics

    assert metrics["nodes.killed"] == 1.0
    assert metrics["nodes.respawns"] == 0.0
    assert metrics["nodes.down"] == 1.0
    assert metrics["nodes.joined"] == 3.0
    down = outcome.per_node[3]
    assert down["state"] == "down"
    assert down["sent"] == 0
    # Some of the survivors' workload still routes (the dead node's keys
    # fail until the ring heals; this asserts accounting, not recovery).
    assert metrics["workload.success_ratio"] >= 0.2
    # Ring health is judged over the survivors, not the placeholder report.
    assert "ring.correct_successor_fraction" in metrics


def test_startup_timeout_names_the_stuck_nodes():
    # Spawned (not forked) workers re-import the package, which takes far
    # longer than the deliberately absurd 50 ms barrier window.
    config = LiveClusterConfig(nodes=3, duration=4.0, base_port=49540,
                               start_method="spawn", startup_timeout=0.05)
    with pytest.raises(LiveClusterError,
                       match="never reached the start barrier"):
        LiveCluster(config).run()


def test_port_conflict_is_a_boot_failure_naming_the_node():
    squatter = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    squatter.bind(("127.0.0.1", 49561))   # node index 1's port
    try:
        config = LiveClusterConfig(nodes=3, duration=4.0, base_port=49560)
        with pytest.raises(LiveClusterError,
                           match="failed to start — node 2"):
            LiveCluster(config).run()
    finally:
        squatter.close()
