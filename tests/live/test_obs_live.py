"""Observability over real sockets, and the sim/live parity contract.

The acceptance shape from the observability issue: a sim run and a live
run both emit ``repro.obs/1`` snapshots with *identical metric keys*, and
``scripts/run_trace.py``-style route reconstruction works on both modes'
trace files.  The cluster stays small (4 nodes, a few seconds) like the
rest of the live tier.
"""

from __future__ import annotations

import pytest

from repro.eval.library import resolve_protocol
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel
from repro.live import LiveCluster, LiveClusterConfig
from repro.obs import (ObsConfig, load_obs_snapshot, load_trace,
                       reconstruct_routes, validate_obs_snapshot)

pytestmark = pytest.mark.live


def test_live_obs_snapshot_matches_sim_keys_and_routes(tmp_path):
    obs_live = ObsConfig(trace_path=str(tmp_path / "live-trace.jsonl"),
                         causal=True,
                         snapshot_path=str(tmp_path / "live-obs.json"))
    config = LiveClusterConfig(nodes=4, duration=5.0, join_spacing=0.1,
                               settle=0.8, packets=16, seed=5,
                               base_port=49300, obs=obs_live)
    outcome = LiveCluster(config).run()
    live_snapshot = outcome.result.obs
    assert live_snapshot is not None
    validate_obs_snapshot(live_snapshot)
    assert live_snapshot["mode"] == "live"
    assert load_obs_snapshot(str(tmp_path / "live-obs.json")) == live_snapshot

    # The same workload shape in simulation, same obs knobs.
    sim_result = ScenarioSpec(
        name="obs-parity-sim", agents=resolve_protocol("chord"),
        num_nodes=4, duration=40.0, seed=5,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="route", source=-1, start=10.0,
                              packets=16, gap=1.0)),
        obs=ObsConfig(trace_path=str(tmp_path / "sim-trace.jsonl"),
                      causal=True)).run()
    sim_snapshot = sim_result.obs
    validate_obs_snapshot(sim_snapshot)

    # Key parity is the contract: one dashboard reads both modes.
    for section in ("counters", "gauges", "histograms"):
        assert set(live_snapshot[section]) == set(sim_snapshot[section])

    # Live-only signals actually populated.
    assert live_snapshot["counters"]["causal.traces"] > 0
    assert live_snapshot["gauges"]["nodes.alive"] == 4.0
    assert live_snapshot["wallclock"], "coordinator collected stats frames"
    for sample in live_snapshot["wallclock"]:
        assert len(sample["nodes"]) == 4

    # Route reconstruction works on both modes' trace files.
    for name, expected_mode in (("live-trace.jsonl", "live"),
                                ("sim-trace.jsonl", "sim")):
        header, records = load_trace(str(tmp_path / name))
        assert header["mode"] == expected_mode
        routes = reconstruct_routes(records)
        assert routes, f"no routes reconstructed from {name}"
        for route in routes:
            assert len(route["path"]) == route["hops"] + 1
            assert len(route["latencies"]) == route["hops"]


def test_live_obs_off_reports_no_trace_sections():
    config = LiveClusterConfig(nodes=3, duration=4.0, join_spacing=0.1,
                               settle=0.8, packets=8, seed=3,
                               base_port=49340)
    outcome = LiveCluster(config).run()
    assert outcome.result.obs is None
    for report in outcome.per_node:
        assert "causal" not in report
