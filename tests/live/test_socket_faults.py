"""The live fault table: SocketFaults verdicts, fault ops, control frames."""

from __future__ import annotations

import random

import pytest

from repro.network.packet import Packet
from repro.protocols import chord_agent
from repro.runtime.messages import WireCodec, WireError
from repro.transport.base import Datagram
from repro.transport.udp import SocketFaults, SocketUdpNetwork

pytestmark = pytest.mark.live


def _network(address: int = 1, peers: int = 4) -> SocketUdpNetwork:
    codec = WireCodec.for_agents([chord_agent()])
    endpoints = {a: ("127.0.0.1", 3000 + a) for a in range(1, peers + 1)}
    return SocketUdpNetwork(address, endpoints, codec)


# ---------------------------------------------------------------- SocketFaults
def test_fault_table_verdicts():
    faults = SocketFaults(1, rng=random.Random(0))
    assert not faults.active()
    assert faults.inbound(2) is None

    faults.partitioned = {2}
    assert faults.active()
    assert faults.drops_outbound(2)
    assert faults.inbound(2) == "drop"
    assert faults.inbound(3) is None

    faults.partitioned = set()
    faults.cut_to = {3}
    assert faults.drops_outbound(3)
    assert faults.inbound(3) is None        # one-way: inbound still open
    faults.cut_from = {4}
    assert not faults.drops_outbound(4)
    assert faults.inbound(4) == "drop"

    faults.cut_to = set()
    faults.cut_from = set()
    faults.delay_from[2] = 0.05
    assert faults.inbound(2) == pytest.approx(0.05)
    faults.loss_from[3] = 1.0                # certain loss
    assert faults.inbound(3) == "drop"


def test_loss_rolls_are_reproducible_per_seeded_stream():
    rolls_a = [SocketFaults(1, rng=random.Random(42)).inbound(2)
               for _ in range(1)]
    faults_a = SocketFaults(1, rng=random.Random(42))
    faults_b = SocketFaults(1, rng=random.Random(42))
    faults_a.loss_from[2] = 0.5
    faults_b.loss_from[2] = 0.5
    verdicts_a = [faults_a.inbound(2) for _ in range(32)]
    verdicts_b = [faults_b.inbound(2) for _ in range(32)]
    assert verdicts_a == verdicts_b
    assert "drop" in verdicts_a and None in verdicts_a
    del rolls_a


# --------------------------------------------------------------- apply_fault_op
def test_partition_op_isolates_by_group():
    network = _network(address=1)
    network.apply_fault_op({"op": "partition", "groups": [[1, 2], [3, 4]]})
    assert network.faults.partitioned == {3, 4}
    network.apply_fault_op({"op": "heal-partition"})
    assert network.faults.partitioned == set()

    # A node in no listed group forms the implicit group: it loses only the
    # listed nodes (the emulator's partition_hosts rule).
    network.apply_fault_op({"op": "partition", "groups": [[2, 3]]})
    assert network.faults.partitioned == {2, 3}
    # Re-partitioning replaces, never accumulates (idempotent re-sends).
    network.apply_fault_op({"op": "partition", "groups": [[1, 2], [3, 4]]})
    assert network.faults.partitioned == {3, 4}


def test_cut_and_heal_ops_are_directional():
    u_side = _network(address=1)
    v_side = _network(address=3)
    op = {"op": "cut", "pairs": [[1, 3]], "one_way": True}
    u_side.apply_fault_op(op)
    v_side.apply_fault_op(op)
    assert u_side.faults.cut_to == {3} and u_side.faults.cut_from == set()
    assert v_side.faults.cut_from == {1} and v_side.faults.cut_to == set()

    both = {"op": "cut", "pairs": [[1, 3]]}
    u_side.apply_fault_op(both)
    assert u_side.faults.cut_to == {3} and u_side.faults.cut_from == {3}

    heal = {"op": "heal", "pairs": [[1, 3]]}
    u_side.apply_fault_op(heal)
    v_side.apply_fault_op(heal)
    assert not u_side.faults.active()
    assert not v_side.faults.active()


def test_degrade_op_covers_both_directions_of_the_access_link():
    bystander = _network(address=1)
    target = _network(address=2)
    op = {"op": "degrade", "targets": [2], "delay": 0.05, "loss": 0.3}
    bystander.apply_fault_op(op)
    target.apply_fault_op(op)
    # Everyone degrades arrivals *from* the target; the target degrades
    # arrivals from everyone (its whole access link limps).
    assert bystander.faults.delay_from == {2: 0.05}
    assert bystander.faults.loss_from == {2: 0.3}
    assert set(target.faults.delay_from) == {1, 3, 4}

    restore = {"op": "restore", "targets": [2]}
    bystander.apply_fault_op(restore)
    target.apply_fault_op(restore)
    assert not bystander.faults.active()
    assert not target.faults.active()


def test_unknown_fault_op_raises():
    with pytest.raises(WireError, match="unknown fault op"):
        _network().apply_fault_op({"op": "teleport"})


# -------------------------------------------------------------- control channel
def test_control_frame_installs_rules_even_while_detached():
    network = _network(address=2)
    network.detach_host(2)                  # "crashed": data path muted
    frame = SocketUdpNetwork.control_frame(
        {"op": "partition", "groups": [[1], [2, 3, 4]]})
    network.datagram_received(frame, ("127.0.0.1", 9))
    assert network.control_frames == 1
    assert network.faults.partitioned == {1}


def test_bad_control_frames_count_as_line_noise():
    network = _network()
    header = SocketUdpNetwork._HEADER.pack(
        SocketUdpNetwork.MAGIC, SocketUdpNetwork._FRAME_CONTROL, 0)
    network.datagram_received(header + b"not json", ("127.0.0.1", 9))
    network.datagram_received(header + b'["a list"]', ("127.0.0.1", 9))
    network.datagram_received(header + b'{"op":"teleport"}', ("127.0.0.1", 9))
    assert network.decode_errors == 3
    assert not network.faults.active()


# ------------------------------------------------------------------- data path
class _FakeTransport:
    def __init__(self):
        self.sent = []

    def sendto(self, data, endpoint):
        self.sent.append((bytes(data), endpoint))


def test_outbound_cut_swallows_the_datagram_but_reports_success():
    network = _network(address=1)
    network._transport = _FakeTransport()
    network.apply_fault_op({"op": "cut", "pairs": [[1, 2]]})
    packet = Packet(src=1, dst=2, payload=Datagram("CTRL", b"x", 1), size=1)
    # The transport stack sees a successful send — the bytes die in the
    # "network", exactly like an emulator-partitioned link.
    assert network.send(packet) is True
    assert network._transport.sent == []
    assert network.fault_drops == 1
    assert network.send_drops == 0


def test_inbound_partition_drops_arrivals_before_decode():
    sender = _network(address=1)
    sender._transport = _FakeTransport()
    receiver = _network(address=2)
    arrivals = []
    receiver.set_receive_callback(2, arrivals.append)
    packet = Packet(src=1, dst=2, payload=Datagram("CTRL", b"x", 1), size=1)
    assert sender.send(packet) is True
    (wire, _), = sender._transport.sent

    receiver.apply_fault_op({"op": "partition", "groups": [[1], [2]]})
    receiver.datagram_received(wire, ("127.0.0.1", 3001))
    assert arrivals == []
    assert receiver.fault_drops == 1

    receiver.apply_fault_op({"op": "heal-partition"})
    receiver.datagram_received(wire, ("127.0.0.1", 3001))
    assert len(arrivals) == 1
