"""LiveDriver: the simulator's scheduling contract on a real event loop."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.driver import LiveDriver
from repro.runtime.driver import Driver, SimDriver
from repro.runtime.engine import Simulator
from repro.runtime.timers import ProtocolTimer, TimerSpec

pytestmark = pytest.mark.live


def run(coro):
    return asyncio.run(coro)


def test_simulator_and_drivers_satisfy_the_contract():
    assert isinstance(Simulator(), Driver)
    assert isinstance(SimDriver(), Driver)
    assert isinstance(LiveDriver(), Driver)


def test_sim_driver_delegates_to_its_simulator():
    driver = SimDriver(seed=3)
    fired = []
    driver.schedule_fast(1.0, fired.append, "a")
    handle = driver.schedule(2.0, fired.append, "b", label="later")
    driver.run(until=5.0)
    assert fired == ["a", "b"]
    assert driver.now == 5.0
    assert handle.label == "later"
    assert driver.fork_rng("x").random() == Simulator(3).fork_rng("x").random()
    with pytest.raises(NotImplementedError):
        driver.spawn(None)


def test_live_schedule_and_cancel():
    async def scenario():
        driver = LiveDriver(seed=1)
        driver.start()
        fired = []
        driver.schedule(0.01, fired.append, "one")
        handle = driver.schedule(0.02, fired.append, "cancelled",
                                 label=lambda: "lazy")
        driver.schedule_fast(0.03, fired.append, "fast")
        assert handle.label == "lazy"
        handle.cancel()
        handle.cancel()   # idempotent
        await driver.run_for(0.1)
        return driver, fired

    driver, fired = run(scenario())
    assert fired == ["one", "fast"]
    assert driver.events_processed == 2
    assert driver.now >= 0.03


def test_live_schedule_gen_discards_stale_generations():
    async def scenario():
        driver = LiveDriver()
        driver.start()
        fired = []
        cell = [0]
        driver.schedule_gen(0.01, lambda: fired.append("stale"), cell)
        driver.cancel_gen(cell)   # bump: armed entry must be discarded
        driver.schedule_gen(0.02, lambda: fired.append("live"), cell)
        await driver.run_for(0.1)
        return driver, fired

    driver, fired = run(scenario())
    assert fired == ["live"]
    assert driver.events_processed == 1


def test_protocol_timer_runs_unchanged_on_the_live_clock():
    """The timer subsystem (built for the simulator's schedule_gen) works
    verbatim against the wall clock — the driver-abstraction payoff."""
    async def scenario():
        driver = LiveDriver()
        driver.start()
        beats = []
        timer = ProtocolTimer(TimerSpec("beat", 0.02), driver,
                              lambda name: beats.append(name))
        timer.schedule()
        timer.reschedule(0.01)   # re-arm: old entry must be discarded
        await driver.run_for(0.05)
        assert timer.fire_count == 1
        timer.schedule(0.01)
        timer.cancel()
        await driver.run_for(0.05)
        return beats, timer

    beats, timer = run(scenario())
    assert beats == ["beat"]
    assert not timer.scheduled


def test_live_negative_delay_clamps_and_errors_are_contained():
    async def scenario():
        driver = LiveDriver()
        driver.start()
        fired = []

        def boom():
            raise RuntimeError("one bad transition")

        driver.schedule_fast(-5.0, fired.append, "clamped")
        driver.schedule_fast(0.01, boom)
        driver.schedule_fast(0.02, fired.append, "after")
        await driver.run_for(0.1)
        return driver, fired

    driver, fired = run(scenario())
    assert fired == ["clamped", "after"]   # the exception did not stop the loop
    assert driver.error_count == 1
    assert len(driver.errors) == 1
    assert "one bad transition" in repr(driver.errors[0])


def test_live_stop_ends_run_for_early():
    async def scenario():
        driver = LiveDriver()
        driver.start()
        driver.schedule(0.01, driver.stop)
        ended_at = await driver.run_for(10.0)
        return ended_at

    assert run(scenario()) < 1.0


def test_live_rng_streams_match_simulator_forks():
    live = LiveDriver(seed=42)
    sim = Simulator(seed=42)
    assert live.fork_rng("chord:7").random() == sim.fork_rng("chord:7").random()
