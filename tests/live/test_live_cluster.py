"""End-to-end live deployment: real processes, real sockets, same spec.

The in-test cluster is kept small (4 nodes, a few seconds) so the tier-1
suite stays fast; the CI live-smoke job and scripts/run_live.py exercise the
8- and 32-node shapes.
"""

from __future__ import annotations

import pytest

from repro.live import LiveCluster, LiveClusterConfig, LiveClusterError

pytestmark = pytest.mark.live


def test_config_validation():
    with pytest.raises(LiveClusterError, match="at least one node"):
        LiveClusterConfig(nodes=0)
    with pytest.raises(LiveClusterError, match="unknown workload"):
        LiveClusterConfig(workload="teleport")
    with pytest.raises(LiveClusterError, match="no workload window"):
        LiveClusterConfig(nodes=16, duration=2.0, join_spacing=0.5)
    config = LiveClusterConfig(nodes=3, duration=5.0, packets=8)
    assert config.workload_start == pytest.approx(3 * 0.15 + 1.0)
    assert [config.probes_for(i) for i in range(3)] == [3, 3, 2]
    assert sorted(config.endpoints()) == [1, 2, 3]


def test_unknown_protocol_fails_before_spawning_processes():
    with pytest.raises(Exception, match="chrod|no specification"):
        LiveCluster(LiveClusterConfig(nodes=2, duration=5.0,
                                      protocol="chrod")).run()


def test_four_node_chord_cluster_routes_over_real_sockets():
    config = LiveClusterConfig(nodes=4, duration=4.0, join_spacing=0.1,
                               settle=0.8, packets=16, seed=5,
                               base_port=49140)
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics

    assert metrics["nodes.joined"] == 4.0
    assert metrics["workload.sent"] == 16.0
    # Localhost, converged ring: the workload must essentially all route.
    assert metrics["workload.success_ratio"] >= 0.9
    assert metrics["ring.correct_successor_fraction"] == 1.0
    assert metrics["nodes.callback_errors"] == 0.0
    assert metrics["socket.decode_errors"] == 0.0
    # Real bytes moved between processes.
    assert metrics["transport.messages_sent"] > 0
    assert len(outcome.per_node) == 4
    for report in outcome.per_node:
        assert report["state"] == "joined"
        assert report["socket"]["bytes_sent"] > 0
    # Deliveries carried wall-clock latencies.
    assert metrics["workload.latency_mean"] > 0.0
    assert metrics["workload.latency_p95"] >= metrics["workload.latency_mean"] * 0.1


def test_live_kv_quorum_over_real_sockets():
    config = LiveClusterConfig(nodes=4, duration=5.0, join_spacing=0.1,
                               settle=0.8, workload="kv", packets=24,
                               seed=7, base_port=49180)
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics
    assert metrics["nodes.joined"] == 4.0
    assert metrics["workload.sent"] == 24.0
    assert metrics["workload.quorum_success"] >= 0.9
    assert metrics["workload.phantom_reads"] == 0.0
    assert metrics["workload.puts"] + metrics["workload.gets"] \
        == metrics["workload.completed"]
    assert metrics["workload.replica_coverage"] >= 0.9
    assert metrics["nodes.callback_errors"] == 0.0


def test_live_pubsub_full_coverage():
    config = LiveClusterConfig(nodes=4, duration=6.0, join_spacing=0.1,
                               settle=1.2, workload="pubsub", packets=12,
                               topics=3, protocol="scribe", seed=7,
                               base_port=49200)
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics
    assert metrics["workload.sent"] == 12.0
    # Everyone subscribes to every topic; the publisher never self-delivers.
    assert metrics["workload.expected"] == 36.0
    assert metrics["workload.coverage"] >= 0.9
    assert metrics["workload.duplicates"] == 0.0


def test_same_kv_spec_runs_live_via_facade():
    """The acceptance shape: the simulation KV ScenarioSpec, unmodified,
    through ``repro.run(spec, mode="live")``."""
    import repro
    from repro.eval.library import resolve_protocol
    from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel

    spec = ScenarioSpec(
        name="facade-kv-live",
        agents=resolve_protocol("chord"),
        num_nodes=4,
        duration=80.0,
        seed=5,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="kv", start=40.0, packets=16, gap=1.0,
                              keys=16, read_fraction=0.5)),
    )
    outcome = repro.run(spec, mode="live", base_port=49220,
                        join_spacing=0.1, settle=0.8, duration=5.0)
    metrics = outcome.metrics
    assert metrics["workload.sent"] == 16.0
    assert metrics["workload.quorum_success"] >= 0.9
    assert metrics["workload.phantom_reads"] == 0.0
    # The live config inherited the spec's quorum knobs and population.
    assert outcome.result.name == "live-chord-kv"
    assert metrics["nodes.count"] == 4.0
