"""End-to-end live deployment: real processes, real sockets, same spec.

The in-test cluster is kept small (4 nodes, a few seconds) so the tier-1
suite stays fast; the CI live-smoke job and scripts/run_live.py exercise the
8- and 32-node shapes.
"""

from __future__ import annotations

import pytest

from repro.live import LiveCluster, LiveClusterConfig, LiveClusterError

pytestmark = pytest.mark.live


def test_config_validation():
    with pytest.raises(LiveClusterError, match="at least one node"):
        LiveClusterConfig(nodes=0)
    with pytest.raises(LiveClusterError, match="unknown workload"):
        LiveClusterConfig(workload="teleport")
    with pytest.raises(LiveClusterError, match="no workload window"):
        LiveClusterConfig(nodes=16, duration=2.0, join_spacing=0.5)
    config = LiveClusterConfig(nodes=3, duration=5.0, packets=8)
    assert config.workload_start == pytest.approx(3 * 0.15 + 1.0)
    assert [config.probes_for(i) for i in range(3)] == [3, 3, 2]
    assert sorted(config.endpoints()) == [1, 2, 3]


def test_unknown_protocol_fails_before_spawning_processes():
    with pytest.raises(Exception, match="chrod|no specification"):
        LiveCluster(LiveClusterConfig(nodes=2, duration=5.0,
                                      protocol="chrod")).run()


def test_four_node_chord_cluster_routes_over_real_sockets():
    config = LiveClusterConfig(nodes=4, duration=4.0, join_spacing=0.1,
                               settle=0.8, packets=16, seed=5,
                               base_port=49140)
    outcome = LiveCluster(config).run()
    metrics = outcome.metrics

    assert metrics["nodes.joined"] == 4.0
    assert metrics["workload.sent"] == 16.0
    # Localhost, converged ring: the workload must essentially all route.
    assert metrics["workload.success_ratio"] >= 0.9
    assert metrics["ring.correct_successor_fraction"] == 1.0
    assert metrics["nodes.callback_errors"] == 0.0
    assert metrics["socket.decode_errors"] == 0.0
    # Real bytes moved between processes.
    assert metrics["transport.messages_sent"] > 0
    assert len(outcome.per_node) == 4
    for report in outcome.per_node:
        assert report["state"] == "joined"
        assert report["socket"]["bytes_sent"] > 0
    # Deliveries carried wall-clock latencies.
    assert metrics["workload.latency_mean"] > 0.0
    assert metrics["workload.latency_p95"] >= metrics["workload.latency_mean"] * 0.1
