"""Tests for semantic validation of mac specifications."""

from __future__ import annotations

import pytest

from repro.dsl.errors import MacValidationError
from repro.dsl.parser import parse_mac
from repro.dsl.validator import validate

VALID = """
protocol demo
addressing ip
states { joined; }
transports { TCP CONTROL; }
messages { CONTROL hello { int x; } }
state_variables { timer tick 1.0; int count; }
transitions {
    any API init { pass }
    joined recv hello { pass }
    joined timer tick { pass }
}
"""


def check(text):
    spec = parse_mac(text)
    validate(spec)
    return spec


def test_valid_spec_passes():
    check(VALID)


def expect_invalid(text, needle=""):
    # Some inconsistencies are caught while parsing, the rest during
    # validation; both surface as MacError subclasses.
    from repro.dsl.errors import MacError

    with pytest.raises(MacError) as excinfo:
        validate(parse_mac(text))
    if needle:
        assert needle in str(excinfo.value)


def test_duplicate_state():
    expect_invalid("protocol x states { a; a; }", "declared twice")


def test_redeclared_init_state():
    expect_invalid("protocol x states { init; }", "implicit")


def test_unknown_state_in_transition():
    expect_invalid("""
    protocol x states { a; }
    transitions { b API init { pass } }
    """, "state expression")


def test_transition_for_undeclared_message():
    expect_invalid("""
    protocol x states { a; }
    transitions { a recv nothere { pass } }
    """, "undeclared message")


def test_transition_for_undeclared_timer():
    expect_invalid("""
    protocol x states { a; }
    transitions { a timer nothere { pass } }
    """, "undeclared timer")


def test_unknown_api_name():
    expect_invalid("""
    protocol x states { a; }
    transitions { a API frobnicate { pass } }
    """, "unknown API")


def test_message_bound_to_undeclared_transport():
    expect_invalid("""
    protocol x states { a; }
    transports { TCP CONTROL; }
    messages { FAST hello { } }
    """, "undeclared transport")


def test_layered_protocol_must_not_declare_transports():
    expect_invalid("""
    protocol x uses pastry
    states { a; }
    transports { TCP CONTROL; }
    """, "lowest layer")


def test_neighbor_set_of_unknown_type():
    expect_invalid("""
    protocol x states { a; }
    state_variables { mysterious papa; }
    """, "undeclared neighbor type")


def test_neighbor_max_size_constant_must_resolve():
    expect_invalid("""
    protocol x states { a; }
    neighbor_types { kids MISSING { } }
    """, "unknown constant")


def test_fail_detect_only_on_neighbor_sets():
    expect_invalid("""
    protocol x states { a; }
    state_variables { fail_detect int c; }
    """)


def test_state_variable_name_collision_with_runtime():
    expect_invalid("""
    protocol x states { a; }
    state_variables { int state; }
    """, "collides")


def test_python_keyword_rejected():
    expect_invalid("""
    protocol x states { a; }
    state_variables { int lambda; }
    """, "keyword")


def test_empty_transition_body_rejected():
    expect_invalid("""
    protocol x states { a; }
    transitions { a API init {   } }
    """, "empty body")


def test_self_layering_rejected():
    expect_invalid("protocol x uses x states { a; }")


def test_duplicate_message_field():
    expect_invalid("""
    protocol x states { a; }
    transports { TCP C; }
    messages { C m { int a; int a; } }
    """, "declared twice")
