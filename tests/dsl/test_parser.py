"""Tests for the mac-file parser."""

from __future__ import annotations

import pytest

from repro.dsl.errors import MacSyntaxError
from repro.dsl.parser import parse_mac

MINIMAL = """
protocol demo
addressing ip
trace_med

constants { LIMIT = 3; RATE = 2.5; NAME = "x"; }

states { joining; joined; }

neighbor_types {
    parentt 1 { double delay; }
    childrenn LIMIT { double delay; ipaddr list backups; }
}

transports { TCP CONTROL; UDP BEST_EFFORT; }

messages {
    CONTROL join { ipaddr joiner; }
    BEST_EFFORT ping { }
    unbound_msg { int x; }
}

state_variables {
    fail_detect parentt papa;
    childrenn kids;
    int counter = 7;
    double ratio;
    timer ticker 2.0;
    timer oneshot;
    map table;
    list items;
}

transitions {
    any API init {
        state_change("joined")
    }

    joining recv join [locking read;] {
        pass
    }

    !(joining|init) timer ticker {
        counter = counter + 1
    }

    joined forward ping {
        quash = True
    }
}

routines {
    def helper(self, x):
        return x + 1
}
"""


def test_parse_headers_and_sections():
    spec = parse_mac(MINIMAL, "demo.mac")
    assert spec.name == "demo"
    assert spec.base is None
    assert spec.addressing == "ip"
    assert spec.trace == "med"
    assert spec.constant_map() == {"LIMIT": 3, "RATE": 2.5, "NAME": "x"}
    assert spec.states == ["joining", "joined"]
    assert [t.name for t in spec.transports] == ["CONTROL", "BEST_EFFORT"]
    assert spec.source_file == "demo.mac"


def test_parse_neighbor_types_and_fields():
    spec = parse_mac(MINIMAL)
    parent = spec.neighbor_type("parentt")
    children = spec.neighbor_type("childrenn")
    assert parent.max_size == 1
    assert children.max_size == "LIMIT"
    assert [field.name for field in children.fields] == ["delay", "backups"]
    assert children.fields[1].is_list


def test_parse_messages():
    spec = parse_mac(MINIMAL)
    join = spec.message("join")
    assert join.transport == "CONTROL"
    assert join.fields[0].name == "joiner"
    assert spec.message("unbound_msg").transport is None


def test_parse_state_variables():
    spec = parse_mac(MINIMAL)
    kinds = {var.name: var.kind for var in spec.state_vars}
    assert kinds == {"papa": "neighbor_set", "kids": "neighbor_set",
                     "counter": "var", "ratio": "var", "ticker": "timer",
                     "oneshot": "timer", "table": "map", "items": "list"}
    by_name = {var.name: var for var in spec.state_vars}
    assert by_name["papa"].fail_detect
    assert not by_name["kids"].fail_detect
    assert by_name["counter"].default == 7
    assert by_name["ticker"].period == 2.0
    assert by_name["oneshot"].period is None


def test_parse_transitions():
    spec = parse_mac(MINIMAL)
    assert len(spec.transitions) == 4
    init, join, ticker, fwd = spec.transitions
    assert (init.kind, init.name, init.state_expr, init.locking) == \
        ("api", "init", "any", "write")
    assert (join.kind, join.name, join.locking) == ("recv", "join", "read")
    assert ticker.state_expr == "!(joining|init)"
    assert fwd.kind == "forward"
    assert "quash = True" in fwd.code


def test_parse_routines():
    spec = parse_mac(MINIMAL)
    assert len(spec.routines) == 1
    assert "def helper" in spec.routines[0].code


def test_uses_header_and_auxiliary_data_spelling():
    text = """
    protocol scribe uses pastry
    addressing hash
    auxiliary data { int x; }
    transitions { any API init { pass } }
    """
    spec = parse_mac(text)
    assert spec.base == "pastry"
    assert spec.state_vars[0].name == "x"


def test_lines_of_code_ignores_comments_and_blanks():
    spec = parse_mac(MINIMAL)
    counted = spec.lines_of_code()
    assert 0 < counted < len(MINIMAL.splitlines())


@pytest.mark.parametrize("text", [
    "addressing ip",                                    # missing protocol header
    "protocol x addressing nowhere",                    # bad addressing
    "protocol x trace_insane",                          # bad trace level
    "protocol x states { joined }",                     # missing semicolon
    "protocol x transports { XTP FAST; }",              # unknown transport kind
    "protocol x transitions { any API init }",          # missing body
    "protocol x transitions { any blorp foo { pass } }",  # bad event keyword
    "protocol x unknown_section { }",
])
def test_syntax_errors(text):
    with pytest.raises(MacSyntaxError):
        parse_mac(text)
