"""Tests for the mac-file lexer."""

from __future__ import annotations

import pytest

from repro.dsl.errors import MacSyntaxError
from repro.dsl.lexer import EOF, IDENT, NUMBER, PUNCT, STRING, Lexer


def tokens_of(text):
    lexer = Lexer(text)
    out = []
    while not lexer.at_eof():
        out.append(lexer.next())
    return out


def test_basic_token_kinds():
    tokens = tokens_of('protocol overcast 42 3.5 "hello" { } ; | ! ( ) =')
    kinds = [token.kind for token in tokens]
    assert kinds[:2] == [IDENT, IDENT]
    assert kinds[2] == NUMBER and tokens[2].value == "42"
    assert kinds[3] == NUMBER and tokens[3].value == "3.5"
    assert kinds[4] == STRING and tokens[4].value == "hello"
    assert all(kind == PUNCT for kind in kinds[5:])


def test_comments_are_skipped():
    text = """
    // a line comment
    protocol x  # hash comment
    /* block
       comment */ addressing ip
    """
    values = [token.value for token in tokens_of(text)]
    assert values == ["protocol", "x", "addressing", "ip"]


def test_line_numbers_tracked():
    lexer = Lexer("protocol x\naddressing ip\n")
    assert lexer.next().line == 1
    assert lexer.next().line == 1
    assert lexer.next().line == 2


def test_unterminated_comment_and_string():
    with pytest.raises(MacSyntaxError):
        tokens_of("/* never closed")
    with pytest.raises(MacSyntaxError):
        tokens_of('"never closed')


def test_unexpected_character():
    with pytest.raises(MacSyntaxError):
        tokens_of("protocol @")


def test_expect_helpers():
    lexer = Lexer("protocol x { }")
    lexer.expect_ident("protocol")
    lexer.expect_ident()
    lexer.expect_punct("{")
    assert not lexer.accept_punct(";")
    assert lexer.accept_punct("}")
    assert lexer.at_eof()
    with pytest.raises(MacSyntaxError):
        Lexer("foo").expect_ident("bar")
    with pytest.raises(MacSyntaxError):
        Lexer("foo").expect_punct("{")


def test_raw_block_with_nested_braces_strings_and_comments():
    code = """{
        d = {"a": 1, "b": {2: 3}}
        s = "a } in a string"
        # a } in a comment
        if d:
            pass
    }"""
    lexer = Lexer(code)
    body, line = lexer.read_raw_block()
    assert '"a": 1' in body
    assert "a } in a string" in body
    assert "a } in a comment" in body
    assert line == 1
    assert lexer.at_eof()


def test_raw_block_honours_peeked_open_brace():
    lexer = Lexer("{ pass }")
    assert lexer.peek().is_punct("{")
    body, _ = lexer.read_raw_block()
    assert body.strip() == "pass"


def test_raw_block_unterminated():
    with pytest.raises(MacSyntaxError):
        Lexer("{ if x:").read_raw_block()


def test_raw_block_triple_quoted_string():
    lexer = Lexer('{ s = """doc { with braces }""" }')
    body, _ = lexer.read_raw_block()
    assert "doc { with braces }" in body
