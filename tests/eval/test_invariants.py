"""Tests for the runtime invariant checkers."""

from __future__ import annotations

import pytest

from repro.eval import (
    ChurnModel,
    PartitionModel,
    ScenarioSpec,
    WorkloadModel,
    check_invariants,
    epoch_monotonicity,
    no_duplicate_delivery,
    no_lost_acks,
    ring_eventually_correct,
)
from repro.eval.invariants import last_disruption
from repro.protocols.ring import RingDhtAgent, ring_agent
from repro.runtime.failure import FailureDetectorConfig

FAST_FAILURE = FailureDetectorConfig(failure_timeout=10.0,
                                     heartbeat_timeout=4.0,
                                     check_interval=1.0)


def run_spec(models, *, agents=None, num_nodes: int = 6, seed: int = 1,
             duration: float = 110.0):
    return ScenarioSpec(
        name="invariants", agents=agents or [ring_agent()],
        num_nodes=num_nodes, duration=duration, seed=seed,
        failure_config=FAST_FAILURE, models=tuple(models)).run()


ADVERSARIAL = [
    ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.34,
               churn_start=20.0, churn_end=55.0, downtime=8.0),
    WorkloadModel(kind="route", source=-1, start=15.0, packets=15, gap=2.0),
]


def test_clean_adversarial_run_satisfies_all_invariants():
    result = run_spec(ADVERSARIAL)
    assert check_invariants(result) == []


def test_last_disruption_ignores_unfired_and_measurement_events():
    result = run_spec(ADVERSARIAL)
    when = last_disruption(result)
    assert 0.0 < when <= result.duration
    # Route probes happen later than the final churn event but never count.
    route_times = [t for t, kind, _ in result.events if kind == "route"]
    assert max(route_times) > when


def test_duplicate_delivery_detected():
    class DoubleDeliverAgent(RingDhtAgent):
        def _route_data(self, target, payload, payload_size, hops):
            if self._owns(target):
                self.upcall_deliver(payload, payload_size, "data")
                self.upcall_deliver(payload, payload_size, "data")
                return
            super()._route_data(target, payload, payload_size, hops)

    result = run_spec(ADVERSARIAL, agents=[DoubleDeliverAgent])
    violations = no_duplicate_delivery(result)
    assert violations
    assert violations[0].invariant == "no_duplicate_delivery"
    assert "duplicate" in str(violations[0])


def test_epoch_monotonicity_detects_tampered_epoch():
    result = run_spec(ADVERSARIAL)
    assert epoch_monotonicity(result) == []
    victim = result.experiment.nodes[2]
    victim.transport_host.epoch += 7
    violations = epoch_monotonicity(result)
    assert violations
    assert str(victim.address) in str(violations[0])


def test_no_lost_acks_detects_disarmed_retransmission_timer():
    from repro.transport.reliable import ReliableTransport

    result = run_spec(ADVERSARIAL)
    assert no_lost_acks(result) == []
    # Forge a stranded connection: in-flight data, timer disarmed.
    for node in result.experiment.nodes:
        if node.crashed:
            continue
        for transport in node.transport_host._transports.values():
            if isinstance(transport, ReliableTransport) and \
                    transport._connections:
                connection = next(iter(transport._connections.values()))
                connection.in_flight[99999] = object()
                connection._timer_armed = False
                violations = no_lost_acks(result)
                assert violations
                assert "no retransmission timer" in str(violations[0])
                return
    pytest.fail("no reliable connection found to tamper with")


def test_ring_invariant_detects_scrambled_successors():
    result = run_spec(ADVERSARIAL)
    assert ring_eventually_correct(result) == []
    # Point everyone at themselves: 0% correct successors.
    for node in result.experiment.nodes:
        node.lowest_agent.successor = node.address
    violations = ring_eventually_correct(result)
    assert violations
    assert violations[0].invariant == "ring_eventually_correct"


def test_ring_invariant_vacuous_without_settle_window():
    # Partition heals 5 s before the end: no settle window, no verdict.
    result = run_spec(
        [ChurnModel(join="staggered", join_spacing=0.5),
         PartitionModel(at=100.0, heal_after=5.0,
                        groups=((0, 1, 2), (3, 4, 5)))],
        duration=105.0)
    for node in result.experiment.nodes:
        node.lowest_agent.successor = node.address
    assert ring_eventually_correct(result) == []


def test_ring_invariant_vacuous_for_ringless_protocols():
    class NoRingAgent(RingDhtAgent):
        pass

    result = run_spec(ADVERSARIAL, agents=[NoRingAgent])
    for node in result.experiment.nodes:
        del node.lowest_agent.successor   # instance attr; spec var machinery
    assert ring_eventually_correct(result) == []


def test_check_invariants_aggregates_everything():
    result = run_spec(ADVERSARIAL)
    result.experiment.nodes[1].transport_host.epoch += 3
    for node in result.experiment.nodes:
        node.lowest_agent.successor = node.address
    names = {v.invariant for v in check_invariants(result)}
    assert "epoch_monotonicity" in names
    assert "ring_eventually_correct" in names
