"""Tests for the evaluation framework (metrics, LOC, reports, harness)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.eval import (
    ExperimentConfig,
    OverlayExperiment,
    correct_chord_fingers,
    expansion_factor,
    format_series,
    format_table,
    generated_loc,
    group_by_site,
    mean,
    percentile,
    relative_delay_penalty,
    spec_loc,
    stretch_samples,
)
from repro.eval.metrics import StretchSample
from repro.network import NetworkEmulator, transit_stub_topology
from repro.protocols import randtree_agent
from repro.runtime import Simulator
from repro.runtime.keys import KeySpace


def test_stretch_samples_and_rdp():
    simulator = Simulator(seed=1)
    emulator = NetworkEmulator(simulator, transit_stub_topology(3, seed=1))
    a = emulator.attach_host().address
    b = emulator.attach_host().address
    direct = emulator.ip_latency(a, b)
    samples = stretch_samples(emulator, a, {b: direct * 2, a: 0.0})
    assert len(samples) == 1
    assert samples[0].stretch == pytest.approx(2.0)
    assert relative_delay_penalty(samples) == pytest.approx(2.0)
    assert relative_delay_penalty([]) == 0.0


def test_stretch_sample_degenerate_direct_latency():
    sample = StretchSample(receiver=1, overlay_latency=0.5, direct_latency=0.0)
    assert sample.stretch == 1.0


def test_mean_and_percentile():
    assert mean([]) == 0.0
    assert mean([1, 2, 3]) == 2.0
    assert percentile([], 0.5) == 0.0
    assert percentile([1, 2, 3, 4, 5], 0.0) == 1
    assert percentile([1, 2, 3, 4, 5], 1.0) == 5
    assert percentile([1, 2, 3, 4, 5], 0.5) == 3


def test_group_by_site():
    grouped = group_by_site({1: 0.5, 2: 0.7, 3: 0.9}, {1: 0, 2: 0, 3: 1})
    assert grouped == {0: [0.5, 0.7], 1: [0.9]}


def test_correct_chord_fingers_matches_manual_ring():
    space = KeySpace(bits=8, digit_bits=4)
    membership = [(10, 1), (100, 2), (200, 3)]
    correct = correct_chord_fingers(10, membership, num_fingers=8, key_space=space)
    assert correct[0] == (100, 2)        # 10 + 1 -> next node is 100
    assert correct[7] == (200, 3)        # 10 + 128 = 138 -> next node is 200
    # Wrapping: 200 + 64 = 264 mod 256 = 8 -> wraps to node 10.
    wrapped = correct_chord_fingers(200, membership, num_fingers=8, key_space=space)
    assert wrapped[6] == (10, 1)


def test_loc_reporting_consistency():
    spec = spec_loc()
    generated = generated_loc()
    factors = expansion_factor()
    assert set(spec) == set(generated) == set(factors)
    assert all(factors[name] == pytest.approx(generated[name] / spec[name])
               for name in spec)


def test_format_table_and_series_alignment():
    table = format_table(["name", "value"], [("a", 1.5), ("long-name", 20)],
                         title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    series = format_series("curve", [(0.0, 1.0), (1.0, 2.0)])
    assert "curve" in series
    assert "1.000" in series


def test_overlay_experiment_end_to_end():
    experiment = OverlayExperiment([randtree_agent()],
                                   ExperimentConfig(num_nodes=10, seed=5,
                                                    convergence_time=60.0))
    experiment.init_all()
    experiment.converge()
    assert experiment.states().get("joined") == 10
    latencies = experiment.multicast_latency_probe(experiment.bootstrap, group=1,
                                                   packets=3)
    assert len(latencies) >= 8
    assert all(value > 0 for value in latencies.values())
    series = experiment.sample_over_time(lambda: float(experiment.simulator.now),
                                         interval=1.0, duration=5.0)
    assert len(series) == 6
    assert series[0][0] == 0.0


def test_overlay_experiment_rejects_bad_config():
    with pytest.raises(ValueError):
        OverlayExperiment([randtree_agent()], ExperimentConfig(num_nodes=0))


@given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=50))
def test_mean_bounded_by_min_max(values):
    m = mean(values)
    assert min(values) - 1e-9 <= m <= max(values) + 1e-9
