"""Determinism pins for the observability layer's *disabled* path.

The contract (ISSUE: observability): a run with ``obs=None`` executes the
exact historical code paths — same RNG draws, same event ordering, same
metrics — and a run with obs *enabled* observes without perturbing.  Both
halves are pinned here against baselines captured at the commit that
introduced ``repro.obs`` (i.e. from HEAD~ of that change):

* a low-level engine/emulator fingerprint (fixed seed, 64 hosts, 2 000
  packets) byte-compares delivery, latency-sum and link-stress numbers;
* a full churn scenario (joins, crashes, a route workload, the failure
  detector) byte-compares every scenario metric for two seeds;
* the same churn scenario with full observability enabled must produce
  the identical metrics dict — tracing is read-only.

Floats are compared via ``repr`` so drift of even one ULP fails.
"""

from __future__ import annotations

import pytest

from repro.eval.library import resolve_protocol
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel
from repro.obs import ObsConfig
from repro.network.emulator import NetworkEmulator
from repro.network.packet import Packet
from repro.network.topology import transit_stub_topology
from repro.runtime.engine import Simulator
from repro.runtime.failure import FailureDetectorConfig

# Captured on the commit preceding the observability layer (obs=None must
# keep reproducing these bytes forever).
FINGERPRINT_BASELINE = {
    "packets_sent": 2000,
    "packets_delivered": 1984,
    "packets_dropped": 16,
    "bytes_delivered": 1498160,
    "events_processed": 3984,
    "final_time": "10.084881915227912",
    "latency_count": 1984,
    "latency_sum": "155.36922941464437",
    "max_link_stress": 62,
}

CHURN_BASELINES = {
    1: {
        "churn.churn_cycles": "1.0",
        "churn.joins": "10.0",
        "net.bytes_delivered": "467864.0",
        "net.packets_delivered": "21166.0",
        "net.packets_dropped": "28.0",
        "net.packets_sent": "21199.0",
        "nodes.alive": "10.0",
        "nodes.crashes": "1.0",
        "nodes.recoveries": "1.0",
        "sim.events_processed": "25865.0",
        "workload.deliveries": "57.0",
        "workload.duplicates": "0.0",
        "workload.latency_mean": "0.35329278469506986",
        "workload.latency_p95": "0.18418123074656023",
        "workload.sent": "59.0",
        "workload.skipped": "1.0",
        "workload.success_ratio": "0.9661016949152542",
    },
    2: {
        "churn.churn_cycles": "1.0",
        "churn.joins": "10.0",
        "net.bytes_delivered": "463168.0",
        "net.packets_delivered": "21048.0",
        "net.packets_dropped": "29.0",
        "net.packets_sent": "21082.0",
        "nodes.alive": "10.0",
        "nodes.crashes": "1.0",
        "nodes.recoveries": "1.0",
        "sim.events_processed": "25746.0",
        "workload.deliveries": "56.0",
        "workload.duplicates": "0.0",
        "workload.latency_mean": "0.2096161860059603",
        "workload.latency_p95": "0.15263670109663252",
        "workload.sent": "59.0",
        "workload.skipped": "1.0",
        "workload.success_ratio": "0.9491525423728814",
    },
}


def engine_fingerprint(seed: int = 7, num_hosts: int = 64,
                       num_packets: int = 2_000) -> dict:
    """Mirror of ``scripts/run_benchmarks.py::metrics_fingerprint``."""
    simulator = Simulator(seed=seed)
    topology = transit_stub_topology(num_hosts, seed=seed)
    emulator = NetworkEmulator(simulator, topology, random_loss_rate=0.01)
    addresses = [emulator.attach_host().address for _ in range(num_hosts)]

    latencies: list[float] = []

    def on_receive(packet: Packet) -> None:
        latencies.append(simulator.now - packet.created_at)

    for address in addresses:
        emulator.set_receive_callback(address, on_receive)

    rng = simulator.fork_rng("bench-traffic")

    def send_one(src: int, dst: int, size: int) -> None:
        emulator.send(Packet(src=src, dst=dst, payload=None, size=size),
                      payload_tag=f"probe-{size % 7}")

    for index in range(num_packets):
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts)
        if dst == src:
            dst = (dst + 1) % num_hosts
        size = rng.randint(100, 1400)
        simulator.schedule(index * 0.005, send_one,
                           addresses[src], addresses[dst], size)
    simulator.run()

    stress = max((view.max_stress for view in emulator.link_stats().values()),
                 default=0)
    return {
        "packets_sent": emulator.stats.packets_sent,
        "packets_delivered": emulator.stats.packets_delivered,
        "packets_dropped": emulator.stats.packets_dropped,
        "bytes_delivered": emulator.stats.bytes_delivered,
        "events_processed": simulator.events_processed,
        "final_time": repr(simulator.now),
        "latency_count": len(latencies),
        "latency_sum": repr(sum(latencies)),
        "max_link_stress": stress,
    }


def churn_spec(seed: int, obs: ObsConfig | None = None) -> ScenarioSpec:
    duration = 120.0
    return ScenarioSpec(
        name="obs-pin-churn",
        agents=resolve_protocol("chord"),
        num_nodes=10,
        duration=duration,
        seed=seed,
        failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                             heartbeat_timeout=4.0,
                                             check_interval=1.0),
        models=(ChurnModel(join="staggered", join_spacing=0.5,
                           churn_fraction=0.10,
                           churn_start=duration * 0.25,
                           churn_end=duration * 0.85,
                           downtime=15.0),
                WorkloadModel(kind="route", source=-1,
                              start=duration * 0.15,
                              packets=int(duration // 2), gap=1.5)),
        obs=obs)


def byte_metrics(result) -> dict[str, str]:
    return {key: repr(value) for key, value in sorted(result.metrics.items())}


def test_engine_fingerprint_is_byte_identical_to_pre_obs_baseline():
    assert engine_fingerprint() == FINGERPRINT_BASELINE


@pytest.mark.parametrize("seed", sorted(CHURN_BASELINES))
def test_churn_metrics_are_byte_identical_to_pre_obs_baseline(seed):
    assert byte_metrics(churn_spec(seed).run()) == CHURN_BASELINES[seed]


def test_enabling_observability_does_not_perturb_metrics(tmp_path):
    obs = ObsConfig(trace_path=str(tmp_path / "trace.jsonl"),
                    trace_level="med", causal=True,
                    snapshot_path=str(tmp_path / "obs.json"))
    observed = churn_spec(1, obs=obs).run()
    assert byte_metrics(observed) == CHURN_BASELINES[1]
    # And it really did observe: the snapshot carries trace/causal activity.
    assert observed.obs["counters"]["trace.records"] > 0
    assert observed.obs["counters"]["causal.traces"] > 0
