"""Tests for the declarative scenario subsystem and the multi-seed runner."""

from __future__ import annotations

import pytest

from repro.eval import (
    ChurnModel,
    CrashModel,
    ExperimentConfig,
    OverlayExperiment,
    PartitionModel,
    SampleSeries,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    SummaryStats,
    WorkloadModel,
)
from repro.network.topology import TopologyError, transit_stub_topology
from repro.protocols.ring import ring_agent, ring_successor_correctness
from repro.runtime.failure import FailureDetectorConfig

#: Aggressive failure detection keeps test scenarios short.
FAST_FAILURE = FailureDetectorConfig(failure_timeout=10.0,
                                     heartbeat_timeout=4.0,
                                     check_interval=1.0)


def ring_experiment(num_nodes: int = 8, seed: int = 1,
                    duration: float = 120.0) -> OverlayExperiment:
    return OverlayExperiment(
        [ring_agent()],
        ExperimentConfig(num_nodes=num_nodes, seed=seed,
                         convergence_time=duration,
                         failure_config=FAST_FAILURE))


# ----------------------------------------------------------------- model compile
def test_churn_model_staggered_join_schedule():
    experiment = ring_experiment()
    compiled = experiment.apply_model(
        ChurnModel(join="staggered", join_spacing=0.5))
    joins = [event for event in compiled.events if event.kind == "join"]
    assert len(joins) == 8
    assert [event.time for event in joins] == [i * 0.5 for i in range(8)]


def test_churn_model_poisson_joins_monotone_and_seed_dependent():
    experiment = ring_experiment()
    compiled = experiment.apply_model(ChurnModel(join="poisson", join_rate=2.0))
    times = [event.time for event in compiled.events if event.kind == "join"]
    assert times[0] == 0.0
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_churn_model_schedules_crash_and_rejoin_pairs():
    experiment = ring_experiment()
    compiled = experiment.apply_model(
        ChurnModel(churn_fraction=0.5, churn_start=30.0, downtime=10.0),
        horizon=100.0)
    crashes = [e for e in compiled.events if e.kind == "crash"]
    recovers = [e for e in compiled.events if e.kind == "recover"]
    assert len(crashes) == round(0.5 * 7)  # bootstrap exempt
    assert len(recovers) == len(crashes)
    for crash, recover in zip(crashes, recovers):
        assert recover.time == pytest.approx(crash.time + 10.0)
        assert 30.0 <= crash.time <= 100.0


def test_churn_crashes_never_precede_the_victims_join():
    experiment = ring_experiment()
    compiled = experiment.apply_model(
        ChurnModel(join="staggered", join_spacing=20.0, churn_fraction=1.0,
                   churn_start=0.0, downtime=5.0),
        horizon=300.0)
    join_at = {event.detail.split()[1]: event.time
               for event in compiled.events if event.kind == "join"}
    crashes = [e for e in compiled.events if e.kind == "crash"]
    assert crashes
    for event in crashes:
        victim = event.detail.split()[1]
        assert event.time >= join_at[victim]


def test_scenario_restores_chained_handlers_in_reverse_order():
    spec = ScenarioSpec(
        name="two-workloads", agents=[ring_agent()], num_nodes=4,
        duration=40.0, failure_config=FAST_FAILURE,
        models=(ChurnModel(join="immediate"),
                WorkloadModel(kind="route", source=-1, start=20.0, packets=3),
                WorkloadModel(kind="route", source=-1, start=20.0, packets=3)),
    )
    result = spec.run()
    # After the run, every node is back to its pristine (empty) handlers —
    # no workload recorder left chained in.
    for node in result.experiment.nodes:
        assert node.handlers.deliver is None


def test_crash_model_rejects_victims_and_fraction_together():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError):
        experiment.apply_model(CrashModel(at=1.0, victims=(1,), fraction=0.5))


def test_crash_model_rejects_out_of_range_victims():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError):
        experiment.apply_model(CrashModel(at=1.0, victims=(99,)))


def test_partition_model_requires_groups_or_links():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError):
        experiment.apply_model(PartitionModel(at=1.0))


def test_negative_event_time_rejected():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError):
        experiment.apply_model(CrashModel(at=-5.0, victims=(1,)))


def test_workload_model_rejects_unknown_kind():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError):
        experiment.apply_model(WorkloadModel(kind="teleport"))


def test_concurrent_workloads_get_distinct_streams():
    experiment = ring_experiment(num_nodes=4, seed=9)
    experiment.init_all()
    experiment.run(30.0)
    first = experiment.apply_model(
        WorkloadModel(kind="route", source=-1, packets=5, gap=0.5))
    second = experiment.apply_model(
        WorkloadModel(kind="route", source=-1, packets=8, gap=0.5))
    experiment.run(20.0)
    # Each model scored only its own probes despite overlapping seqnos.
    assert first.observations.sent == 5
    assert second.observations.sent == 8
    assert first.observations.success_ratio == 1.0
    assert second.observations.success_ratio == 1.0
    # Auto ids start above app-conventional stream numbers.
    base = WorkloadModel.AUTO_STREAM_BASE
    assert experiment.workload_streams == {base, base + 1}
    with pytest.raises(ScenarioError):
        experiment.apply_model(WorkloadModel(kind="route", stream_id=base))


# ----------------------------------------------------- experiment thin wrappers
def test_init_all_is_synchronous_for_immediate_joins():
    experiment = ring_experiment(num_nodes=4)
    experiment.init_all()
    assert all(node.initialized for node in experiment.nodes)


def test_experiment_rejects_more_nodes_than_attachment_points():
    topology = transit_stub_topology(4, seed=1)
    with pytest.raises(TopologyError) as excinfo:
        OverlayExperiment([ring_agent()],
                          ExperimentConfig(num_nodes=10, topology=topology))
    message = str(excinfo.value)
    assert "num_nodes=10" in message and "4 client attachment points" in message


def test_workload_chains_and_probe_restores_deliver_handlers():
    experiment = ring_experiment(num_nodes=4, seed=5)
    experiment.init_all()
    experiment.run(30.0)
    seen = []
    original = lambda payload, size, mtype: seen.append(payload)  # noqa: E731
    for node in experiment.nodes:
        node.macedon_register_handlers(deliver=original)
    originals = [node.handlers for node in experiment.nodes]

    compiled = experiment.apply_model(
        WorkloadModel(kind="route", source=-1, packets=10, gap=0.5))
    experiment.run(30.0)
    observations = compiled.observations
    assert observations.sent == 10
    assert observations.success_ratio == 1.0
    # Chaining: the application's own handler still fired for every delivery.
    assert len(seen) == observations.deliveries
    compiled.restore()
    assert [node.handlers for node in experiment.nodes] == originals

    # The probe wrapper restores handlers by itself (the old clobbering bug).
    experiment.multicast_latency_probe(experiment.nodes[1], group=7, packets=2,
                                       settle=5.0)
    assert [node.handlers for node in experiment.nodes] == originals


def test_configure_hook_reapplied_after_recovery():
    spec = ScenarioSpec(
        name="retune", agents=[ring_agent()], num_nodes=4, duration=60.0,
        failure_config=FAST_FAILURE,
        models=(ChurnModel(join="immediate"),
                CrashModel(at=10.0, victims=(2,), recover_after=15.0)),
        configure=lambda exp: [setattr(node.lowest_agent, "tuned", True)
                               for node in exp.nodes],
    )
    result = spec.run()
    node = result.experiment.nodes[2]
    assert node.crash_count == 1 and node.alive
    # Recovery rebuilt the agent stack; the hook must have re-tuned it.
    assert getattr(node.lowest_agent, "tuned", False)


# -------------------------------------------------------------- whole scenarios
def churn_crash_partition_spec(seed: int = 1) -> ScenarioSpec:
    """The acceptance scenario: churn + crash + partition + workload."""
    return ScenarioSpec(
        name="acceptance",
        agents=[ring_agent()],
        num_nodes=10,
        duration=150.0,
        seed=seed,
        failure_config=FAST_FAILURE,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.25,
                       churn_start=30.0, churn_end=100.0, downtime=12.0),
            CrashModel(at=50.0, victims=(3,), recover_after=20.0),
            PartitionModel(at=70.0, heal_after=15.0,
                           groups=((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))),
            WorkloadModel(kind="route", source=-1, start=25.0, packets=60,
                          gap=1.5),
        ),
        samples=(SampleSeries("succ_correctness", 10.0,
                              lambda exp: ring_successor_correctness(exp.nodes)),),
    )


def test_scenario_run_produces_metrics_series_and_events():
    result = churn_crash_partition_spec().run()
    metrics = result.metrics
    assert metrics["churn.joins"] == 10.0
    assert metrics["nodes.crashes"] >= 2          # churn victims + CrashModel
    assert metrics["workload.sent"] > 0
    assert 0.0 < metrics["workload.success_ratio"] <= 1.0
    assert metrics["net.packets_dropped"] > 0     # the partition bit someone
    kinds = {kind for _, kind, _ in result.events}
    assert {"join", "crash", "recover", "partition", "heal"} <= kinds
    series = result.series["succ_correctness"]
    assert len(series) == 16                      # t = 0, 10, ..., 150
    assert series[-1][1] > 0.5                    # ring mostly repaired


@pytest.mark.determinism
def test_combined_scenario_is_deterministic_for_fixed_seed():
    first = churn_crash_partition_spec(seed=7).run()
    second = churn_crash_partition_spec(seed=7).run()
    assert first.metrics == second.metrics
    assert first.series == second.series
    assert first.events == second.events
    # And the scenario actually exercised every fault path.
    assert first.metrics["nodes.crashes"] > 0
    assert first.metrics["nodes.recoveries"] > 0


@pytest.mark.determinism
def test_combined_scenario_diverges_across_seeds():
    assert churn_crash_partition_spec(seed=1).run().metrics != \
        churn_crash_partition_spec(seed=2).run().metrics


# ----------------------------------------------------------------------- runner
def test_runner_aggregates_metrics_across_seeds():
    spec = ScenarioSpec(
        name="runner", agents=[ring_agent()], num_nodes=6, duration=60.0,
        failure_config=FAST_FAILURE,
        models=(ChurnModel(join="staggered", join_spacing=0.25),
                WorkloadModel(kind="route", source=-1, start=20.0,
                              packets=20, gap=1.0)),
    )
    summary = ScenarioRunner(spec, seeds=[1, 2, 3]).run()
    assert [result.seed for result in summary.results] == [1, 2, 3]
    stats = summary.metric("workload.success_ratio")
    assert stats.count == 3
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.minimum <= stats.p50 <= stats.maximum
    assert "workload.success_ratio" in summary.table()
    with pytest.raises(KeyError):
        summary.metric("no.such.metric")


def test_runner_requires_seeds():
    spec = churn_crash_partition_spec()
    with pytest.raises(ValueError):
        ScenarioRunner(spec, seeds=[])


def test_summary_stats_from_values():
    stats = SummaryStats.from_values([1.0, 2.0, 3.0, 4.0])
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.stddev == pytest.approx(1.11803, rel=1e-4)
    empty = SummaryStats.from_values([])
    assert empty.count == 0 and empty.mean == 0.0
