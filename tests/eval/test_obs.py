"""The observability layer: registry primitives, artifacts, causal tracing.

The byte-identity contract of the *disabled* path is pinned separately in
test_obs_pin.py; this module covers the enabled path — the metrics
registry, the canonical namespace, snapshot/trace artifact round-trips,
sharded key parity, facade plumbing, and route reconstruction.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro
from repro.eval.library import resolve_protocol
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel
from repro.obs import (Histogram, MetricsRegistry, ObsConfig, base_registry,
                       load_obs_snapshot, load_trace, reconstruct_routes,
                       validate_obs_snapshot)


def traced_spec(seed: int = 3, **obs_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="obs-test", agents=resolve_protocol("chord"),
        num_nodes=8, duration=40.0, seed=seed,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="route", source=-1, start=10.0,
                              packets=12, gap=1.0)),
        obs=ObsConfig(**obs_kwargs))


# ------------------------------------------------------------------ registry
def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.gauge("g").add(0.5)
    histogram = registry.histogram("h", bounds=(1.0, 10.0))
    histogram.observe_many([0.5, 5.0, 50.0])
    snapshot = registry.snapshot()
    assert snapshot["counters"]["c"] == 5
    assert snapshot["gauges"]["g"] == 3.0
    assert snapshot["histograms"]["h"]["counts"] == [1, 1, 1]
    assert snapshot["histograms"]["h"]["min"] == 0.5
    assert snapshot["histograms"]["h"]["max"] == 50.0
    assert histogram.mean() == pytest.approx(55.5 / 3)


def test_histogram_bounds_validation():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))
    Histogram((1.0, 2.0, 3.0))   # ascending is fine


def test_registry_merge_is_additive():
    left, right = base_registry(), base_registry()
    left.counter("net.packets_sent").inc(3)
    right.counter("net.packets_sent").inc(4)
    left.gauge("nodes.alive").add(2)
    right.gauge("nodes.alive").add(5)
    left.histogram("workload.latency").observe(0.02)
    right.histogram("workload.latency").observe(3.0)
    left.merge(right.snapshot())
    snapshot = left.snapshot()
    assert snapshot["counters"]["net.packets_sent"] == 7
    assert snapshot["gauges"]["nodes.alive"] == 7.0
    assert snapshot["histograms"]["workload.latency"]["count"] == 2
    assert snapshot["histograms"]["workload.latency"]["max"] == 3.0


def test_histogram_merge_rejects_mismatched_bounds():
    histogram = Histogram((1.0, 2.0))
    with pytest.raises(ValueError, match="bounds mismatch"):
        histogram.merge(Histogram((1.0, 3.0)).snapshot())


def test_base_registry_precreates_the_full_namespace():
    snapshot = base_registry().snapshot()
    assert snapshot["counters"]["shard.windows"] == 0
    assert snapshot["counters"]["errors.reassembly_timeouts"] == 0
    assert snapshot["gauges"]["nodes.total"] == 0.0
    assert snapshot["histograms"]["causal.route_hops"]["count"] == 0
    validate_obs_snapshot({"schema": "repro.obs/1", **snapshot})


# ----------------------------------------------------------------- sim runs
def test_sim_run_attaches_validated_snapshot(tmp_path):
    snapshot_path = tmp_path / "obs.json"
    result = traced_spec(snapshot_path=str(snapshot_path)).run()
    assert result.obs is not None
    validate_obs_snapshot(result.obs)
    assert result.obs["mode"] == "sim"
    assert result.obs["name"] == "obs-test"
    assert result.obs["counters"]["workload.sent"] == 12
    assert result.obs["counters"]["net.packets_sent"] > 0
    # The file round-trips through schema validation.
    assert load_obs_snapshot(str(snapshot_path)) == result.obs


def test_causal_tracing_reconstructs_routes(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    result = traced_spec(trace_path=str(trace_path), causal=True).run()
    assert result.obs["counters"]["causal.traces"] > 0
    assert result.obs["counters"]["causal.hops"] \
        >= result.obs["counters"]["causal.traces"]
    header, records = load_trace(str(trace_path))
    assert header["mode"] == "sim" and header["seed"] == 3
    routes = reconstruct_routes(records)
    assert routes
    for route in routes:
        assert route["hops"] >= 1
        assert len(route["path"]) == route["hops"] + 1
        assert len(route["latencies"]) == route["hops"]
        assert route["total_latency"] == pytest.approx(
            sum(route["latencies"]))
    # Every reconstructed route landed in the hop-count histogram.
    assert result.obs["histograms"]["causal.route_hops"]["count"] \
        == len(routes)


def test_trace_level_overrides_flow_into_the_run(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    # The chord spec declares ``trace_ off``, so nothing records without
    # the per-run floor; with the floor at MED the generated transitions
    # and message sends record through their default MED thresholds.
    result = traced_spec(trace_path=str(trace_path),
                         trace_level="med").run()
    tracer = result.experiment.tracer
    assert tracer.has_overrides
    assert tracer.count("transition") > 0
    assert tracer.count("message_send") > 0
    assert tracer.count("timer") == 0           # timer still needs HIGH
    assert result.obs["counters"]["trace.records"] > 0
    header, records = load_trace(str(trace_path))
    assert any(record["cat"] == "transition" for record in records)


def test_category_override_can_silence_a_noisy_category(tmp_path):
    baseline = traced_spec(trace_level="med").run()
    silenced = traced_spec(trace_level="med",
                           category_levels={"transition": "off"}).run()
    assert baseline.experiment.tracer.count("transition") > 0
    assert silenced.experiment.tracer.count("transition") == 0
    assert silenced.experiment.tracer.count("message_send") > 0


# ------------------------------------------------------------------- sharded
def test_sharded_snapshot_has_identical_keys_and_shard_counters(tmp_path):
    spec = traced_spec(causal=True,
                       trace_path=str(tmp_path / "trace.jsonl"))
    sim = spec.run()
    sharded = spec.run_sharded(2)
    assert sharded.obs["mode"] == "sharded"
    assert sharded.obs["shards"] == 2
    for section in ("counters", "gauges", "histograms"):
        assert set(sharded.obs[section]) == set(sim.obs[section])
    assert sharded.obs["counters"]["shard.windows"] > 0
    assert sharded.obs["counters"]["shard.cross_shard_packets"] > 0
    assert sharded.obs["gauges"]["nodes.total"] == 8.0
    # Each forked worker spilled its own shard-suffixed stream.
    shard_files = sorted(path.name for path in tmp_path.iterdir())
    assert shard_files == ["trace.jsonl", "trace.jsonl.shard0",
                           "trace.jsonl.shard1"]
    header, records = load_trace(str(tmp_path / "trace.jsonl.shard0"))
    assert header["mode"] == "sharded" and header["shard"] == 0
    assert records


# -------------------------------------------------------------------- facade
def test_facade_obs_kwarg_sets_spec_obs(tmp_path):
    spec = replace(traced_spec(), obs=None)
    obs = ObsConfig(snapshot_path=str(tmp_path / "obs.json"))
    result = repro.run(spec, obs=obs)
    assert result.obs is not None
    assert load_obs_snapshot(str(tmp_path / "obs.json")) == result.obs


def test_facade_rejects_obs_with_multiple_seeds():
    spec = replace(traced_spec(), obs=None)
    with pytest.raises(ValueError, match="one seed at a time"):
        repro.run(spec, seeds=3, obs=ObsConfig())
