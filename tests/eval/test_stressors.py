"""Tests for the adversarial stressor models (flash crowds, rack failures,
flapping/asymmetric partitions, degradation) and their compile-time
validation."""

from __future__ import annotations

import pytest

from repro.eval import (
    ChurnModel,
    CorrelatedCrashModel,
    DegradeModel,
    ExperimentConfig,
    FlappingPartitionModel,
    FlashCrowdModel,
    GroupModel,
    OverlayExperiment,
    PartitionModel,
    ScenarioError,
    ScenarioSpec,
    WorkloadModel,
)
from repro.protocols.ring import ring_agent
from repro.runtime.failure import FailureDetectorConfig

FAST_FAILURE = FailureDetectorConfig(failure_timeout=10.0,
                                     heartbeat_timeout=4.0,
                                     check_interval=1.0)


def ring_experiment(num_nodes: int = 8, seed: int = 1,
                    duration: float = 120.0) -> OverlayExperiment:
    return OverlayExperiment(
        [ring_agent()],
        ExperimentConfig(num_nodes=num_nodes, seed=seed,
                         convergence_time=duration,
                         failure_config=FAST_FAILURE))


def ring_spec(name: str, models, *, num_nodes: int = 8, seed: int = 1,
              duration: float = 120.0) -> ScenarioSpec:
    return ScenarioSpec(name=name, agents=[ring_agent()],
                        num_nodes=num_nodes, duration=duration, seed=seed,
                        failure_config=FAST_FAILURE, models=tuple(models))


# ------------------------------------------------------------------ flash crowd
def test_flash_crowd_core_then_poisson_burst():
    experiment = ring_experiment()
    compiled = experiment.apply_model(
        FlashCrowdModel(core=3, core_spacing=0.5, at=30.0, burst_rate=10.0))
    joins = [event for event in compiled.events if event.kind == "join"]
    assert len(joins) == 8
    core, crowd = joins[:3], joins[3:]
    assert [event.time for event in core] == [0.0, 0.5, 1.0]
    assert all(event.time > 30.0 for event in crowd)
    times = [event.time for event in crowd]
    assert times == sorted(times)
    assert compiled.metrics()["crowd"] == 5.0


def test_flash_crowd_departure_schedules_crashes_per_join():
    experiment = ring_experiment()
    compiled = experiment.apply_model(
        FlashCrowdModel(core=2, at=20.0, burst_rate=5.0, stay=15.0))
    joins = {event.detail: event.time for event in compiled.events
             if event.kind == "join" and "(crowd)" in event.detail}
    crashes = [event for event in compiled.events if event.kind == "crash"]
    assert len(crashes) == 6
    for crash in crashes:
        index = crash.detail.split()[1]
        assert crash.time == pytest.approx(
            joins[f"node {index} joins (crowd)"] + 15.0)


def test_flash_crowd_validates_core_and_rate():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError, match="core"):
        experiment.apply_model(FlashCrowdModel(core=9))
    with pytest.raises(ScenarioError, match="burst_rate"):
        experiment.apply_model(FlashCrowdModel(burst_rate=0.0))
    with pytest.raises(ScenarioError, match="stay"):
        experiment.apply_model(FlashCrowdModel(stay=-1.0))


# --------------------------------------------------------------- rack failures
def test_correlated_crash_kills_whole_stub_domains():
    experiment = ring_experiment(num_nodes=12)
    compiled = experiment.apply_model(
        CorrelatedCrashModel(at=10.0, racks=1, exempt=()))
    victims = sorted(int(event.detail.split()[1])
                     for event in compiled.events if event.kind == "crash")
    # Victims are exactly one failure domain: all share a stub-clique, and
    # clients attach to stub routers domain by domain (4 per domain).
    domain_of = CorrelatedCrashModel.failure_domains(experiment)
    domains = {domain_of[experiment.nodes[v].host.topology_node]
               for v in victims}
    assert len(domains) == 1
    assert len(victims) == 4


def test_correlated_crash_recover_after_schedules_rack_powercycle():
    experiment = ring_experiment(num_nodes=12)
    compiled = experiment.apply_model(
        CorrelatedCrashModel(at=10.0, racks=2, recover_after=20.0))
    crashes = [e for e in compiled.events if e.kind == "crash"]
    recoveries = [e for e in compiled.events if e.kind == "recover"]
    assert len(crashes) == len(recoveries) > 0
    assert all(e.time == 10.0 for e in crashes)
    assert all(e.time == 30.0 for e in recoveries)
    assert compiled.metrics()["racks"] == 2.0


def test_correlated_crash_validates_rack_count():
    experiment = ring_experiment(num_nodes=8)   # nodes span 2 stub domains
    with pytest.raises(ScenarioError, match="failure domains"):
        experiment.apply_model(CorrelatedCrashModel(racks=5))


# ------------------------------------------------------------------- flapping
def test_flapping_partition_cut_heal_cadence():
    experiment = ring_experiment()
    compiled = experiment.apply_model(FlappingPartitionModel(
        at=10.0, period=20.0, duty=0.25, cycles=3,
        groups=((0, 1, 2, 3), (4, 5, 6, 7))))
    cuts = [e.time for e in compiled.events if e.kind == "partition"]
    heals = [e.time for e in compiled.events if e.kind == "heal"]
    assert cuts == [10.0, 30.0, 50.0]
    assert heals == [15.0, 35.0, 55.0]
    assert compiled.metrics()["cut_seconds"] == 15.0


def test_flapping_directed_links_emit_directional_cuts():
    experiment = ring_experiment()
    graph = experiment.topology.graph
    edge = next(iter(graph.edges()))
    compiled = experiment.apply_model(FlappingPartitionModel(
        at=5.0, period=10.0, duty=0.5, cycles=2, links=(edge,),
        directed=True))
    cuts = [e for e in compiled.events if e.kind == "link-cut"]
    heals = [e for e in compiled.events if e.kind == "link-heal"]
    assert len(cuts) == len(heals) == 2
    assert all("->" in e.detail for e in cuts)


def test_flapping_partition_validation():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError, match="groups or links"):
        experiment.apply_model(FlappingPartitionModel())
    with pytest.raises(ScenarioError, match="direction"):
        experiment.apply_model(FlappingPartitionModel(
            groups=((0, 1), (2, 3)), directed=True))
    with pytest.raises(ScenarioError, match="duty"):
        experiment.apply_model(FlappingPartitionModel(
            groups=((0, 1),), duty=1.5))


# ---------------------------------------------------------------- degradation
def test_degrade_model_schedules_degrade_and_restore():
    experiment = ring_experiment()
    graph = experiment.topology.graph
    edge = next(iter(graph.edges()))
    compiled = experiment.apply_model(DegradeModel(
        at=10.0, restore_after=30.0, hosts=(1, 2), links=(edge,),
        latency_factor=4.0))
    degrades = [e for e in compiled.events if e.kind == "degrade"]
    restores = [e for e in compiled.events if e.kind == "restore"]
    assert len(degrades) == len(restores) == 3    # two hosts + one link
    assert all(e.time == 10.0 for e in degrades)
    assert all(e.time == 40.0 for e in restores)
    assert compiled.metrics() == {"hosts": 2.0, "links": 1.0}


def test_degrade_model_validation():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError, match="hosts, host_fraction, or links"):
        experiment.apply_model(DegradeModel(latency_factor=2.0))
    with pytest.raises(ScenarioError, match="not both"):
        experiment.apply_model(DegradeModel(hosts=(1,), host_fraction=0.5,
                                            latency_factor=2.0))
    with pytest.raises(ScenarioError, match="bandwidth_factor"):
        experiment.apply_model(DegradeModel(hosts=(1,), bandwidth_factor=2.0))
    with pytest.raises(ScenarioError, match="no-op"):
        experiment.apply_model(DegradeModel(hosts=(1,)))


# ------------------------------------------------- compile-time link validation
def test_partition_model_rejects_unknown_links_with_offender_list():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError) as excinfo:
        experiment.apply_model(PartitionModel(
            at=5.0, links=((10, 0), (98765, 43210), (11111, 2))))
    assert "(98765, 43210)" in str(excinfo.value)
    assert "(11111, 2)" in str(excinfo.value)
    assert "(10, 0)" not in str(excinfo.value)   # the valid edge is not listed


def test_partition_model_rejects_out_of_range_group_members():
    experiment = ring_experiment(num_nodes=6)
    with pytest.raises(ScenarioError) as excinfo:
        experiment.apply_model(PartitionModel(
            at=5.0, groups=((0, 1, 42), (2, 99))))
    message = str(excinfo.value)
    assert "42" in message and "99" in message


def test_degrade_and_flapping_validate_links_at_compile_time():
    experiment = ring_experiment()
    with pytest.raises(ScenarioError, match="not in topology"):
        experiment.apply_model(DegradeModel(links=((55555, 55556),),
                                            latency_factor=2.0))
    with pytest.raises(ScenarioError, match="not in topology"):
        experiment.apply_model(FlappingPartitionModel(
            links=((55555, 55556),), directed=True))


# ------------------------------------------------------------------ group model
def test_group_model_creates_then_joins_staggered():
    experiment = ring_experiment()
    compiled = experiment.apply_model(GroupModel(group=3, source=0, at=10.0,
                                                 spacing=0.5))
    events = [e for e in compiled.events if e.kind == "group"]
    assert events[0].time == 10.0 and "creates" in events[0].detail
    assert [e.time for e in events[1:]] == [10.5, 11.0, 11.5, 12.0, 12.5,
                                            13.0, 13.5]


# ---------------------------------------------------------- end-to-end stress
def test_crash_during_partition_recovers_after_heal():
    """A node that dies while partitioned and recovers after the heal must
    rejoin the overlay (the recovery path crosses the healed cut)."""
    spec = ring_spec(
        "crash-during-partition",
        [ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
         PartitionModel(at=20.0, heal_after=25.0,
                        groups=((0, 1, 2, 3), (4, 5, 6, 7))),
         CrashModelAt(victim=5, at=30.0, recover_at=55.0),
         WorkloadModel(kind="route", source=-1, start=15.0, packets=20,
                       gap=2.0)],
        duration=120.0)
    result = spec.run()
    node = result.experiment.nodes[5]
    assert node.alive and node.initialized
    assert node.crash_count == 1 and node.recover_count == 1
    assert result.metrics["nodes.alive"] == 8.0


def test_recover_into_degraded_link_still_rejoins():
    """Recovery while the victim's access links are degraded must still
    complete the rejoin — slower service, not absent service."""
    spec = ring_spec(
        "recover-into-degraded",
        [ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
         CrashModelAt(victim=3, at=25.0, recover_at=45.0),
         DegradeModel(at=35.0, restore_after=40.0, hosts=(3,),
                      bandwidth_factor=0.2, latency_factor=6.0,
                      exempt=()),
         WorkloadModel(kind="route", source=-1, start=15.0, packets=20,
                       gap=2.0)],
        duration=140.0)
    result = spec.run()
    node = result.experiment.nodes[3]
    assert node.alive and node.initialized
    assert node.recover_count == 1
    assert result.experiment.emulator._faults_active is False  # restored


def CrashModelAt(victim: int, at: float, recover_at: float):
    """A single-victim crash/recover pair via the stock CrashModel."""
    from repro.eval import CrashModel

    return CrashModel(at=at, victims=(victim,), recover_after=recover_at - at)


# --------------------------------------------------------------- determinism
STRESSOR_SPECS = {
    "flash-crowd": lambda: ring_spec(
        "d-flash", [FlashCrowdModel(core=3, at=20.0, burst_rate=8.0,
                                    stay=25.0),
                    WorkloadModel(kind="route", source=-1, start=15.0,
                                  packets=15, gap=2.0)]),
    "correlated-crash": lambda: ring_spec(
        "d-rack", [ChurnModel(join="staggered", join_spacing=0.5),
                   CorrelatedCrashModel(at=20.0, racks=1, recover_after=20.0),
                   WorkloadModel(kind="route", source=-1, start=15.0,
                                 packets=15, gap=2.0)]),
    "flapping": lambda: ring_spec(
        "d-flap", [ChurnModel(join="staggered", join_spacing=0.5),
                   FlappingPartitionModel(at=20.0, period=16.0, duty=0.5,
                                          cycles=2,
                                          groups=((0, 1, 2, 3),
                                                  (4, 5, 6, 7))),
                   WorkloadModel(kind="route", source=-1, start=15.0,
                                 packets=15, gap=2.0)]),
    "asymmetric": lambda: ring_spec(
        "d-asym", [ChurnModel(join="staggered", join_spacing=0.5),
                   FlappingPartitionModel(at=20.0, period=16.0, duty=0.5,
                                          cycles=2, links=((10, 0),),
                                          directed=True),
                   WorkloadModel(kind="route", source=-1, start=15.0,
                                 packets=15, gap=2.0)]),
    "degrade": lambda: ring_spec(
        "d-degrade", [ChurnModel(join="staggered", join_spacing=0.5),
                      DegradeModel(at=20.0, restore_after=30.0,
                                   host_fraction=0.3, bandwidth_factor=0.2,
                                   latency_factor=5.0),
                      DegradeModel(at=25.0, restore_after=20.0,
                                   links=((10, 0), (14, 0)),
                                   latency_factor=3.0),
                      WorkloadModel(kind="route", source=-1, start=15.0,
                                    packets=15, gap=2.0)]),
    "group": lambda: ring_spec(
        "d-group", [ChurnModel(join="staggered", join_spacing=0.5),
                    GroupModel(group=2, source=1, at=10.0)]),
}


@pytest.mark.determinism
@pytest.mark.parametrize("name", sorted(STRESSOR_SPECS))
def test_stressor_fixed_seed_runs_are_byte_identical(name):
    build = STRESSOR_SPECS[name]
    first = build().run()
    second = build().run()
    assert first.metrics == second.metrics
    assert first.events == second.events
    assert first.series == second.series
