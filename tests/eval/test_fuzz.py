"""Tests for the scenario fuzzer, its serialisation, shrinking, and the
curated scenario library."""

from __future__ import annotations

import json

import pytest

from repro.eval import ScenarioError, ScenarioRunner
from repro.eval.fuzz import (
    FuzzConfig,
    fuzz,
    generate_spec,
    model_from_dict,
    protocol_name_of,
    replay_artifact,
    run_case,
    shrink,
    spec_from_dict,
    spec_to_dict,
)
from repro.eval.library import (
    LIBRARY,
    PROTOCOLS,
    library_entry,
    library_spec,
    resolve_protocol,
)
from repro.eval.scenario import ScenarioResult, WorkloadModel
from repro.protocols.ring import RingDhtAgent


class DoubleDeliverAgent(RingDhtAgent):
    """Ring agent with a seeded duplicate-delivery bug, for fuzzer tests."""

    def _route_data(self, target, payload, payload_size, hops):
        if self._owns(target):
            self.upcall_deliver(payload, payload_size, "data")
            self.upcall_deliver(payload, payload_size, "data")
            return
        super()._route_data(target, payload, payload_size, hops)


@pytest.fixture
def buggy_protocol():
    PROTOCOLS["ringdht-dupbug"] = lambda: [DoubleDeliverAgent]
    try:
        yield "ringdht-dupbug"
    finally:
        del PROTOCOLS["ringdht-dupbug"]


#: Small bounds keep fuzz tests fast; min_duration must still clear the
#: settle-window validation.
def small_config(**overrides) -> FuzzConfig:
    defaults = dict(protocols=("ringdht",), min_nodes=4, max_nodes=6,
                    min_duration=150.0, max_duration=160.0,
                    max_fault_models=1, max_shrink_runs=8)
    defaults.update(overrides)
    return FuzzConfig(**defaults)


# -------------------------------------------------------------------- grammar
def test_generate_spec_is_deterministic():
    config = small_config()
    first = generate_spec(1234, config)
    second = generate_spec(1234, config)
    assert first == second
    assert generate_spec(1235, config) != first


def test_generate_spec_respects_bounds_and_settle_window():
    config = small_config()
    for seed in range(30):
        spec = generate_spec(seed, config)
        assert config.min_nodes <= spec.num_nodes <= config.max_nodes
        assert config.min_duration <= spec.duration <= config.max_duration
        assert spec.seed == seed
        assert any(isinstance(m, WorkloadModel) for m in spec.models)
        # Compiles cleanly: every target valid at build time.
        spec.build()


def test_fuzz_config_validation():
    with pytest.raises(ScenarioError, match="unknown protocol"):
        FuzzConfig(protocols=("definitely-not-a-protocol",))
    with pytest.raises(ScenarioError, match="settle"):
        FuzzConfig(min_duration=60.0)
    with pytest.raises(ScenarioError, match="at least one protocol"):
        FuzzConfig(protocols=())


# -------------------------------------------------------------- serialisation
def test_spec_roundtrips_through_dict():
    config = small_config()
    for seed in (7, 77, 777):
        spec = generate_spec(seed, config)
        data = json.loads(json.dumps(spec_to_dict(spec)))
        restored = spec_from_dict(data)
        assert restored == spec


def test_library_specs_roundtrip_through_dict():
    for entry in LIBRARY:
        spec = entry.spec(seed=3)
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored == spec
        assert protocol_name_of(spec) == entry.protocol


def test_unregistered_agents_do_not_serialise():
    spec = library_spec("flash-crowd").__class__(
        name="adhoc", agents=[RingDhtAgent], num_nodes=4, duration=60.0)
    with pytest.raises(ScenarioError, match="not a registered protocol"):
        spec_to_dict(spec)


def test_model_from_dict_rejects_unknown_types_and_fields():
    with pytest.raises(ScenarioError, match="unknown scenario model"):
        model_from_dict({"model": "NotAModel"})
    with pytest.raises(ScenarioError, match="unknown fields"):
        model_from_dict({"model": "ChurnModel", "bogus_knob": 1})


# ------------------------------------------------------------------ execution
def test_clean_case_has_no_violations():
    config = small_config()
    assert run_case(generate_spec(5, config), config) == []


def test_fuzz_catches_shrinks_and_replays_seeded_bug(buggy_protocol,
                                                     tmp_path):
    """The acceptance loop: an intentionally seeded invariant violation is
    caught, shrunk to a smaller spec, and replays from the artifact."""
    config = small_config(protocols=(buggy_protocol,))
    report = fuzz(1, 42, config=config, artifact_dir=tmp_path)
    assert not report.ok
    (failure,) = report.failures
    assert {v.invariant for v in failure.violations} == \
        {"no_duplicate_delivery"}
    # Shrinking produced a confirmed reproduction no bigger than the original.
    original = generate_spec(failure.case_seed, config)
    assert len(failure.spec.models) <= len(original.models)
    assert failure.spec.num_nodes <= original.num_nodes
    # The artifact replays deterministically.
    assert failure.artifact is not None and failure.artifact.exists()
    payload = json.loads(failure.artifact.read_text())
    assert payload["schema"] == "repro.fuzz/1"
    assert payload["seed"] == failure.case_seed
    violations = replay_artifact(failure.artifact, config)
    assert {v.invariant for v in violations} == {"no_duplicate_delivery"}


def test_shrink_keeps_violated_invariant_set(buggy_protocol):
    config = small_config(protocols=(buggy_protocol,), max_shrink_runs=6)
    spec = generate_spec(9, config)
    violations = run_case(spec, config)
    assert violations
    shrunk, shrunk_violations = shrink(spec, violations, config)
    assert {v.invariant for v in shrunk_violations} == \
        {v.invariant for v in violations}
    # The shrunk spec is re-runnable standalone (it is what the artifact holds).
    assert run_case(shrunk, config)


def test_crashed_case_fails_campaign_with_artifact(tmp_path, monkeypatch):
    """An unhandled exception inside a case is captured as a failure (with
    its traceback and a replay artifact), and the campaign cannot report ok."""
    import sys
    fuzz_module = sys.modules["repro.eval.fuzz"]

    def explode(spec, config):
        raise RuntimeError("seeded crash for test")

    monkeypatch.setattr(fuzz_module, "run_case", explode)
    report = fuzz(2, 1, config=small_config(), artifact_dir=tmp_path)
    assert not report.ok
    assert len(report.failures) == 2
    for failure in report.failures:
        assert failure.violations == []
        assert "seeded crash for test" in failure.error
        payload = json.loads(failure.artifact.read_text())
        assert "seeded crash for test" in payload["error"]


def test_parallel_jobs_match_serial_campaign(buggy_protocol):
    config = small_config(protocols=(buggy_protocol,), max_shrink_runs=2)
    serial = fuzz(3, 11, config=config)
    forked = fuzz(3, 11, config=config, jobs=2)
    assert [f.case_seed for f in serial.failures] == \
        [f.case_seed for f in forked.failures]
    assert [spec_to_dict(f.spec) for f in serial.failures] == \
        [spec_to_dict(f.spec) for f in forked.failures]


def test_fuzz_campaign_is_deterministic(buggy_protocol):
    config = small_config(protocols=(buggy_protocol,), max_shrink_runs=2)
    first = fuzz(2, 11, config=config)
    second = fuzz(2, 11, config=config)
    assert [f.case_seed for f in first.failures] == \
        [f.case_seed for f in second.failures]
    assert [spec_to_dict(f.spec) for f in first.failures] == \
        [spec_to_dict(f.spec) for f in second.failures]


# -------------------------------------------------------------------- library
def test_library_entries_build_valid_specs():
    for entry in LIBRARY:
        spec = entry.spec(seed=1)
        assert spec.name == entry.name
        spec.build()   # compile-time validation of every model target


def test_library_lookup_errors_name_the_choices():
    with pytest.raises(ScenarioError, match="flash-crowd"):
        library_entry("no-such-scenario")
    with pytest.raises(ScenarioError, match="ringdht"):
        resolve_protocol("no-such-protocol")


def test_library_spec_runs_deterministically():
    first = library_spec("rack-failure", seed=2).run()
    second = library_spec("rack-failure", seed=2).run()
    assert first.metrics == second.metrics
    assert first.events == second.events


# ------------------------------------------------------- runner union metrics
class _FakeSeededSpec:
    """Duck-typed spec whose metric keys depend on the seed, to pin the
    runner's union-aggregation behaviour."""

    name = "union"

    def __init__(self, seed=0):
        self.seed = seed

    def with_seed(self, seed):
        return _FakeSeededSpec(seed)

    def run(self):
        metrics = {"always": float(self.seed)}
        if self.seed % 2:
            metrics["odd_seeds_only"] = 1.0
        return ScenarioResult(name=self.name, seed=self.seed, duration=1.0,
                              metrics=metrics, series={}, events=[])


def test_runner_aggregates_union_of_seed_dependent_metrics():
    summary = ScenarioRunner(_FakeSeededSpec(), seeds=[1, 2, 3]).run()
    assert summary.metric("always").count == 3
    odd = summary.metric("odd_seeds_only")
    assert odd.count == 2          # seeds 1 and 3 reported it; 2 did not
    assert odd.mean == 1.0


def test_runner_forked_jobs_match_serial():
    serial = ScenarioRunner(_FakeSeededSpec(), seeds=[1, 2, 3]).run()
    forked = ScenarioRunner(_FakeSeededSpec(), seeds=[1, 2, 3], jobs=2).run()
    for key in ("always", "odd_seeds_only"):
        assert forked.metric(key).count == serial.metric(key).count
        assert forked.metric(key).mean == serial.metric(key).mean


def test_runner_rejects_bad_parallelism_arguments():
    with pytest.raises(ValueError):
        ScenarioRunner(_FakeSeededSpec(), seeds=[1], jobs=0)
    with pytest.raises(ValueError):
        ScenarioRunner(_FakeSeededSpec(), seeds=[1], shards=0)
