"""``repro.run`` facade: byte-identical to the entry points it wraps.

The facade is pure dispatch — these tests pin that every mode produces
exactly (``repr``-equality, the repo's determinism ruler) what calling the
underlying entry point directly produces, so callers can migrate to
``repro.run`` without any result drifting.
"""

from __future__ import annotations

import pytest

import repro
from repro.eval.library import resolve_protocol
from repro.eval.runner import ScenarioRunner
from repro.eval.scenario import (ChurnModel, ScenarioError, ScenarioSpec,
                                 WorkloadModel)


def route_spec(seed=3):
    return ScenarioSpec(
        name="facade-route",
        agents=resolve_protocol("chord"),
        num_nodes=8,
        duration=60.0,
        seed=seed,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="route", source=-1, start=30.0,
                              packets=10, gap=1.0)),
    )


def kv_spec(seed=5):
    return ScenarioSpec(
        name="facade-kv",
        agents=resolve_protocol("chord"),
        num_nodes=10,
        duration=80.0,
        seed=seed,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="kv", start=40.0, packets=24, gap=1.0,
                              keys=16, read_fraction=0.5, repair_gap=0.0)),
    )


def test_facade_default_matches_spec_run():
    direct = route_spec().run()
    via_facade = repro.run(route_spec())
    assert repr(via_facade.metrics) == repr(direct.metrics)
    assert via_facade.events == direct.events


def test_facade_shards_matches_run_sharded():
    direct = route_spec().run_sharded(2)
    via_facade = repro.run(route_spec(), shards=2)
    assert repr(via_facade.metrics) == repr(direct.metrics)


def test_facade_multi_seed_matches_scenario_runner():
    direct = ScenarioRunner(route_spec(), [3, 4, 5]).run()
    via_facade = repro.run(route_spec(), seeds=3)
    assert via_facade.seeds == direct.seeds == [3, 4, 5]
    assert repr(via_facade.aggregate) == repr(direct.aggregate)
    for mine, theirs in zip(via_facade.results, direct.results):
        assert repr(mine.metrics) == repr(theirs.metrics)


def test_facade_explicit_seed_sequence():
    direct = ScenarioRunner(route_spec(), [9, 2]).run()
    via_facade = repro.run(route_spec(), seeds=[9, 2])
    assert via_facade.seeds == [9, 2]
    assert repr(via_facade.aggregate) == repr(direct.aggregate)


def test_facade_kv_spec_sim_and_sharded_identical():
    """The acceptance shape: one KV spec, unmodified, through both sim
    paths of the facade."""
    direct = kv_spec().run()
    via_facade = repro.run(kv_spec())
    assert repr(via_facade.metrics) == repr(direct.metrics)
    assert via_facade.metrics["workload.quorum_success"] > 0.9

    sharded_direct = kv_spec().run_sharded(4)
    sharded_facade = repro.run(kv_spec(), shards=4)
    assert repr(sharded_facade.metrics) == repr(sharded_direct.metrics)


def test_facade_rejects_bad_arguments():
    with pytest.raises(ValueError, match="unknown mode"):
        repro.run(route_spec(), mode="dream")
    with pytest.raises(ValueError, match="seeds must be >= 1"):
        repro.run(route_spec(), seeds=0)
    with pytest.raises(ValueError, match="unknown options for sim mode"):
        repro.run(route_spec(), base_port=48000)
    with pytest.raises(ValueError, match="live mode boots one"):
        repro.run(route_spec(), mode="live", shards=4)


def test_facade_live_mapping_rejects_uncompiled_protocols():
    spec = ScenarioSpec(
        name="facade-ring", agents=resolve_protocol("ringdht"),
        num_nodes=4, duration=30.0, seed=1,
        models=(WorkloadModel(kind="route", packets=4, start=20.0),))
    with pytest.raises(ScenarioError, match="no live deployment"):
        repro.run(spec, mode="live")


def test_facade_live_mapping_needs_a_workload():
    spec = ScenarioSpec(name="facade-idle",
                        agents=resolve_protocol("chord"),
                        num_nodes=4, duration=30.0, seed=1)
    with pytest.raises(ScenarioError, match="needs a WorkloadModel"):
        repro.run(spec, mode="live")
