"""The sim-vs-live differential harness: tolerances, compare, run_diff."""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from repro.eval.diff import (ARTIFACT_SCHEMA, DEFAULT_TOLERANCES, Tolerance,
                             compare, run_diff)


def test_tolerance_allowance_and_direction():
    tolerance = Tolerance("m", abs=0.1, rel=0.5)
    assert tolerance.allowance(0.8) == pytest.approx(0.1 + 0.4)
    assert not tolerance.violated_by(0.8, 0.4)
    assert tolerance.violated_by(0.8, 0.2)

    below_only = Tolerance("m", abs=0.1, direction="live_below")
    assert below_only.violated_by(0.9, 0.7)       # undershoot beyond 0.1
    assert not below_only.violated_by(0.5, 0.9)   # overshoot never fails
    above_only = Tolerance("m", abs=0.1, direction="live_above")
    assert above_only.violated_by(0.5, 0.7)
    assert not above_only.violated_by(0.9, 0.2)

    exact = Tolerance("m", abs=0.0)
    assert not exact.violated_by(0.0, 0.0)
    assert exact.violated_by(0.0, 1e-6)


def test_compare_means_per_seed_distributions():
    tolerances = (Tolerance("workload.success_ratio", abs=0.1, required=True),)
    report = compare(
        [{"workload.success_ratio": 0.9}, {"workload.success_ratio": 1.0}],
        [{"workload.success_ratio": 0.88}, {"workload.success_ratio": 0.92}],
        tolerances, spec_name="demo", seeds=(1, 2))
    assert report.ok
    (diff,) = report.diffs
    assert diff.sim_mean == pytest.approx(0.95)
    assert diff.live_mean == pytest.approx(0.90)
    assert diff.delta == pytest.approx(-0.05)
    assert diff.sim_values == (0.9, 1.0)

    drifted = compare([{"workload.success_ratio": 0.95}],
                      [{"workload.success_ratio": 0.7}], tolerances)
    assert not drifted.ok
    assert [d.metric for d in drifted.drifted] == ["workload.success_ratio"]


def test_compare_skips_absent_metrics_unless_required():
    tolerances = (Tolerance("a", abs=0.1),
                  Tolerance("b", abs=0.1, required=True))
    report = compare([{"b": 1.0}], [{"b": 1.0}], tolerances)
    assert report.ok and [d.metric for d in report.diffs] == ["b"]

    report = compare([{"a": 1.0}], [{"a": 1.0}], tolerances)
    assert not report.ok and report.missing == ["b"]

    # Only the runs that emitted a metric vote on it: seed 2's live run had
    # no post-fault probes, so seed 1 alone decides.
    report = compare([{"a": 0.9}, {"a": 0.9}],
                     [{"a": 0.85}, {}],
                     (Tolerance("a", abs=0.1),))
    assert report.ok
    assert report.diffs[0].live_values == (0.85,)


def test_report_document_and_summary():
    report = compare([{"x": 1.0}], [{"x": 0.2}],
                     (Tolerance("x", abs=0.1),
                      Tolerance("y", abs=0.1, required=True)),
                     spec_name="doc", seeds=(4,))
    document = report.to_dict()
    assert document["schema"] == ARTIFACT_SCHEMA
    assert document["spec"] == "doc" and document["seeds"] == [4]
    assert document["ok"] is False
    assert document["diffs"][0]["metric"] == "x"
    assert document["missing"] == ["y"]
    text = report.summary()
    assert "DRIFT" in text and "[FAIL] x:" in text
    assert "y: required metric missing" in text


def test_default_tolerances_gate_fabricated_data_exactly():
    by_metric = {t.metric: t for t in DEFAULT_TOLERANCES}
    assert by_metric["workload.success_ratio"].required
    assert by_metric["workload.phantom_reads"].abs == 0.0
    assert by_metric["workload.duplicates"].abs == 0.0


def test_run_diff_executes_both_modes_and_tags_violations(monkeypatch):
    @dataclass(frozen=True)
    class FakeSpec:
        name: str
        seed: int

    calls = []

    def fake_run(spec, mode="sim", **overrides):
        calls.append((spec.seed, mode, overrides))
        metrics = {"workload.success_ratio": 0.9 if mode == "sim" else 0.84}
        return SimpleNamespace(metrics=metrics)

    import repro.eval.invariants as invariants
    import repro.facade as facade
    monkeypatch.setattr(facade, "run", fake_run)
    monkeypatch.setattr(invariants, "check_live_invariants",
                        lambda outcome: ["duplicate delivery on node 3"])

    report = run_diff(FakeSpec(name="fake", seed=0), seeds=(1, 2),
                      tolerances=(Tolerance("workload.success_ratio",
                                            abs=0.15, required=True),),
                      live_overrides={"base_port": 50000})
    # Each seed ran sim then live, re-seeded, with the overrides threaded.
    assert calls == [(1, "sim", {}), (1, "live", {"base_port": 50000}),
                     (2, "sim", {}), (2, "live", {"base_port": 50000})]
    assert report.diffs[0].delta == pytest.approx(-0.06)
    assert not report.drifted
    # Invariant violations fail the report regardless of tolerances.
    assert not report.ok
    assert report.violations == ["seed 1: duplicate delivery on node 3",
                                 "seed 2: duplicate delivery on node 3"]
