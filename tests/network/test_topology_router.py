"""Tests for topology generation and global routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.router import Router, RoutingError
from repro.network.topology import (
    LATENCY_ATTR,
    TopologyError,
    dumbbell_topology,
    multi_site_topology,
    transit_stub_topology,
)


def test_transit_stub_basic_properties():
    topology = transit_stub_topology(30, seed=1)
    topology.validate()
    assert topology.num_clients == 30
    assert topology.num_routers > 10
    roles = {data["role"] for _, data in topology.graph.nodes(data=True)}
    assert roles == {"transit", "stub", "client"}


def test_transit_stub_deterministic_by_seed():
    a = transit_stub_topology(10, seed=5)
    b = transit_stub_topology(10, seed=5)
    c = transit_stub_topology(10, seed=6)
    edges = lambda t: sorted((u, v, round(d[LATENCY_ATTR], 9))
                             for u, v, d in t.graph.edges(data=True))
    assert edges(a) == edges(b)
    assert edges(a) != edges(c)


def test_transit_stub_rejects_bad_parameters():
    with pytest.raises(TopologyError):
        transit_stub_topology(0)
    with pytest.raises(TopologyError):
        transit_stub_topology(5, transit_routers=2)


def test_multi_site_topology_sites_and_latency_matrix():
    matrix = [[0, 10, 20], [10, 0, 30], [20, 30, 0]]
    topology = multi_site_topology([2, 3, 4], inter_site_latency_ms=matrix, seed=2)
    assert topology.num_clients == 9
    sites = set(topology.client_sites.values())
    assert sites == {0, 1, 2}
    with pytest.raises(TopologyError):
        multi_site_topology([2], seed=1)
    with pytest.raises(TopologyError):
        multi_site_topology([2, 2], inter_site_latency_ms=[[0]])


def test_dumbbell_topology():
    topology = dumbbell_topology(clients_per_side=3)
    assert topology.num_clients == 6
    assert topology.graph.has_edge(0, 1)


def test_router_paths_and_latency():
    topology = transit_stub_topology(10, seed=3)
    router = Router(topology)
    a, b = topology.clients[0], topology.clients[5]
    path = router.path(a, b)
    assert path[0] == a and path[-1] == b
    assert router.hop_count(a, b) == len(path) - 1
    assert router.latency(a, b) > 0
    assert router.latency(a, a) == 0
    assert router.path(a, a) == [a]
    assert router.bottleneck_bandwidth(a, b) > 0


def test_router_latency_symmetric_on_undirected_graph():
    topology = transit_stub_topology(8, seed=4)
    router = Router(topology)
    a, b = topology.clients[1], topology.clients[6]
    assert router.latency(a, b) == pytest.approx(router.latency(b, a))


def test_router_unknown_destination():
    topology = transit_stub_topology(4, seed=5)
    router = Router(topology)
    with pytest.raises(RoutingError):
        router.path(topology.clients[0], 999999)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=5))
def test_topology_always_connected_and_annotated(num_clients, seed):
    topology = transit_stub_topology(num_clients, seed=seed)
    topology.validate()  # raises if disconnected or missing attributes
    assert topology.num_clients == num_clients


def test_router_dijkstra_matches_networkx_bit_for_bit():
    """The hand-rolled Dijkstra must replicate networkx exactly (distances,
    paths, and tie-breaking), which is what keeps fixed-seed experiment
    metrics identical across the fast-path rewrite."""
    import networkx as nx

    for seed in range(3):
        topology = transit_stub_topology(20, seed=seed)
        router = Router(topology)
        for source in list(topology.graph.nodes)[::9]:
            dist_nx, paths_nx = nx.single_source_dijkstra(
                topology.graph, source, weight=LATENCY_ATTR)
            dist, _ = router._sssp(source)
            assert dist == dist_nx
            for target in topology.graph.nodes:
                if target != source:
                    assert router.path(source, target) == paths_nx[target]


def test_router_plan_is_cached_and_consistent():
    topology = transit_stub_topology(10, seed=7)
    router = Router(topology)
    a, b = topology.clients[0], topology.clients[7]
    plan = router.plan(a, b)
    assert router.plan(a, b) is plan  # cached object, not recomputed
    assert list(plan.path) == router.path(a, b)
    assert plan.hop_count == router.hop_count(a, b)
    assert plan.latency == router.latency(a, b)
    assert router.bottleneck_bandwidth(a, b) > 0


def test_router_invalidate_picks_up_topology_mutation():
    from repro.network.topology import BANDWIDTH_ATTR

    topology = transit_stub_topology(6, seed=8)
    router = Router(topology)
    a, b = topology.clients[0], topology.clients[5]
    before = router.path(a, b)
    assert len(before) > 2
    # Splice in a direct ultra-low-latency edge; without invalidate() the
    # cached plan must keep answering, with it the new edge must win.
    topology.graph.add_edge(a, b, **{LATENCY_ATTR: 1e-6, BANDWIDTH_ATTR: 1e9})
    assert router.path(a, b) == before
    router.invalidate()
    assert router.path(a, b) == [a, b]
