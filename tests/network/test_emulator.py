"""Tests for the packet-level network emulator."""

from __future__ import annotations

import pytest

from repro.network.addressing import AddressError, format_address, parse_address
from repro.network.emulator import NetworkEmulator
from repro.network.links import DirectedLink, LinkDropped
from repro.network.packet import HEADER_BYTES, Packet
from repro.network.topology import dumbbell_topology, transit_stub_topology
from repro.runtime.engine import Simulator


def test_address_formatting_roundtrip():
    assert parse_address(format_address(167772161)) == 167772161
    with pytest.raises(AddressError):
        parse_address("1.2.3")
    with pytest.raises(AddressError):
        parse_address("1.2.3.999")
    with pytest.raises(AddressError):
        format_address(-1)


def test_attach_hosts_and_send_packet():
    simulator = Simulator(seed=1)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=1))
    a = emulator.attach_host()
    b = emulator.attach_host()
    received = []
    emulator.set_receive_callback(b.address, received.append)
    packet = Packet(src=a.address, dst=b.address, payload="hi", size=100)
    assert emulator.send(packet)
    simulator.run()
    assert len(received) == 1
    assert received[0].payload == "hi"
    assert received[0].hops >= 1
    assert emulator.stats.packets_delivered == 1
    # Delivery latency at least the propagation latency.
    assert simulator.now >= emulator.ip_latency(a.address, b.address)


def test_unknown_host_rejected():
    simulator = Simulator(seed=1)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=1))
    a = emulator.attach_host()
    with pytest.raises(AddressError):
        emulator.send(Packet(src=a.address, dst=999, payload=None, size=10))


def test_random_loss():
    simulator = Simulator(seed=2)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=2),
                               random_loss_rate=1.0)
    a = emulator.attach_host()
    b = emulator.attach_host()
    assert not emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10))
    assert emulator.stats.packets_dropped == 1
    with pytest.raises(ValueError):
        NetworkEmulator(simulator, transit_stub_topology(4, seed=2),
                        random_loss_rate=1.5)


def test_bottleneck_queue_drops_under_overload():
    simulator = Simulator(seed=3)
    topology = dumbbell_topology(clients_per_side=1, bottleneck_bandwidth=10_000.0)
    emulator = NetworkEmulator(simulator, topology, max_queue_delay=0.2)
    a = emulator.attach_host()
    b = emulator.attach_host(topology.clients[1])
    accepted = sum(
        1 for _ in range(200)
        if emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=1400))
    )
    assert accepted < 200
    assert emulator.stats.packets_dropped > 0


def test_transmission_delay_scales_with_size():
    simulator = Simulator(seed=4)
    topology = dumbbell_topology(clients_per_side=1, bottleneck_bandwidth=125_000.0)
    emulator = NetworkEmulator(simulator, topology)
    a = emulator.attach_host(topology.clients[0])
    b = emulator.attach_host(topology.clients[1])
    arrival = {}
    emulator.set_receive_callback(b.address, lambda p: arrival.setdefault(p.packet_id, simulator.now))
    small = Packet(src=a.address, dst=b.address, payload=None, size=100)
    emulator.send(small)
    simulator.run()
    small_time = simulator.now
    big = Packet(src=a.address, dst=b.address, payload=None, size=10_000)
    start = simulator.now
    emulator.send(big)
    simulator.run()
    assert (simulator.now - start) > small_time * 1.5


def test_link_stress_accounting():
    simulator = Simulator(seed=5)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=5))
    a = emulator.attach_host()
    b = emulator.attach_host()
    for _ in range(3):
        emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10),
                      payload_tag="pkt-1")
    simulator.run()
    stresses = [view.max_stress for view in emulator.link_stats().values()]
    assert max(stresses) == 3


def test_directed_link_queue_and_drop():
    link = DirectedLink(src=0, dst=1, latency=0.01, bandwidth=1000.0,
                        max_queue_delay=0.15)
    first = link.transit_time(0.0, 100)
    assert first == pytest.approx(0.01 + 0.1)
    # Second packet queues behind the first (0.1 s backlog, still accepted).
    second = link.transit_time(0.0, 100)
    assert second > first
    # Third packet would see 0.2 s of backlog, beyond the queue bound.
    with pytest.raises(LinkDropped):
        link.transit_time(0.0, 100)
    assert link.stats.drops == 1
    assert link.stats.packets == 2


def test_packet_wire_size_and_retransmit_copy():
    packet = Packet(src=1, dst=2, payload="x", size=100)
    assert packet.wire_size == 100 + HEADER_BYTES
    clone = packet.copy_for_retransmit()
    assert clone.packet_id != packet.packet_id
    assert clone.size == packet.size
    with pytest.raises(ValueError):
        Packet(src=1, dst=2, payload=None, size=-5)


def test_attach_host_auto_allocation_skips_explicitly_used_slots():
    simulator = Simulator(seed=7)
    topology = transit_stub_topology(4, seed=7)
    emulator = NetworkEmulator(simulator, topology)
    taken = emulator.attach_host(topology.clients[1])
    autos = [emulator.attach_host() for _ in range(3)]
    assert taken.topology_node == topology.clients[1]
    assert [a.topology_node for a in autos] == [
        topology.clients[0], topology.clients[2], topology.clients[3]]
    # All slots used: further attaches reuse round-robin instead of failing.
    overflow = emulator.attach_host()
    assert overflow.topology_node in topology.clients


def test_send_reuses_cached_route_plan():
    simulator = Simulator(seed=8)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=8))
    a = emulator.attach_host()
    b = emulator.attach_host()
    received = []
    emulator.set_receive_callback(b.address, received.append)
    for _ in range(2):
        emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10))
    simulator.run()
    assert len(received) == 2
    # Both packets share the same (immutable) cached path tuple.
    assert received[0].path is received[1].path
    assert received[0].hops == len(received[0].path) - 1


def test_emulator_invalidate_drops_route_plans():
    from repro.network.topology import BANDWIDTH_ATTR, LATENCY_ATTR

    simulator = Simulator(seed=9)
    topology = transit_stub_topology(4, seed=9)
    emulator = NetworkEmulator(simulator, topology)
    a = emulator.attach_host()
    b = emulator.attach_host()
    before_path = emulator.ip_path(a.address, b.address)
    node_a = emulator._host(a.address).node
    node_b = emulator._host(b.address).node
    topology.graph.add_edge(node_a, node_b,
                            **{LATENCY_ATTR: 1e-6, BANDWIDTH_ATTR: 1e9})
    emulator.invalidate()
    after_path = emulator.ip_path(a.address, b.address)
    assert after_path == [node_a, node_b]
    assert after_path != before_path
    # The new edge got DirectedLink state and carries traffic.
    delivered = []
    emulator.set_receive_callback(b.address, delivered.append)
    assert emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10))
    simulator.run()
    assert len(delivered) == 1
    assert delivered[0].hops == 1


def test_router_level_invalidate_also_refreshes_emulator_routes():
    """router.invalidate() on an emulator-owned router must not leave the
    emulator holding stale resolved plans or a link table missing new edges."""
    from repro.network.topology import BANDWIDTH_ATTR, LATENCY_ATTR

    simulator = Simulator(seed=10)
    topology = transit_stub_topology(4, seed=10)
    emulator = NetworkEmulator(simulator, topology)
    a = emulator.attach_host()
    b = emulator.attach_host()
    node_a = emulator._host(a.address).node
    node_b = emulator._host(b.address).node
    # Warm the emulator's resolved-route cache.
    assert emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10))
    topology.graph.add_edge(node_a, node_b,
                            **{LATENCY_ATTR: 1e-6, BANDWIDTH_ATTR: 1e9})
    emulator.router.invalidate()  # router-level call, not emulator.invalidate()
    delivered = []
    emulator.set_receive_callback(b.address, delivered.append)
    second = Packet(src=a.address, dst=b.address, payload=None, size=10)
    assert emulator.send(second)
    simulator.run()
    assert second.hops == 1  # took the new direct edge, not the stale plan


def test_send_inline_hop_loop_matches_try_transit():
    """send() inlines DirectedLink.try_transit; replaying the same hops
    through try_transit on a twin emulator must give bit-identical delays,
    queue state, and counters."""
    def build():
        simulator = Simulator(seed=11)
        emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=11))
        a = emulator.attach_host()
        b = emulator.attach_host()
        return simulator, emulator, a, b

    sim1, emu1, a1, b1 = build()
    sim2, emu2, a2, b2 = build()

    arrivals = []
    emu1.set_receive_callback(b1.address, lambda p: arrivals.append(sim1.now))
    packet = Packet(src=a1.address, dst=b1.address, payload=None, size=333)
    assert emu1.send(packet, payload_tag="twin")
    sim1.run()

    # Replay the identical hop sequence through try_transit on the twin.
    path = emu2.ip_path(a2.address, b2.address)
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        total += emu2._links[(u, v)].transit_time(0.0 + total, packet.wire_size,
                                                  "twin")
    assert arrivals == [total]
    for u, v in zip(path[:-1], path[1:]):
        link1, link2 = emu1._links[(u, v)], emu2._links[(u, v)]
        assert link1.next_free == link2.next_free
        assert (link1.packets, link1.bytes, link1.drops) == \
               (link2.packets, link2.bytes, link2.drops)
        assert link1.overlay_payloads == link2.overlay_payloads


def test_send_inline_drop_path_matches_try_transit():
    """Queue-overflow drops must happen at the same hop with the same
    counters in both the inline loop and try_transit."""
    from repro.network.topology import dumbbell_topology

    def build():
        simulator = Simulator(seed=12)
        topology = dumbbell_topology(clients_per_side=1,
                                     bottleneck_bandwidth=10_000.0)
        emulator = NetworkEmulator(simulator, topology, max_queue_delay=0.2)
        a = emulator.attach_host(topology.clients[0])
        b = emulator.attach_host(topology.clients[1])
        return simulator, emulator, a, b

    sim1, emu1, a1, b1 = build()
    sim2, emu2, a2, b2 = build()

    results1 = [emu1.send(Packet(src=a1.address, dst=b1.address,
                                 payload=None, size=1400))
                for _ in range(50)]

    path = emu2.ip_path(a2.address, b2.address)
    wire = 1400 + HEADER_BYTES
    results2 = []
    for _ in range(50):
        total = 0.0
        accepted = True
        for u, v in zip(path[:-1], path[1:]):
            try:
                total += emu2._links[(u, v)].transit_time(0.0 + total, wire)
            except LinkDropped:
                accepted = False
                break
        results2.append(accepted)
    assert results1 == results2
    assert False in results1  # the workload actually overflowed the queue
    for u, v in zip(path[:-1], path[1:]):
        link1, link2 = emu1._links[(u, v)], emu2._links[(u, v)]
        assert (link1.packets, link1.bytes, link1.drops) == \
               (link2.packets, link2.bytes, link2.drops)
        assert link1.next_free == link2.next_free
