"""Tests for the packet-level network emulator."""

from __future__ import annotations

import pytest

from repro.network.addressing import AddressError, format_address, parse_address
from repro.network.emulator import NetworkEmulator
from repro.network.links import DirectedLink, LinkDropped
from repro.network.packet import HEADER_BYTES, Packet
from repro.network.topology import dumbbell_topology, transit_stub_topology
from repro.runtime.engine import Simulator


def test_address_formatting_roundtrip():
    assert parse_address(format_address(167772161)) == 167772161
    with pytest.raises(AddressError):
        parse_address("1.2.3")
    with pytest.raises(AddressError):
        parse_address("1.2.3.999")
    with pytest.raises(AddressError):
        format_address(-1)


def test_attach_hosts_and_send_packet():
    simulator = Simulator(seed=1)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=1))
    a = emulator.attach_host()
    b = emulator.attach_host()
    received = []
    emulator.set_receive_callback(b.address, received.append)
    packet = Packet(src=a.address, dst=b.address, payload="hi", size=100)
    assert emulator.send(packet)
    simulator.run()
    assert len(received) == 1
    assert received[0].payload == "hi"
    assert received[0].hops >= 1
    assert emulator.stats.packets_delivered == 1
    # Delivery latency at least the propagation latency.
    assert simulator.now >= emulator.ip_latency(a.address, b.address)


def test_unknown_host_rejected():
    simulator = Simulator(seed=1)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=1))
    a = emulator.attach_host()
    with pytest.raises(AddressError):
        emulator.send(Packet(src=a.address, dst=999, payload=None, size=10))


def test_random_loss():
    simulator = Simulator(seed=2)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=2),
                               random_loss_rate=1.0)
    a = emulator.attach_host()
    b = emulator.attach_host()
    assert not emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10))
    assert emulator.stats.packets_dropped == 1
    with pytest.raises(ValueError):
        NetworkEmulator(simulator, transit_stub_topology(4, seed=2),
                        random_loss_rate=1.5)


def test_bottleneck_queue_drops_under_overload():
    simulator = Simulator(seed=3)
    topology = dumbbell_topology(clients_per_side=1, bottleneck_bandwidth=10_000.0)
    emulator = NetworkEmulator(simulator, topology, max_queue_delay=0.2)
    a = emulator.attach_host()
    b = emulator.attach_host(topology.clients[1])
    accepted = sum(
        1 for _ in range(200)
        if emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=1400))
    )
    assert accepted < 200
    assert emulator.stats.packets_dropped > 0


def test_transmission_delay_scales_with_size():
    simulator = Simulator(seed=4)
    topology = dumbbell_topology(clients_per_side=1, bottleneck_bandwidth=125_000.0)
    emulator = NetworkEmulator(simulator, topology)
    a = emulator.attach_host(topology.clients[0])
    b = emulator.attach_host(topology.clients[1])
    arrival = {}
    emulator.set_receive_callback(b.address, lambda p: arrival.setdefault(p.packet_id, simulator.now))
    small = Packet(src=a.address, dst=b.address, payload=None, size=100)
    emulator.send(small)
    simulator.run()
    small_time = simulator.now
    big = Packet(src=a.address, dst=b.address, payload=None, size=10_000)
    start = simulator.now
    emulator.send(big)
    simulator.run()
    assert (simulator.now - start) > small_time * 1.5


def test_link_stress_accounting():
    simulator = Simulator(seed=5)
    emulator = NetworkEmulator(simulator, transit_stub_topology(4, seed=5))
    a = emulator.attach_host()
    b = emulator.attach_host()
    for _ in range(3):
        emulator.send(Packet(src=a.address, dst=b.address, payload=None, size=10),
                      payload_tag="pkt-1")
    simulator.run()
    stresses = [view.max_stress for view in emulator.link_stats().values()]
    assert max(stresses) == 3


def test_directed_link_queue_and_drop():
    link = DirectedLink(src=0, dst=1, latency=0.01, bandwidth=1000.0,
                        max_queue_delay=0.15)
    first = link.transit_time(0.0, 100)
    assert first == pytest.approx(0.01 + 0.1)
    # Second packet queues behind the first (0.1 s backlog, still accepted).
    second = link.transit_time(0.0, 100)
    assert second > first
    # Third packet would see 0.2 s of backlog, beyond the queue bound.
    with pytest.raises(LinkDropped):
        link.transit_time(0.0, 100)
    assert link.stats.drops == 1
    assert link.stats.packets == 2


def test_packet_wire_size_and_retransmit_copy():
    packet = Packet(src=1, dst=2, payload="x", size=100)
    assert packet.wire_size == 100 + HEADER_BYTES
    clone = packet.copy_for_retransmit()
    assert clone.packet_id != packet.packet_id
    assert clone.size == packet.size
    with pytest.raises(ValueError):
        Packet(src=1, dst=2, payload=None, size=-5)
