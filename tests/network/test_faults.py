"""Tests for the emulator/router fault hooks the scenario engine drives."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network.emulator import NetworkEmulator
from repro.network.packet import Packet
from repro.network.router import RoutingError
from repro.network.topology import (BANDWIDTH_ATTR, LATENCY_ATTR, ROLE_ATTR,
                                    Topology, TopologyError,
                                    transit_stub_topology)
from repro.runtime.engine import Simulator


def build(num_hosts: int = 4, seed: int = 1):
    simulator = Simulator(seed=seed)
    emulator = NetworkEmulator(simulator, transit_stub_topology(num_hosts, seed=seed))
    addresses = [emulator.attach_host().address for _ in range(num_hosts)]
    return simulator, emulator, addresses


# ------------------------------------------------------------- detach/reattach
def test_detach_host_drops_instead_of_raising():
    simulator, emulator, (a, b, *_) = build()
    emulator.detach_host(b)
    assert not emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    assert not emulator.send(Packet(src=b, dst=a, payload=None, size=10))
    assert emulator.stats.packets_dropped == 2
    # Reattach restores normal delivery.
    emulator.reattach_host(b)
    received = []
    emulator.set_receive_callback(b, received.append)
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    simulator.run()
    assert len(received) == 1


def test_detach_mid_flight_drops_at_delivery():
    simulator, emulator, (a, b, *_) = build()
    received = []
    emulator.set_receive_callback(b, received.append)
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    emulator.detach_host(b)  # after send, before delivery
    simulator.run()
    assert received == []
    assert emulator.stats.packets_dropped == 1


def test_detach_and_reattach_are_idempotent():
    _, emulator, (a, *_) = build()
    emulator.detach_host(a)
    emulator.detach_host(a)
    assert emulator._detached_count == 1
    emulator.reattach_host(a)
    emulator.reattach_host(a)
    assert emulator._detached_count == 0
    assert not emulator._faults_active


# ------------------------------------------------------------------- partitions
def test_host_partition_blocks_cross_group_traffic_only():
    simulator, emulator, (a, b, c, d) = build()
    delivered = []
    for address in (a, b, c, d):
        emulator.set_receive_callback(address, delivered.append)
    emulator.partition_hosts([[a, b], [c, d]])
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))      # same side
    assert not emulator.send(Packet(src=a, dst=c, payload=None, size=10))  # across
    assert not emulator.send(Packet(src=d, dst=b, payload=None, size=10))  # across
    emulator.heal_partition()
    assert emulator.send(Packet(src=a, dst=c, payload=None, size=10))
    simulator.run()
    assert len(delivered) == 2


def test_single_group_partition_isolates_its_members():
    simulator, emulator, (a, b, c, d) = build()
    emulator.partition_hosts([[c, d]])
    assert emulator.send(Packet(src=c, dst=d, payload=None, size=10))       # inside
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))       # outside
    assert not emulator.send(Packet(src=a, dst=c, payload=None, size=10))   # across
    assert not emulator.send(Packet(src=d, dst=b, payload=None, size=10))   # across
    simulator.run()


# -------------------------------------------------------------------- link cuts
def test_disable_link_reroutes_and_enable_restores():
    simulator, emulator, (a, b, *_) = build(num_hosts=6, seed=2)
    before = emulator.ip_path(a, b)
    assert len(before) > 2
    # Cut an interior edge of the current path: traffic routes around it.
    u, v = before[1], before[2]
    emulator.disable_link(u, v)
    after = emulator.ip_path(a, b)
    assert (u, v) not in zip(after[:-1], after[1:])
    assert (v, u) not in zip(after[:-1], after[1:])
    assert not emulator._links[(u, v)].enabled
    received = []
    emulator.set_receive_callback(b, received.append)
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    simulator.run()
    assert len(received) == 1
    assert list(received[0].path) == after
    # Healing restores the original shortest path.
    emulator.enable_link(u, v)
    assert emulator.ip_path(a, b) == before
    assert emulator._links[(u, v)].enabled


def test_disable_link_invalidation_is_targeted():
    simulator, emulator, addresses = build(num_hosts=6, seed=3)
    a, b, c, d = addresses[:4]
    # Warm two plans.
    emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    emulator.send(Packet(src=c, dst=d, payload=None, size=10))
    nodes = {addr: emulator._host(addr).node for addr in (a, b, c, d)}
    path_ab = emulator.ip_path(a, b)
    path_cd = emulator.ip_path(c, d)
    # Pick an edge on a->b that c->d does not use.
    edges_cd = set(zip(path_cd[:-1], path_cd[1:])) | set(zip(path_cd[1:], path_cd[:-1]))
    cut = next((u, v) for u, v in zip(path_ab[:-1], path_ab[1:])
               if (u, v) not in edges_cd)
    untouched_key = (nodes[c], nodes[d])
    cut_key = (nodes[a], nodes[b])
    assert untouched_key in emulator._routes and cut_key in emulator._routes
    emulator.disable_link(*cut)
    assert untouched_key in emulator._routes     # targeted: survivor kept
    assert cut_key not in emulator._routes       # traversing plan pruned
    simulator.run()


def test_cutting_the_only_path_drops_packets():
    simulator, emulator, (a, *_) = build()
    # A client's single access link is its only way out.
    client_node = emulator._host(a).node
    (stub,) = list(emulator.topology.graph.neighbors(client_node))
    emulator.disable_link(client_node, stub)
    other = emulator.hosts[1].address
    assert not emulator.send(Packet(src=a, dst=other, payload=None, size=10))
    assert emulator.stats.packets_dropped == 1
    with pytest.raises(RoutingError):
        emulator.ip_path(a, other)
    emulator.enable_link(client_node, stub)
    assert emulator.send(Packet(src=a, dst=other, payload=None, size=10))


def test_disable_unknown_edge_raises():
    _, emulator, _ = build()
    with pytest.raises(RoutingError):
        emulator.disable_link(10_000, 10_001)


# --------------------------------------------------------------- attach errors
def test_attach_on_clientless_topology_raises_actionable_error():
    graph = nx.Graph()
    graph.add_node(0, **{ROLE_ATTR: "transit"})
    graph.add_node(1, **{ROLE_ATTR: "transit"})
    graph.add_edge(0, 1, **{LATENCY_ATTR: 0.01, BANDWIDTH_ATTR: 1e6})
    topology = Topology(graph=graph, clients=[], name="no-clients")
    emulator = NetworkEmulator(Simulator(seed=1), topology)
    with pytest.raises(TopologyError, match="no-clients"):
        emulator.attach_host()


def test_fault_free_hot_path_is_unchanged():
    """With no faults ever injected, the fault branch must never fire and
    stats must match a pre-fault-hook run exactly (same counters)."""
    simulator, emulator, (a, b, *_) = build()
    assert not emulator._faults_active
    for _ in range(5):
        emulator.send(Packet(src=a, dst=b, payload=None, size=50))
    simulator.run()
    assert emulator.stats.packets_sent == 5
    assert emulator.stats.packets_delivered == 5
    assert emulator.stats.packets_dropped == 0


# ----------------------------------------------------------- directed link cuts
def test_directed_cut_blocks_one_direction_only():
    simulator, emulator, (a, b, *_) = build()
    path = emulator.ip_path(a, b)
    u, v = path[0], path[1]
    emulator.disable_link_direction(u, v)
    received = []
    for address in (a, b):
        emulator.set_receive_callback(address, received.append)
    assert not emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    assert emulator.send(Packet(src=b, dst=a, payload=None, size=10))
    simulator.run()
    assert len(received) == 1
    assert emulator.stats.packets_dropped == 1
    emulator.enable_link_direction(u, v)
    assert not emulator._faults_active
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    simulator.run()
    assert len(received) == 2


def test_directed_cut_is_idempotent_and_validated():
    _, emulator, _ = build()
    with pytest.raises(RoutingError):
        emulator.disable_link_direction(10_000, 10_001)
    graph = emulator.topology.graph
    u, v = next(iter(graph.edges()))
    emulator.disable_link_direction(u, v)
    emulator.disable_link_direction(u, v)
    assert emulator._directed_cuts == {(u, v)}
    emulator.enable_link_direction(u, v)
    emulator.enable_link_direction(u, v)
    assert not emulator._directed_cuts
    assert not emulator._faults_active


# ------------------------------------------------------------ edge degradation
def test_degrade_edge_restores_byte_identical_weights():
    _, emulator, (a, b, *_) = build()
    path = emulator.ip_path(a, b)
    u, v = path[0], path[1]
    link = emulator._links[(u, v)]
    original_latency = link.latency
    original_bandwidth = link.bandwidth
    emulator.degrade_edge(u, v, bandwidth_factor=0.25, latency_factor=3.0)
    assert link.latency == original_latency * 3.0
    assert link.bandwidth == original_bandwidth * 0.25
    assert link.degraded
    # Degrading again recomputes from the base, never compounds.
    emulator.degrade_edge(u, v, bandwidth_factor=0.5, latency_factor=2.0)
    assert link.latency == original_latency * 2.0
    emulator.restore_edge(u, v)
    assert link.latency == original_latency
    assert link.bandwidth == original_bandwidth
    assert not link.degraded
    assert not emulator._faults_active


def test_degrade_edge_reroutes_around_slow_edge():
    simulator, emulator, (a, b, *_) = build(num_hosts=6, seed=2)
    before = emulator.ip_path(a, b)
    u, v = before[1], before[2]
    # Make the edge so slow the router prefers any detour.
    emulator.degrade_edge(u, v, latency_factor=1000.0)
    after = emulator.ip_path(a, b)
    assert (u, v) not in zip(after[:-1], after[1:])
    assert (v, u) not in zip(after[:-1], after[1:])
    emulator.restore_edge(u, v)
    assert emulator.ip_path(a, b) == before


def test_degrade_edge_invalidation_is_targeted():
    simulator, emulator, addresses = build(num_hosts=6, seed=3)
    a, b, c, d = addresses[:4]
    emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    emulator.send(Packet(src=c, dst=d, payload=None, size=10))
    nodes = {addr: emulator._host(addr).node for addr in (a, b, c, d)}
    path_ab = emulator.ip_path(a, b)
    path_cd = emulator.ip_path(c, d)
    edges_cd = set(zip(path_cd[:-1], path_cd[1:])) | set(zip(path_cd[1:], path_cd[:-1]))
    slow = next((u, v) for u, v in zip(path_ab[:-1], path_ab[1:])
                if (u, v) not in edges_cd)
    untouched_key = (nodes[c], nodes[d])
    slowed_key = (nodes[a], nodes[b])
    assert untouched_key in emulator._routes and slowed_key in emulator._routes
    emulator.degrade_edge(*slow, latency_factor=5.0)
    assert untouched_key in emulator._routes     # targeted: survivor kept
    assert slowed_key not in emulator._routes    # traversing plan pruned
    simulator.run()


def test_degrade_edge_validates_factors():
    _, emulator, _ = build()
    graph = emulator.topology.graph
    u, v = next(iter(graph.edges()))
    with pytest.raises(ValueError):
        emulator.degrade_edge(u, v, bandwidth_factor=0.0)
    with pytest.raises(ValueError):
        emulator.degrade_edge(u, v, bandwidth_factor=1.5)
    with pytest.raises(ValueError):
        emulator.degrade_edge(u, v, latency_factor=0.5)
    with pytest.raises(RoutingError):
        emulator.degrade_edge(10_000, 10_001, latency_factor=2.0)


def test_degrade_host_slows_access_links_and_restores():
    simulator, emulator, (a, b, *_) = build()
    client_node = emulator._host(a).node
    access = [(client_node, nbr)
              for nbr in emulator.topology.graph.neighbors(client_node)]
    originals = {edge: emulator._links[edge].latency for edge in access}
    emulator.degrade_host(a, latency_factor=4.0)
    for edge, latency in originals.items():
        assert emulator._links[edge].latency == latency * 4.0
    received = []
    emulator.set_receive_callback(b, received.append)
    assert emulator.send(Packet(src=a, dst=b, payload=None, size=10))
    simulator.run()
    assert len(received) == 1
    emulator.restore_host(a)
    for edge, latency in originals.items():
        assert emulator._links[edge].latency == latency
    assert not emulator._faults_active
