"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network import NetworkEmulator, transit_stub_topology
from repro.runtime import MacedonNode, Simulator, Tracer


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def small_topology():
    return transit_stub_topology(12, seed=42)


@pytest.fixture
def emulator(simulator, small_topology) -> NetworkEmulator:
    return NetworkEmulator(simulator, small_topology)


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


def build_overlay(agent_classes, num_nodes, *, seed=1, run_for=90.0,
                  strict_locking=True):
    """Construct, initialise, and converge a small overlay; returns (sim, emu, nodes)."""
    simulator = Simulator(seed=seed)
    topology = transit_stub_topology(num_nodes, seed=seed)
    emulator = NetworkEmulator(simulator, topology)
    tracer = Tracer()
    nodes = [MacedonNode(simulator, emulator, agent_classes, tracer=tracer,
                         strict_locking=strict_locking)
             for _ in range(num_nodes)]
    for node in nodes:
        node.macedon_init(nodes[0].address)
    simulator.run(until=run_for)
    return simulator, emulator, nodes


@pytest.fixture
def overlay_builder():
    return build_overlay
