"""Registry error paths and base-override cache hygiene."""

from __future__ import annotations

import sys

import pytest

from repro.codegen import ProtocolRegistry, compile_source, get_registry
from repro.dsl.errors import CodegenError, MacError
from repro.runtime.agent import Agent


# ------------------------------------------------------------ missing specs
def test_unknown_spec_suggests_close_match():
    registry = ProtocolRegistry()
    with pytest.raises(MacError) as excinfo:
        registry.load_spec("chrod")
    message = str(excinfo.value)
    assert "no specification named 'chrod'" in message
    assert "did you mean" in message
    assert "chord" in message
    # The diagnosis also tells the user where specs live and how to add one.
    assert "available specs" in message
    assert str(registry.specs_dir) in message


def test_unknown_spec_without_close_match_lists_available():
    registry = ProtocolRegistry()
    with pytest.raises(MacError) as excinfo:
        registry.load_spec("zzzzzz")
    message = str(excinfo.value)
    assert "did you mean" not in message
    assert "available specs" in message


def test_missing_specs_directory_diagnosed(tmp_path):
    registry = ProtocolRegistry(specs_dir=tmp_path / "nowhere")
    with pytest.raises(MacError, match="specs directory does not exist"):
        registry.load_spec("chord")


def test_empty_specs_directory_diagnosed(tmp_path):
    registry = ProtocolRegistry(specs_dir=tmp_path)
    with pytest.raises(MacError, match="contains no .mac files"):
        registry.load_spec("chord")


# ----------------------------------------------------------- compile_source
def test_compile_source_rejects_missing_agent_class():
    with pytest.raises(CodegenError, match="did not define AGENT_CLASS"):
        compile_source("x = 1\n", "repro._generated.test_no_agent")


def test_compile_source_rejects_non_agent_class():
    source = "class NotAnAgent:\n    pass\nAGENT_CLASS = NotAnAgent\n"
    with pytest.raises(CodegenError, match="did not define AGENT_CLASS"):
        compile_source(source, "repro._generated.test_bad_agent")


def test_compile_source_rejects_syntax_errors():
    with pytest.raises(CodegenError, match="does not compile"):
        compile_source("def broken(:\n", "repro._generated.test_syntax")


# ------------------------------------------------- base-override cache keys
def test_override_does_not_poison_unoverridden_class_cache():
    """Loading Scribe-over-Chord must leave plain Scribe untouched."""
    registry = get_registry()
    plain_before = registry.load_protocol("scribe")
    overridden = registry.load_stack("scribe",
                                     base_overrides={"scribe": "chord"})[-1]
    plain_after = registry.load_protocol("scribe")
    assert plain_after is plain_before
    assert plain_after.BASE_PROTOCOL == "pastry"
    assert overridden.BASE_PROTOCOL == "chord"
    assert overridden is not plain_after
    # The cached spec still declares the bundled base.
    assert registry.load_spec("scribe").base == "pastry"


def test_override_gets_its_own_module_registration():
    """Regression: the re-based compile must not clobber the bundled
    variant's sys.modules entry (tracebacks/pickling resolve through it)."""
    registry = ProtocolRegistry()
    # Load the overridden variant FIRST, then the plain one, then check both
    # module registrations still resolve to their own classes.
    registry.load_protocol("scribe", base="chord")
    plain = registry.load_protocol("scribe")
    plain_module = sys.modules["repro._generated.scribe"]
    assert plain_module.AGENT_CLASS is plain
    override_module = sys.modules["repro._generated.scribe__over_chord"]
    assert override_module.AGENT_CLASS.BASE_PROTOCOL == "chord"
    assert override_module.AGENT_CLASS is not plain
    # Loading the override again afterwards must not disturb the plain entry.
    registry2 = ProtocolRegistry()
    registry2.load_protocol("scribe", base="chord")
    assert sys.modules["repro._generated.scribe"].AGENT_CLASS is plain


def test_override_variants_coexist_and_cache_separately():
    registry = ProtocolRegistry()
    over_chord = registry.load_protocol("scribe", base="chord")
    over_chord_again = registry.load_protocol("scribe", base="chord")
    plain = registry.load_protocol("scribe")
    assert over_chord is over_chord_again
    assert issubclass(over_chord, Agent)
    assert over_chord.PROTOCOL == plain.PROTOCOL == "scribe"
    assert over_chord.__name__ == "ScribeAgentOverChord"
