"""Tests for the action-code rewriter."""

from __future__ import annotations

import pytest

from repro.codegen.generator import normalize_action_code, rewrite_action_code
from repro.dsl.errors import CodegenError

SELF_NAMES = {"neighbor_add", "state_change", "papa", "counter", "MAX"}


def test_primitives_and_state_vars_get_self_prefix():
    out = rewrite_action_code("neighbor_add(papa, source)\nstate_change('joined')",
                              SELF_NAMES)
    assert "self.neighbor_add(self.papa, __ctx.source)" in out
    assert "self.state_change('joined')" in out


def test_assignment_to_state_variable_rewritten():
    out = rewrite_action_code("counter = counter + 1", SELF_NAMES)
    assert out.strip() == "self.counter = self.counter + 1"


def test_keyword_arguments_not_rewritten():
    out = rewrite_action_code("send(x, counter=1, papa=2)", SELF_NAMES | {"send"})
    assert "counter=1" in out
    assert "papa=2" in out
    assert "self.send(" in out


def test_attribute_access_not_rewritten():
    out = rewrite_action_code("obj.counter = papa.delay", SELF_NAMES)
    assert "obj.counter" in out
    assert "self.papa.delay" in out


def test_context_names_rewritten():
    out = rewrite_action_code("if field('x') == source:\n    quash = True",
                              SELF_NAMES)
    assert "__ctx.field('x')" in out
    assert "__ctx.source" in out
    assert "__ctx.quash = True" in out


def test_strings_and_comments_untouched():
    code = 's = "papa lives here"  # counter in a comment'
    out = rewrite_action_code(code, SELF_NAMES)
    assert '"papa lives here"' in out
    assert "# counter in a comment" in out


def test_locals_untouched():
    out = rewrite_action_code("temp = 1\ntemp = temp + 1", SELF_NAMES)
    assert "self" not in out


def test_keywords_never_rewritten():
    out = rewrite_action_code("for papa in [1]:\n    pass", SELF_NAMES)
    assert "for self.papa in" in out  # loop var is a state name: rewritten by design
    assert "pass" in out


def test_indentation_preserved():
    code = "if counter:\n    if papa:\n        state_change('x')"
    out = rewrite_action_code(code, SELF_NAMES)
    assert "        self.state_change('x')" in out


def test_empty_body_becomes_pass():
    assert normalize_action_code("   \n  ") == "pass"
    assert rewrite_action_code("", SELF_NAMES) == "pass"


def test_untokenizable_body_raises():
    with pytest.raises(CodegenError):
        rewrite_action_code("def broken(:\n", SELF_NAMES, context="test")
