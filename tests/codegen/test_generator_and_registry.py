"""Tests for code generation and the protocol registry."""

from __future__ import annotations

import pytest

from repro.codegen import (
    ProtocolRegistry,
    class_name_for,
    compile_mac,
    compile_spec,
    generate_source,
    get_registry,
    load_protocol,
    load_stack,
)
from repro.dsl import load_spec_text, parse_mac, validate
from repro.dsl.errors import MacError
from repro.runtime.agent import Agent
from repro.runtime.tracing import TraceLevel

SIMPLE = """
protocol tiny
addressing hash
trace_high
constants { LIMIT = 2; }
states { ready; }
neighbor_types { peer LIMIT { double delay; } }
transports { UDP BEST_EFFORT; }
messages { BEST_EFFORT hello { int x; } }
state_variables { peer buddies; int hits; timer tick 1.0; map notes; }
transitions {
    any API init { state_change("ready") }
    ready recv hello { hits = hits + 1 }
    ready timer tick [locking read;] { pass }
}
routines {
    def double_hits(self):
        return self.hits * 2
}
"""


def test_class_name_for():
    assert class_name_for("overcast") == "OvercastAgent"
    assert class_name_for("split_stream") == "SplitStreamAgent"


def test_generated_source_structure():
    spec = load_spec_text(SIMPLE)
    source = generate_source(spec)
    assert "class TinyAgent(Agent):" in source
    assert "PROTOCOL = 'tiny'" in source
    assert "TRACE = TraceLevel.HIGH" in source
    assert "MessageType('hello'" in source
    assert "StateVarSpec(name='buddies'" in source
    assert "TransitionSpec(kind='api', name='init'" in source
    assert "def double_hits(self):" in source
    assert "AGENT_CLASS = TinyAgent" in source
    # Generated source is valid Python.
    compile(source, "<generated>", "exec")


def test_compiled_class_attributes():
    agent_class = compile_mac(SIMPLE, "tiny.mac")
    assert issubclass(agent_class, Agent)
    assert agent_class.PROTOCOL == "tiny"
    assert agent_class.ADDRESSING == "hash"
    assert agent_class.TRACE == TraceLevel.HIGH
    assert agent_class.CONSTANTS == {"LIMIT": 2}
    assert agent_class.NEIGHBOR_TYPES["peer"].max_size == 2
    assert len(agent_class.TRANSITIONS) == 3
    assert agent_class.TRANSITIONS[2].locking == "read"


def test_generated_transition_index_matches_transitions():
    # The emitted dispatch table must cover exactly the declared (kind, name)
    # events and point at the right TRANSITIONS positions, in declaration
    # order — it is what the runtime dispatches deliveries through.
    agent_class = compile_mac(SIMPLE, "tiny.mac")
    index = agent_class.TRANSITION_INDEX
    assert set(index) == {("api", "init"), ("recv", "hello"),
                          ("timer", "tick")}
    for (kind, name), positions in index.items():
        assert positions == tuple(
            i for i, t in enumerate(agent_class.TRANSITIONS)
            if (t.kind, t.name) == (kind, name))


def test_registry_lists_all_bundled_protocols():
    registry = get_registry()
    available = registry.available()
    for name in ("chord", "pastry", "scribe", "splitstream", "overcast",
                 "nice", "bullet", "ammo", "randtree"):
        assert name in available


def test_registry_unknown_protocol():
    registry = ProtocolRegistry()
    with pytest.raises(MacError):
        registry.load_spec("does_not_exist")


def test_load_protocol_caches_classes():
    assert load_protocol("randtree") is load_protocol("randtree")


def test_load_stack_resolution_order():
    stack = load_stack("splitstream")
    assert [cls.PROTOCOL for cls in stack] == ["pastry", "scribe", "splitstream"]
    bullet = load_stack("bullet")
    assert [cls.PROTOCOL for cls in bullet] == ["randtree", "bullet"]


def test_load_stack_with_base_override():
    stack = load_stack("scribe", base_overrides={"scribe": "chord"})
    assert [cls.PROTOCOL for cls in stack] == ["chord", "scribe"]
    assert stack[1].BASE_PROTOCOL == "chord"


def test_generated_source_written_to_disk(tmp_path):
    registry = get_registry()
    path = registry.write_generated("randtree", tmp_path)
    assert path.exists()
    text = path.read_text()
    assert "class RandtreeAgent(Agent):" in text


def test_lines_of_code_reporting():
    loc = get_registry().lines_of_code()
    assert all(count > 0 for count in loc.values())
    assert loc["splitstream"] < loc["chord"]


def test_compile_spec_rejects_invalid():
    spec = parse_mac("protocol bad states { a; a; }")
    with pytest.raises(Exception):
        compile_spec(spec)
