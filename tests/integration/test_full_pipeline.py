"""Integration tests: DSL text → generated code → running overlay → metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen import compile_mac, get_registry
from repro.eval import ExperimentConfig, OverlayExperiment, link_stress
from repro.eval.metrics import stretch_samples
from repro.network import NetworkEmulator, multi_site_topology, transit_stub_topology
from repro.protocols import overcast_agent, scribe_stack
from repro.runtime import MacedonNode, Simulator
from repro.apps.payload import AppPayload


@dataclass(frozen=True)
class Pkt:
    seqno: int


def test_user_written_spec_runs_end_to_end(tmp_path):
    """A brand-new protocol written as mac text compiles and runs."""
    mac_text = """
    protocol flooder
    addressing ip
    trace_low
    states { active; }
    transports { UDP U; }
    messages { U flood { int hop; ipaddr origin; } }
    state_variables { map seen; fail_detect fpeers peers; }
    neighbor_types { fpeers 8 { double rtt; } }
    transitions {
        any API init {
            state_change("active")
            if not is_bootstrap:
                neighbor_add(peers, bootstrap_addr)
        }
        active recv flood {
            key = (field("origin"), field("hop"))
            if key not in seen:
                seen[key] = now()
                upcall_deliver(payload, payload_size, 0, source=field("origin"))
                for peer in peers:
                    if peer.addr != source:
                        send_msg("flood", peer.addr, hop=field("hop") + 1,
                                 origin=field("origin"), payload=payload,
                                 payload_size=payload_size)
        }
        active API multicast [locking read;] {
            for peer in peers:
                send_msg("flood", peer.addr, hop=0, origin=my_addr,
                         payload=payload, payload_size=payload_size)
        }
        active recv flood [locking read;] { pass }
    }
    """
    agent_class = compile_mac(mac_text, "flooder.mac")
    simulator = Simulator(seed=101)
    emulator = NetworkEmulator(simulator, transit_stub_topology(5, seed=101))
    nodes = [MacedonNode(simulator, emulator, [agent_class]) for _ in range(5)]
    got = []
    for node in nodes:
        node.macedon_register_handlers(deliver=lambda p, s, t: got.append(p))
        node.macedon_init(nodes[0].address)
    simulator.run(until=10)
    # star topology around the bootstrap: a multicast from a leaf reaches the root.
    nodes[2].macedon_multicast(0, Pkt(1), 300)
    simulator.run(until=20)
    assert got  # at least the bootstrap delivered it


def test_generated_code_matches_registry_loaded_class():
    registry = get_registry()
    source = registry.generated_source("overcast")
    assert "class OvercastAgent(Agent):" in source
    assert registry.load_protocol("overcast").PROTOCOL == "overcast"


def test_stretch_and_link_stress_from_real_overlay_run():
    topology = multi_site_topology([4] * 4, seed=102)
    experiment = OverlayExperiment([overcast_agent()],
                                   ExperimentConfig(num_nodes=16, seed=102,
                                                    topology=topology,
                                                    convergence_time=120.0))
    experiment.init_all()
    experiment.converge()
    source = experiment.bootstrap
    latencies = experiment.multicast_latency_probe(source, group=1, packets=3)
    samples = stretch_samples(experiment.emulator, source.address, latencies)
    assert samples
    assert all(sample.stretch >= 0.99 for sample in samples)
    stress = link_stress(experiment.emulator)
    assert stress["links"] > 0
    assert stress["max"] >= 1


def test_splitstream_full_stack_over_chord_substrate():
    """Three-layer stack with the substrate switched at load time."""
    stack = scribe_stack(base="chord")
    simulator = Simulator(seed=103)
    emulator = NetworkEmulator(simulator, transit_stub_topology(15, seed=103))
    nodes = [MacedonNode(simulator, emulator, stack) for _ in range(15)]
    received = {node.address: 0 for node in nodes}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address:
            received.__setitem__(a, received[a] + 1))
        node.macedon_init(nodes[0].address)
    simulator.run(until=120)
    source = nodes[1]
    source.macedon_create_group(11)
    simulator.run(until=125)
    for node in nodes:
        if node is not source:
            node.macedon_join(11)
    simulator.run(until=170)
    payload = AppPayload(seqno=0, sent_at=simulator.now, source=source.address)
    source.macedon_multicast(11, payload, 1000)
    simulator.run(until=220)
    delivered = sum(1 for node in nodes if node is not source and received[node.address] > 0)
    assert delivered == len(nodes) - 1
