"""Determinism contract of the sharded kernel (PR 7).

Three guarantees, each load-bearing for trusting sharded results:

* ``shards=1`` pushed through the worker pipeline is byte-identical
  (repr-exact metrics) to the plain single-process run — the pipeline adds
  no physics of its own.
* ``shards=K`` is stable across repeats — forking, barrier exchange, and
  packet merging introduce no process-local nondeterminism.
* ``shards=K`` results do not depend on K — the contention-free sharded
  link model makes per-packet delay a pure function of the route, so the
  partition choice cannot leak into the physics.

The sharded link model intentionally differs from the single-process
queueing model (see docs/PERFORMANCE.md, "Sharded execution"), so K>1 runs
are compared against each other, never against the single-process run.
"""

from __future__ import annotations

import pytest

from repro import protocols
from repro.eval.scenario import (ChurnModel, GroupModel, PartitionModel,
                                 ScenarioSpec, WorkloadModel)
from repro.protocols import chord_agent
from repro.runtime.failure import FailureDetectorConfig


def make_seeded():
    spec = ScenarioSpec(
        name="sharded-equivalence",
        agents=lambda: [chord_agent()],
        num_nodes=40,
        duration=20.0,
        failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                             heartbeat_timeout=4.0,
                                             check_interval=1.0),
        models=(
            ChurnModel(join="staggered", join_spacing=0.1, churn_fraction=0.0),
            WorkloadModel(kind="route", source=-1, start=15.0, packets=5,
                          gap=0.25),
        ),
    )
    return spec.with_seed(7)


def fingerprint(result) -> dict[str, str]:
    return {key: repr(value) for key, value in sorted(result.metrics.items())}


@pytest.fixture(scope="module")
def single_run():
    return make_seeded().run()


@pytest.fixture(scope="module")
def sharded_4():
    return make_seeded().run_sharded(4)


@pytest.mark.determinism
def test_one_shard_pipeline_is_byte_identical(single_run):
    piped = make_seeded().run_sharded(1)
    assert fingerprint(piped) == fingerprint(single_run)
    assert piped.shard_info["num_shards"] == 1


@pytest.mark.determinism
def test_sharded_run_is_repeat_stable(sharded_4):
    again = make_seeded().run_sharded(4)
    assert fingerprint(again) == fingerprint(sharded_4)


@pytest.mark.determinism
def test_results_do_not_depend_on_shard_count(sharded_4):
    two = make_seeded().run_sharded(2)
    assert fingerprint(two) == fingerprint(sharded_4)


def make_stressed_scribe():
    """Scribe-over-Pastry with group choreography and a healed partition:
    exercises the two event families with special sharded accounting —
    node-gated group joins (owner-skip counted per callsite) and replicated
    emulator-level partition/heal events (counted once, on shard 0)."""
    spec = ScenarioSpec(
        name="sharded-equivalence-scribe",
        agents=lambda: protocols.scribe_stack("pastry"),
        num_nodes=30,
        duration=45.0,
        failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                             heartbeat_timeout=4.0,
                                             check_interval=1.0),
        models=(
            ChurnModel(join="staggered", join_spacing=0.15,
                       churn_fraction=0.0),
            GroupModel(group=7, source=0, at=18.0, spacing=0.25),
            PartitionModel(groups=((1, 2, 3),), at=20.0, heal_after=6.0),
            WorkloadModel(kind="multicast", source=0, group=7, start=38.0,
                          packets=4, gap=1.0),
        ),
    )
    return spec.with_seed(3)


@pytest.mark.determinism
def test_group_and_partition_events_are_shard_count_independent():
    two = fingerprint(make_stressed_scribe().run_sharded(2))
    four = fingerprint(make_stressed_scribe().run_sharded(4))
    assert two == four
    assert make_stressed_scribe().run_sharded(1).shard_info["num_shards"] == 1


def test_sharded_run_did_real_cross_shard_work(sharded_4, single_run):
    info = sharded_4.shard_info
    assert info["num_shards"] == 4
    assert info["cross_shard_packets"] > 0
    assert info["barriers"] > 1
    assert 0.0 < info["lookahead"] < float("inf")
    # All 40 nodes came up under both kernels.
    assert sharded_4.metrics["nodes.alive"] == 40.0
    assert single_run.metrics["nodes.alive"] == 40.0
