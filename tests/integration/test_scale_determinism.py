"""Cross-process determinism of the protocol-plane fast paths at scale.

The PR-4 fast paths (slotted messages, generation-counter timers, the
inlined transport send, dispatch tables) must not leak any process-local
state — iteration order, id()s, interning — into simulation results.  The
strongest practical check is to run the *same* 200-node registry-compiled
Chord scenario in two fresh interpreter processes and require every metric
to be byte-identical (floats compared via repr, like the benchmark
fingerprints).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Executed in a fresh interpreter per run: a short 200-node Chord scenario
#: (staggered joins + route probes), every metric printed repr-exactly.
SCALE_SCRIPT = r"""
import json
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel
from repro.protocols import chord_agent
from repro.runtime.failure import FailureDetectorConfig

spec = ScenarioSpec(
    name="scale-determinism",
    agents=lambda: [chord_agent()],
    num_nodes=200,
    duration=25.0,
    failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                         heartbeat_timeout=4.0,
                                         check_interval=1.0),
    models=(
        ChurnModel(join="staggered", join_spacing=0.1, churn_fraction=0.0),
        WorkloadModel(kind="route", source=-1, start=21.0, packets=10,
                      gap=0.25),
    ),
)
result = spec.with_seed(7).run()
print(json.dumps({key: repr(value)
                  for key, value in sorted(result.metrics.items())}))
"""


def run_in_fresh_process() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Randomised string hashing per process: any reliance of the fast paths
    # on dict/set iteration order of strings would show up as a mismatch.
    env["PYTHONHASHSEED"] = "random"
    completed = subprocess.run(
        [sys.executable, "-c", SCALE_SCRIPT],
        capture_output=True, text=True, timeout=300,
        cwd=REPO_ROOT, env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


@pytest.mark.determinism
def test_200_node_chord_metrics_identical_across_processes():
    first = run_in_fresh_process()
    second = run_in_fresh_process()
    assert first == second
    # Sanity: the run actually did something at scale.
    assert float(first["sim.events_processed"]) > 50_000
    assert float(first["nodes.alive"]) == 200.0
