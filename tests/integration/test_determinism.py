"""Fixed-seed determinism regression tests for the simulation core.

The engine/emulator hot path has been rewritten for speed (flat tuple heap
entries, cached route plans, hand-rolled Dijkstra — see docs/PERFORMANCE.md);
these tests pin the property that rewrite must preserve: two runs from the
same seed produce *identical* event counts, delivery statistics, and metric
samples, down to the last float bit.
"""

from __future__ import annotations

import pytest

from repro.network.emulator import NetworkEmulator
from repro.network.packet import Packet
from repro.network.topology import transit_stub_topology
from repro.runtime.engine import Simulator


def run_workload(seed: int) -> dict:
    """A deterministic traffic workload over engine + emulator + links.

    Mixes plain sends, random loss, payload tags (link-stress accounting),
    and cancelled events, then returns every observable metric.
    """
    num_hosts = 40
    simulator = Simulator(seed=seed)
    topology = transit_stub_topology(num_hosts, seed=seed)
    emulator = NetworkEmulator(simulator, topology, random_loss_rate=0.02)
    addresses = [emulator.attach_host().address for _ in range(num_hosts)]

    latencies: list[float] = []

    def on_receive(packet: Packet) -> None:
        latencies.append(simulator.now - packet.created_at)

    for address in addresses:
        emulator.set_receive_callback(address, on_receive)

    rng = simulator.fork_rng("determinism-traffic")

    def send_one(src: int, dst: int, size: int, tag: str) -> None:
        emulator.send(Packet(src=src, dst=dst, payload=None, size=size),
                      payload_tag=tag)

    cancelled = 0
    for index in range(800):
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts)
        if dst == src:
            dst = (dst + 1) % num_hosts
        size = rng.randint(50, 1200)
        handle = simulator.schedule(index * 0.01, send_one,
                                    addresses[src], addresses[dst], size,
                                    f"payload-{index % 13}")
        # Cancel a deterministic subset to exercise the live-event counter
        # and cancelled-entry skipping in the run loop.
        if index % 17 == 0:
            handle.cancel()
            cancelled += 1
    simulator.run()

    link_totals = sorted(
        (key, view.packets, view.bytes, view.drops, view.max_stress)
        for key, view in emulator.link_stats().items()
    )
    return {
        "events_processed": simulator.events_processed,
        "pending_after_run": simulator.pending(),
        "cancelled": cancelled,
        "packets_sent": emulator.stats.packets_sent,
        "packets_delivered": emulator.stats.packets_delivered,
        "packets_dropped": emulator.stats.packets_dropped,
        "bytes_delivered": emulator.stats.bytes_delivered,
        "final_time": simulator.now,
        "latencies": tuple(latencies),
        "link_totals": tuple(link_totals),
    }


@pytest.mark.determinism
def test_same_seed_runs_are_bit_identical():
    first = run_workload(seed=11)
    second = run_workload(seed=11)
    assert first == second
    # The workload actually exercised the interesting paths.
    assert first["packets_delivered"] > 0
    assert first["packets_dropped"] > 0
    assert first["pending_after_run"] == 0


@pytest.mark.determinism
def test_different_seeds_diverge():
    assert run_workload(seed=11) != run_workload(seed=12)
