"""Behavioural tests for the layered protocols (Scribe, SplitStream)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.protocols import scribe_stack, splitstream_stack

GROUP = 4040


@dataclass(frozen=True)
class Pkt:
    seqno: int


def setup_session(overlay_builder, stack, seed, num=20):
    simulator, emulator, nodes = overlay_builder(stack, num, seed=seed, run_for=120.0)
    source = nodes[1]
    source.macedon_create_group(GROUP)
    simulator.run(until=simulator.now + 5)
    received = {node.address: 0 for node in nodes}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address:
            received.__setitem__(a, received[a] + 1))
        if node is not source:
            node.macedon_join(GROUP)
    simulator.run(until=simulator.now + 40)
    return simulator, nodes, source, received


@pytest.mark.parametrize("base", ["pastry", "chord"])
def test_scribe_multicast_delivers_over_either_dht(overlay_builder, base):
    simulator, nodes, source, received = setup_session(
        overlay_builder, scribe_stack(base=base), seed=41)
    for index in range(5):
        source.macedon_multicast(GROUP, Pkt(index), 1000)
    simulator.run(until=simulator.now + 40)
    laggards = [node.address for node in nodes
                if node is not source and received[node.address] < 5]
    assert not laggards


def test_scribe_builds_a_tree_rooted_at_group_owner(overlay_builder):
    simulator, nodes, source, _ = setup_session(overlay_builder, scribe_stack(),
                                                seed=42)
    roots = [node for node in nodes if node.agent("scribe").is_group_root(GROUP)]
    assert len(roots) == 1
    # Every member is someone's child or the root itself.
    children = set()
    for node in nodes:
        children.update(node.agent("scribe").group_children(GROUP))
    members = {node.address for node in nodes if node is not source}
    assert members <= children | {roots[0].address}


def test_scribe_non_members_do_not_deliver(overlay_builder):
    simulator, emulator, nodes = overlay_builder(scribe_stack(), 15, seed=43,
                                                 run_for=120.0)
    source = nodes[1]
    outsider = nodes[2]
    source.macedon_create_group(GROUP)
    simulator.run(until=simulator.now + 5)
    received = {node.address: 0 for node in nodes}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address:
            received.__setitem__(a, received[a] + 1))
        if node not in (source, outsider):
            node.macedon_join(GROUP)
    simulator.run(until=simulator.now + 30)
    source.macedon_multicast(GROUP, Pkt(0), 1000)
    simulator.run(until=simulator.now + 20)
    assert received[outsider.address] == 0


def test_splitstream_uses_multiple_stripe_trees(overlay_builder):
    simulator, nodes, source, received = setup_session(
        overlay_builder, splitstream_stack(), seed=44)
    splitstream = source.agent("splitstream")
    stripes = splitstream.stripe_groups(GROUP)
    assert len(stripes) == splitstream.num_stripes
    assert len(set(stripes)) == len(stripes)
    for index in range(8):
        source.macedon_multicast(GROUP, Pkt(index), 1000)
    simulator.run(until=simulator.now + 40)
    laggards = [node.address for node in nodes
                if node is not source and received[node.address] < 8]
    assert not laggards
    # The stripe roots are spread over more than one node (load balancing).
    scribe_roots = set()
    for node in nodes:
        for stripe in stripes:
            if node.agent("scribe").is_group_root(stripe):
                scribe_roots.add(node.address)
    assert len(scribe_roots) > 1


def test_splitstream_stripe_assignment_is_deterministic_per_seqno(overlay_builder):
    _, _, nodes = overlay_builder(splitstream_stack(), 6, seed=45, run_for=60.0)
    agent = nodes[0].agent("splitstream")
    assert agent.stripe_for_payload(Pkt(3), 4) == 3 % 4
    assert agent.stripe_for_payload(Pkt(7), 4) == 7 % 4
    assert agent.stripe_for_payload(None, 4) in range(4)
