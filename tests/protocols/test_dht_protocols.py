"""Behavioural tests for the DHT protocols (Chord and Pastry)."""

from __future__ import annotations

import pytest

from repro.eval.metrics import average_correct_route_entries
from repro.network import NetworkEmulator, transit_stub_topology
from repro.protocols import chord_agent, pastry_agent
from repro.runtime import MacedonNode, Simulator

NUM = 25


def _build(agent_classes, num, *, seed, run_for):
    simulator = Simulator(seed=seed)
    emulator = NetworkEmulator(simulator, transit_stub_topology(num, seed=seed))
    nodes = [MacedonNode(simulator, emulator, agent_classes) for _ in range(num)]
    for node in nodes:
        node.macedon_init(nodes[0].address)
    simulator.run(until=run_for)
    return simulator, emulator, nodes


@pytest.fixture(scope="module")
def chord_overlay():
    return _build([chord_agent()], NUM, seed=21, run_for=120.0)


@pytest.fixture(scope="module")
def pastry_overlay():
    return _build([pastry_agent()], NUM, seed=22, run_for=120.0)


def test_chord_all_nodes_join(chord_overlay):
    _, _, nodes = chord_overlay
    assert all(node.lowest_agent.state == "joined" for node in nodes)


def test_chord_successors_form_a_single_ring(chord_overlay):
    _, _, nodes = chord_overlay
    succ_of = {node.address: node.lowest_agent.successor_entry().addr for node in nodes}
    # Following successors from any node visits every node exactly once.
    start = nodes[0].address
    seen = [start]
    current = succ_of[start]
    while current != start and len(seen) <= len(nodes):
        seen.append(current)
        current = succ_of[current]
    assert len(seen) == len(nodes)


def test_chord_successors_are_globally_correct(chord_overlay):
    _, _, nodes = chord_overlay
    ordered = sorted((node.lowest_agent.my_key, node.address) for node in nodes)
    for node in nodes:
        agent = node.lowest_agent
        index = ordered.index((agent.my_key, node.address))
        expected = ordered[(index + 1) % len(ordered)]
        entry = agent.successor_entry()
        assert (entry.key, entry.addr) == expected


def test_chord_fingers_converge(chord_overlay):
    _, _, nodes = chord_overlay
    assert average_correct_route_entries(nodes, "chord") > 28.0


def test_chord_routes_reach_key_owner(chord_overlay):
    simulator, _, nodes = chord_overlay
    ordered = sorted((node.lowest_agent.my_key, node.address) for node in nodes)

    def owner_of(key):
        for node_key, address in ordered:
            if node_key >= key:
                return address
        return ordered[0][1]

    delivered = {}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address: delivered.setdefault(a, 0) or
            delivered.__setitem__(a, delivered.get(a, 0) + 1))
    rng_keys = [7, 123456, 2**31, 2**32 - 5, nodes[3].lowest_agent.my_key]
    for key in rng_keys:
        delivered.clear()
        nodes[10].macedon_route(key, None, 100)
        simulator.run(until=simulator.now + 5)
        assert delivered.get(owner_of(key)), f"key {key} not delivered at owner"


def test_pastry_all_nodes_join_and_know_peers(pastry_overlay):
    _, _, nodes = pastry_overlay
    assert all(node.lowest_agent.state == "joined" for node in nodes)
    assert all(node.lowest_agent.routing_state_size() >= 5 for node in nodes)


def test_pastry_routes_reach_numerically_closest_node(pastry_overlay):
    simulator, _, nodes = pastry_overlay
    space = nodes[0].lowest_agent.key_space

    def closest(key):
        return min(nodes, key=lambda n: min(space.distance(n.lowest_agent.my_key, key),
                                            space.distance(key, n.lowest_agent.my_key)))

    delivered = {}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address:
            delivered.__setitem__(a, delivered.get(a, 0) + 1))
    for key in (99, 2**20 + 17, 2**31 + 3, 2**32 - 100):
        delivered.clear()
        nodes[7].macedon_route(key, None, 100)
        simulator.run(until=simulator.now + 5)
        assert delivered.get(closest(key).address)


def test_pastry_location_cache_populated_and_expiring(pastry_overlay):
    simulator, _, nodes = pastry_overlay
    source = nodes[5]
    target_key = nodes[9].lowest_agent.my_key
    source.lowest_agent.cache_lifetime = 0.0
    source.macedon_route(target_key, None, 100)
    simulator.run(until=simulator.now + 5)
    assert source.lowest_agent.cache_lookup(target_key) == nodes[9].address
    # Expire it with a tiny lifetime.
    source.lowest_agent.cache_lifetime = 0.001
    simulator.run(until=simulator.now + 1)
    assert source.lowest_agent.cache_lookup(target_key) is None


def test_pastry_table_add_ignores_self(pastry_overlay):
    _, _, nodes = pastry_overlay
    agent = nodes[0].lowest_agent
    before = agent.routing_state_size()
    agent.table_add(agent.my_key, agent.my_addr)
    assert agent.routing_state_size() == before
