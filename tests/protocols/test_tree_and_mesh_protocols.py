"""Behavioural tests for the tree/mesh multicast overlays."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.eval.metrics import multicast_tree_depths
from repro.protocols import (
    ammo_agent,
    bullet_stack,
    nice_agent,
    overcast_agent,
    randtree_agent,
)


@dataclass(frozen=True)
class Pkt:
    seqno: int


def multicast_reaches_everyone(nodes, simulator, source, packets=4):
    received = {node.address: 0 for node in nodes}
    for node in nodes:
        node.macedon_register_handlers(
            deliver=lambda p, s, t, a=node.address:
            received.__setitem__(a, received[a] + 1))
    for index in range(packets):
        source.macedon_multicast(1, Pkt(index), 1000)
    simulator.run(until=simulator.now + 40)
    return [node for node in nodes
            if node is not source and received[node.address] < packets]


@pytest.mark.parametrize("maker", [randtree_agent, overcast_agent, ammo_agent])
def test_tree_overlays_form_a_rooted_tree_and_disseminate(maker, overlay_builder):
    simulator, _, nodes = overlay_builder([maker()], 20, seed=31, run_for=120.0)
    protocol = nodes[0].lowest_agent.PROTOCOL
    depths = multicast_tree_depths(nodes, protocol)
    assert depths[nodes[0].address] == 0
    assert all(depth >= 0 for depth in depths.values())
    # Every non-root node has a parent.
    assert all(nodes[i].lowest_agent.parent_address() is not None
               for i in range(1, len(nodes)))
    missing = multicast_reaches_everyone(nodes, simulator, nodes[0])
    assert not missing, f"{protocol}: nodes missing data: {missing}"


def test_randtree_respects_max_children(overlay_builder):
    simulator, _, nodes = overlay_builder([randtree_agent()], 30, seed=32, run_for=120.0)
    limit = nodes[0].lowest_agent.MAX_CHILDREN
    assert all(len(node.lowest_agent.tree_children()) <= limit for node in nodes)


def test_randtree_parent_child_consistency(overlay_builder):
    _, _, nodes = overlay_builder([randtree_agent()], 25, seed=33, run_for=120.0)
    by_addr = {node.address: node for node in nodes}
    for node in nodes[1:]:
        parent = node.lowest_agent.parent_address()
        assert parent in by_addr
        assert node.address in by_addr[parent].lowest_agent.tree_children()


def test_overcast_probing_produces_candidates(overlay_builder):
    simulator, _, nodes = overlay_builder([overcast_agent()], 15, seed=34, run_for=200.0)
    probed = sum(1 for node in nodes if node.lowest_agent.candidates.size() > 0
                 or node.lowest_agent.probes_to_send > 0
                 or node.lowest_agent.count > 0)
    # At least some nodes have been through a probe round.
    timers = sum(node.lowest_agent._timers.get("probe_requester").fire_count
                 for node in nodes)
    assert timers > 0


def test_nice_forms_clusters_and_delivers(overlay_builder):
    simulator, _, nodes = overlay_builder([nice_agent()], 24, seed=35, run_for=150.0)
    leaders = [node for node in nodes if node.lowest_agent.is_leader(0)]
    assert leaders, "no cluster leaders elected"
    max_cluster = nodes[0].lowest_agent.MAX_CLUSTER
    for node in nodes:
        assert len(node.lowest_agent.cluster_members(0)) <= max_cluster + 1
    missing = multicast_reaches_everyone(nodes, simulator, nodes[3])
    assert not missing


def test_nice_rp_knows_all_leaders(overlay_builder):
    _, _, nodes = overlay_builder([nice_agent()], 24, seed=36, run_for=150.0)
    rp = nodes[0].lowest_agent
    layer1 = set(rp.cluster_members(1))
    other_leaders = {node.address for node in nodes[1:] if node.lowest_agent.is_leader(0)}
    # Every non-RP leader registered with the rendezvous point.
    assert other_leaders <= layer1 | {rp.my_addr}


def test_bullet_builds_mesh_and_recovers_from_tree_loss(overlay_builder):
    simulator, emulator, nodes = overlay_builder(bullet_stack(), 20, seed=37,
                                                 run_for=100.0)
    # Mesh peers get assigned by the source.
    simulator.run(until=simulator.now + 30)
    peered = sum(1 for node in nodes if node.agent("bullet").mesh_peers())
    assert peered > len(nodes) / 2
    missing = multicast_reaches_everyone(nodes, simulator, nodes[0], packets=5)
    assert not missing
    # Every receiver recorded the packets it got.
    assert all(len(node.agent("bullet").packets_received()) >= 5
               for node in nodes if node is not nodes[0])


def test_ammo_root_paths_are_cycle_free(overlay_builder):
    _, _, nodes = overlay_builder([ammo_agent()], 20, seed=38, run_for=150.0)
    for node in nodes:
        path = node.lowest_agent.root_path
        assert node.address not in path
        assert len(path) == len(set(path))
