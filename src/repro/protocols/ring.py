"""A hand-written successor-ring DHT (Chord without fingers).

The bundled ``specs/*.mac`` protocol suite is loaded from disk and compiled
by :mod:`repro.codegen`; this module instead *hand-writes* an agent against
the same runtime tables the generator emits (states, typed messages, timers,
``fail_detect`` neighbor sets, transitions).  That makes it self-contained —
usable by the scenario engine's churn benchmarks and the failure-detector
tests even where the spec directory is absent — and doubles as readable
documentation of the Agent runtime contract the generator targets.

The protocol is the classic Chord ring stripped to its correctness core:

* **join** — a joiner asks the bootstrap ``find_succ(my_key)``; the lookup
  walks the ring and the owner's predecessor-to-be replies ``succ_found``;
* **stabilization** — each node periodically polls its successor for the
  successor's predecessor and successor-list (``get_state``/``state_reply``)
  and notifies it (``notify_pred``), the standard ring-repair rule; every
  ``REFRESH_EVERY`` rounds it additionally re-runs its own lookup through
  the bootstrap and adopts the answer if it is a tighter successor — the
  anti-entropy step that re-merges rings separated by a healed partition
  (plain Chord stabilization cannot merge two disjoint rings);
* **failure** — the successor and predecessor live in a ``fail_detect``
  neighbor set, so *f* seconds of silence fires the ``error`` transition,
  which promotes the next live entry of the successor list (or falls back to
  re-finding the ring via the bootstrap);
* **routing** — ``macedon_route(key, payload)`` walks successors until the
  owner (the node whose ``(pred_key, my_key]`` range covers the key)
  delivers the payload to the application.

Lookups are O(N) hops — fine at benchmark scale, and the point of the churn
figure is *success under repair*, not hop count.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.agent import (Agent, StateVarSpec, TransitionContext,
                             TransitionSpec)
from ..runtime.messages import FieldSpec, MessageType
from ..runtime.neighbors import NeighborType
from ..runtime.tracing import TraceLevel

#: Hop budget for ring walks; generously above any benchmark ring size.
MAX_HOPS = 64


class RingDhtAgent(Agent):
    """Successor-ring DHT agent (hand-written, generator-shaped)."""

    PROTOCOL = "ringdht"
    ADDRESSING = "hash"
    TRACE = TraceLevel.OFF
    #: Stabilization rounds between bootstrap-based successor refreshes.
    REFRESH_EVERY = 5
    STATES = ("joining", "stable")
    TRANSPORT_DECLS = (("TCP", "CTRL"),)
    NEIGHBOR_TYPES = {"ringpeer": NeighborType("ringpeer", max_size=8)}
    MESSAGE_TYPES = (
        MessageType("find_succ", (FieldSpec("target", "key"),
                                  FieldSpec("origin", "ipaddr"),
                                  FieldSpec("hops", "int"))),
        MessageType("succ_found", (FieldSpec("succ", "ipaddr"),)),
        MessageType("get_state", ()),
        MessageType("state_reply", (FieldSpec("pred", "ipaddr"),
                                    FieldSpec("s1", "ipaddr"),
                                    FieldSpec("s2", "ipaddr"),
                                    FieldSpec("s3", "ipaddr"))),
        MessageType("notify_pred", ()),
        MessageType("data", (FieldSpec("target", "key"),
                             FieldSpec("hops", "int"))),
        MessageType("ipdata", ()),
    )
    STATE_VARS = (
        StateVarSpec("successor", "var", "ipaddr"),
        StateVarSpec("predecessor", "var", "ipaddr"),
        StateVarSpec("succ_list", "list"),
        StateVarSpec("ring_set", "neighbor_set", "ringpeer", fail_detect=True),
        StateVarSpec("stabilize", "timer", period=1.0),
        StateVarSpec("join_retry", "timer", period=2.0),
    )
    TRANSITIONS = (
        TransitionSpec("api", "init", "any", "t_init"),
        TransitionSpec("api", "route", "stable", "t_route"),
        TransitionSpec("api", "routeIP", "any", "t_route_ip"),
        TransitionSpec("api", "error", "any", "t_error"),
        TransitionSpec("recv", "find_succ", "stable", "t_find_succ"),
        TransitionSpec("recv", "succ_found", "any", "t_succ_found"),
        TransitionSpec("recv", "get_state", "stable", "t_get_state"),
        TransitionSpec("recv", "state_reply", "stable", "t_state_reply"),
        TransitionSpec("recv", "notify_pred", "stable", "t_notify_pred"),
        TransitionSpec("recv", "data", "stable", "t_data"),
        TransitionSpec("recv", "ipdata", "any", "t_ipdata"),
        TransitionSpec("timer", "stabilize", "stable", "t_stabilize"),
        TransitionSpec("timer", "join_retry", "any", "t_join_retry"),
    )

    def __init__(self, node) -> None:
        super().__init__(node)
        self._stabilize_rounds = 0

    # ------------------------------------------------------------------ helpers
    def _key_of(self, address: int) -> int:
        return self.key_space.hash(address)

    def _owns(self, target: int) -> bool:
        """Whether *target* falls in this node's ``(pred_key, my_key]`` range."""
        if self.successor == self.my_addr:
            return True  # Singleton ring owns the whole key space.
        if not self.predecessor:
            return False
        return self.key_space.between(target, self._key_of(self.predecessor),
                                      self.my_key, inclusive_end=True)

    def _monitor(self, address: int) -> None:
        if address and address != self.my_addr and not self.ring_set.query(address):
            if self.ring_set.is_full:
                # Evict an entry that is neither successor nor predecessor.
                for candidate in self.ring_set.addresses():
                    if candidate not in (self.successor, self.predecessor):
                        self.neighbor_remove(self.ring_set, candidate)
                        break
            if not self.ring_set.is_full:
                self.neighbor_add(self.ring_set, address,
                                  key=self._key_of(address))

    def _unmonitor_if_unused(self, address: int) -> None:
        if address and address not in (self.successor, self.predecessor) \
                and self.ring_set.query(address):
            self.neighbor_remove(self.ring_set, address)

    def _set_successor(self, address: int) -> None:
        previous = self.successor
        self.successor = address
        if previous and previous != address:
            self._unmonitor_if_unused(previous)
        self._monitor(address)

    def _set_predecessor(self, address: int) -> None:
        previous = self.predecessor
        self.predecessor = address
        if previous and previous != address:
            self._unmonitor_if_unused(previous)
        self._monitor(address)

    @property
    def succ_key(self) -> int:
        return self._key_of(self.successor) if self.successor else self.my_key

    # -------------------------------------------------------------- transitions
    def t_init(self, ctx: TransitionContext) -> None:
        if self.bootstrap_addr == self.my_addr:
            self._set_successor(self.my_addr)
            self.state_change("stable")
            self.timer_sched("stabilize")
        else:
            self.state_change("joining")
            self.send_msg("find_succ", self.bootstrap_addr,
                          target=self.my_key, origin=self.my_addr,
                          hops=MAX_HOPS)
            self.timer_sched("join_retry")

    def t_join_retry(self, ctx: TransitionContext) -> None:
        """Retry the ring search while joining, or after losing the whole
        successor list (a stable node whose successor collapsed to itself)."""
        needs_ring = (self.state == "joining"
                      or (self.successor == self.my_addr
                          and self.bootstrap_addr != self.my_addr))
        if needs_ring and self.bootstrap_addr is not None:
            self.send_msg("find_succ", self.bootstrap_addr,
                          target=self.my_key, origin=self.my_addr,
                          hops=MAX_HOPS)
            self.timer_sched("join_retry")

    def t_find_succ(self, ctx: TransitionContext) -> None:
        target = ctx.field("target")
        origin = ctx.field("origin")
        if self.successor == self.my_addr or self.key_space.between(
                target, self.my_key, self.succ_key, inclusive_end=True):
            # The owner of *target* is this node's successor (which, on a
            # singleton ring, is this node itself).
            self.send_msg("succ_found", origin, succ=self.successor)
            return
        hops = ctx.field("hops") - 1
        if hops > 0:
            self.send_msg("find_succ", self.successor, target=target,
                          origin=origin, hops=hops)

    def t_succ_found(self, ctx: TransitionContext) -> None:
        succ = ctx.field("succ")
        if self.state == "joining":
            self._set_successor(succ if succ != self.my_addr else self.my_addr)
            self.state_change("stable")
            self.timer_cancel("join_retry")
            self.timer_sched("stabilize")
            if self.successor != self.my_addr:
                self.send_msg("notify_pred", self.successor)
            return
        # Stable: a bootstrap-refresh answer.  Adopt it only if it tightens
        # the successor pointer (strictly between us and the current
        # successor) or reconnects a detached node — this is what re-merges
        # two rings after a partition heals.
        if not succ or succ == self.my_addr:
            return
        if self.successor == self.my_addr or self.key_space.between(
                self._key_of(succ), self.my_key, self.succ_key):
            self._set_successor(succ)
            self.send_msg("notify_pred", self.successor)

    def t_stabilize(self, ctx: TransitionContext) -> None:
        if self.successor == self.my_addr and self.predecessor:
            # Singleton with a known predecessor: close the two-node ring.
            self._set_successor(self.predecessor)
        if self.successor != self.my_addr:
            self.send_msg("get_state", self.successor)
            self.send_msg("notify_pred", self.successor)
        elif self.bootstrap_addr != self.my_addr:
            # Lost every successor: go hunting for the ring again.
            self.timer_sched("join_retry")
        self._stabilize_rounds += 1
        if (self._stabilize_rounds % self.REFRESH_EVERY == 0
                and self.bootstrap_addr not in (None, self.my_addr)):
            self.send_msg("find_succ", self.bootstrap_addr,
                          target=self.my_key, origin=self.my_addr,
                          hops=MAX_HOPS)
        self.timer_sched("stabilize")

    def t_get_state(self, ctx: TransitionContext) -> None:
        chain = [self.successor] + [addr for addr in self.succ_list
                                    if addr != self.successor]
        chain += [0, 0, 0]
        self.send_msg("state_reply", ctx.source, pred=self.predecessor,
                      s1=chain[0], s2=chain[1], s3=chain[2])

    def t_state_reply(self, ctx: TransitionContext) -> None:
        candidate = ctx.field("pred")
        if candidate and candidate != self.my_addr and (
                self.successor == self.my_addr or self.key_space.between(
                    self._key_of(candidate), self.my_key, self.succ_key)):
            # Someone slotted in between us and our successor.
            self._set_successor(candidate)
            self.send_msg("notify_pred", self.successor)
        chain = [self.successor]
        for addr in (ctx.field("s1"), ctx.field("s2"), ctx.field("s3")):
            if addr and addr != self.my_addr and addr not in chain:
                chain.append(addr)
        self.succ_list = chain[:4]

    def t_notify_pred(self, ctx: TransitionContext) -> None:
        candidate = ctx.source
        if candidate is None or candidate == self.my_addr:
            return
        if (not self.predecessor
                or self.key_space.between(self._key_of(candidate),
                                          self._key_of(self.predecessor),
                                          self.my_key)):
            self._set_predecessor(candidate)
        if self.successor == self.my_addr:
            # Singleton bootstrap learning of its first peer.
            self._set_successor(candidate)

    def t_route(self, ctx: TransitionContext) -> None:
        self._route_data(ctx.dest_key, ctx.payload, ctx.payload_size, MAX_HOPS)

    def t_route_ip(self, ctx: TransitionContext) -> None:
        """Direct IP delivery — the MACEDON routeIP data call (one hop)."""
        self.send_msg("ipdata", ctx.dest, payload=ctx.payload,
                      payload_size=ctx.payload_size)

    def t_ipdata(self, ctx: TransitionContext) -> None:
        self.upcall_deliver(ctx.payload, ctx.payload_size, "ipdata")

    def t_data(self, ctx: TransitionContext) -> None:
        self._route_data(ctx.field("target"), ctx.payload, ctx.payload_size,
                         ctx.field("hops"))

    def _route_data(self, target: int, payload, payload_size: int,
                    hops: int) -> None:
        if self._owns(target):
            self.upcall_deliver(payload, payload_size, "data")
            return
        if hops <= 0 or self.successor == self.my_addr:
            return  # Hop budget exhausted or detached from the ring: lost.
        self.send_msg("data", self.successor, target=target, hops=hops - 1,
                      payload=payload, payload_size=payload_size)

    def t_error(self, ctx: TransitionContext) -> None:
        failed = ctx.error_addr
        if self.ring_set.query(failed):
            self.neighbor_remove(self.ring_set, failed)
        self.succ_list = [addr for addr in self.succ_list if addr != failed]
        if failed == self.predecessor:
            self.predecessor = 0
        if failed == self.successor:
            replacement = 0
            for addr in self.succ_list:
                if addr != failed and addr != self.my_addr:
                    replacement = addr
                    break
            if not replacement and self.predecessor:
                replacement = self.predecessor
            self._set_successor(replacement or self.my_addr)
            if self.successor != self.my_addr:
                self.send_msg("notify_pred", self.successor)
            else:
                self.timer_sched("join_retry")

    # ------------------------------------------------------------- inspection
    def ring_view(self) -> dict[str, int]:
        """Successor/predecessor snapshot, for tests and health checks."""
        return {"successor": self.successor, "predecessor": self.predecessor}


def ring_agent() -> type[RingDhtAgent]:
    """Accessor mirroring the registry-backed ``chord_agent()`` style."""
    return RingDhtAgent


def ring_successor_correctness(nodes, protocol: str = "ringdht") -> float:
    """Fraction of live nodes whose successor pointer is globally correct.

    The ring analogue of Figure 10's correct-route-entries metric: with
    global knowledge of the live membership, node *i*'s correct successor is
    the live node whose key follows it clockwise.
    """
    live = [node for node in nodes if getattr(node, "alive", True)
            and node.initialized]
    if not live:
        return 0.0
    key_space = live[0].agent(protocol).key_space
    keyed = sorted((key_space.hash(node.address), node.address)
                   for node in live)
    correct_succ = {}
    for index, (key, address) in enumerate(keyed):
        correct_succ[address] = keyed[(index + 1) % len(keyed)][1]
    hits = sum(1 for node in live
               if node.agent(protocol).successor == correct_succ[node.address])
    return hits / len(live)
