"""The bundled overlay protocol suite.

Each protocol is written in the MACEDON DSL (``specs/*.mac``) and compiled to
an :class:`~repro.runtime.agent.Agent` subclass on first use via
:mod:`repro.codegen`.  This module provides typed accessors so user code does
not need to deal with the registry directly::

    from repro.protocols import chord_agent, scribe_stack

    ChordAgent = chord_agent()
    stack = scribe_stack()              # [PastryAgent, ScribeAgent]
    stack = scribe_stack(base="chord")  # [ChordAgent, ScribeAgent]
"""

from __future__ import annotations

from typing import Optional, Type

from ..codegen.registry import get_registry
from ..runtime.agent import Agent

#: Names of all protocols shipped with the reproduction (Figure 7's x-axis).
BUNDLED_PROTOCOLS = (
    "ammo",
    "bullet",
    "chord",
    "nice",
    "overcast",
    "pastry",
    "randtree",
    "scribe",
    "splitstream",
)


def available_protocols() -> list[str]:
    """Names of the bundled mac specifications found on disk."""
    return get_registry().available()


def spec_lines_of_code() -> dict[str, int]:
    """Lines of MACEDON code per bundled specification (Figure 7)."""
    return get_registry().lines_of_code()


# --------------------------------------------------------------- single agents
def randtree_agent() -> Type[Agent]:
    return get_registry().load_protocol("randtree")


def overcast_agent() -> Type[Agent]:
    return get_registry().load_protocol("overcast")


def chord_agent() -> Type[Agent]:
    return get_registry().load_protocol("chord")


def pastry_agent() -> Type[Agent]:
    return get_registry().load_protocol("pastry")


def nice_agent() -> Type[Agent]:
    return get_registry().load_protocol("nice")


def ammo_agent() -> Type[Agent]:
    return get_registry().load_protocol("ammo")


def scribe_agent(base: Optional[str] = None) -> Type[Agent]:
    return get_registry().load_protocol("scribe", base=base)


def splitstream_agent(base: Optional[str] = None) -> Type[Agent]:
    return get_registry().load_protocol("splitstream", base=base)


def bullet_agent(base: Optional[str] = None) -> Type[Agent]:
    return get_registry().load_protocol("bullet", base=base)


# ---------------------------------------------------------------------- stacks
def scribe_stack(base: str = "pastry") -> list[Type[Agent]]:
    """Scribe layered over *base* (``pastry`` by default, ``chord`` to switch)."""
    return get_registry().load_stack("scribe", base_overrides={"scribe": base})


def splitstream_stack(base: str = "pastry") -> list[Type[Agent]]:
    """SplitStream over Scribe over *base*."""
    return get_registry().load_stack("splitstream",
                                     base_overrides={"scribe": base})


def bullet_stack() -> list[Type[Agent]]:
    """Bullet over RandTree."""
    return get_registry().load_stack("bullet")


def protocol_stack(name: str,
                   base_overrides: Optional[dict[str, str]] = None) -> list[Type[Agent]]:
    """Generic accessor: resolve any bundled protocol's full stack."""
    return get_registry().load_stack(name, base_overrides)


__all__ = [
    "BUNDLED_PROTOCOLS",
    "available_protocols",
    "spec_lines_of_code",
    "randtree_agent",
    "overcast_agent",
    "chord_agent",
    "pastry_agent",
    "nice_agent",
    "ammo_agent",
    "scribe_agent",
    "splitstream_agent",
    "bullet_agent",
    "scribe_stack",
    "splitstream_stack",
    "bullet_stack",
    "protocol_stack",
]
