"""MACEDON code generation: mac specifications → Python agent classes."""

from .generator import (
    CodeGenerator,
    class_name_for,
    generate_source,
    module_name_for,
    normalize_action_code,
    rewrite_action_code,
)
from .primitives import AGENT_PRIMITIVES, CONTEXT_NAMES
from .registry import (
    ProtocolRegistry,
    compile_mac,
    compile_source,
    compile_spec,
    default_specs_dir,
    get_registry,
    load_protocol,
    load_stack,
)

__all__ = [
    "CodeGenerator",
    "class_name_for",
    "generate_source",
    "module_name_for",
    "normalize_action_code",
    "rewrite_action_code",
    "AGENT_PRIMITIVES",
    "CONTEXT_NAMES",
    "ProtocolRegistry",
    "compile_mac",
    "compile_source",
    "compile_spec",
    "default_specs_dir",
    "get_registry",
    "load_protocol",
    "load_stack",
]
