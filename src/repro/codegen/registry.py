"""Compiling and caching generated protocol agents.

The registry ties the pipeline together:

``.mac`` text → :func:`repro.dsl.parser.parse_mac` → validation →
:func:`repro.codegen.generator.generate_source` → :func:`compile_source` →
an importable :class:`~repro.runtime.agent.Agent` subclass.

It also resolves protocol *stacks*: following the ``uses`` header of each
specification (with optional overrides, which is how "switch Scribe from
Pastry to Chord by changing a single line" is exercised programmatically)
down to the lowest layer, returning the agent classes lowest-first, ready to
hand to :class:`~repro.runtime.node.MacedonNode`.
"""

from __future__ import annotations

import difflib
import sys
import types
from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Optional, Sequence, Type

from ..dsl.ast import ProtocolSpec
from ..dsl.errors import CodegenError, MacError
from ..dsl.parser import parse_mac
from ..dsl.validator import validate
from ..runtime.agent import Agent
from .generator import class_name_for, generate_source, module_name_for


def default_specs_dir() -> Path:
    """Directory holding the bundled ``.mac`` specifications."""
    return Path(__file__).resolve().parent.parent / "protocols" / "specs"


def compile_source(source: str, module_name: str) -> Type[Agent]:
    """Execute generated *source* as a module and return its agent class."""
    module = types.ModuleType(module_name)
    module.__dict__["__file__"] = f"<macedon-generated:{module_name}>"
    try:
        code = compile(source, module.__dict__["__file__"], "exec")
        exec(code, module.__dict__)  # noqa: S102 - executing our own generated code
    except SyntaxError as exc:
        raise CodegenError(f"generated code does not compile: {exc}") from exc
    agent_class = module.__dict__.get("AGENT_CLASS")
    if agent_class is None or not issubclass(agent_class, Agent):
        raise CodegenError(f"generated module {module_name!r} did not define AGENT_CLASS")
    # Register so tracebacks and pickling can find the module.
    sys.modules[module_name] = module
    return agent_class


def compile_spec(spec: ProtocolSpec, *, validate_spec: bool = True,
                 module_name: Optional[str] = None) -> Type[Agent]:
    """Validate, generate, and compile a parsed specification.

    ``module_name`` overrides the ``sys.modules`` registration name; the
    registry uses this to keep re-based variants from clobbering the bundled
    variant's module entry.
    """
    if validate_spec:
        validate(spec)
    source = generate_source(spec)
    return compile_source(source, module_name or module_name_for(spec.name))


def compile_mac(text: str, filename: Optional[str] = None) -> Type[Agent]:
    """One-shot: mac source text → agent class."""
    spec = parse_mac(text, filename)
    return compile_spec(spec)


class ProtocolRegistry:
    """Loads, generates, and caches the bundled protocol suite."""

    def __init__(self, specs_dir: Optional[Path] = None) -> None:
        self.specs_dir = Path(specs_dir) if specs_dir is not None else default_specs_dir()
        self._spec_cache: dict[str, ProtocolSpec] = {}
        self._class_cache: dict[tuple[str, Optional[str]], Type[Agent]] = {}

    # ------------------------------------------------------------------- specs
    def available(self) -> list[str]:
        """Names of all bundled specifications."""
        return sorted(path.stem for path in self.specs_dir.glob("*.mac"))

    def spec_path(self, name: str) -> Path:
        path = self.specs_dir / f"{name}.mac"
        if not path.exists():
            raise MacError(self._missing_spec_message(name))
        return path

    def _missing_spec_message(self, name: str) -> str:
        """A diagnosis for a missing spec: where we looked, the closest match,
        and how to register a new one."""
        lines = [f"no specification named {name!r}",
                 f"specs directory: {self.specs_dir}"]
        if not self.specs_dir.is_dir():
            lines.append("the specs directory does not exist")
        else:
            available = self.available()
            if available:
                close = difflib.get_close_matches(name, available, n=3)
                if close:
                    lines.append(f"did you mean: {', '.join(close)}?")
                lines.append(f"available specs: {', '.join(available)}")
            else:
                lines.append("the specs directory contains no .mac files")
        lines.append(
            f"to register a new protocol, save its specification as "
            f"{self.specs_dir / (name + '.mac')} (or construct "
            f"ProtocolRegistry(specs_dir=...) pointing at your own directory)"
        )
        return "; ".join(lines)

    def load_spec(self, name: str) -> ProtocolSpec:
        """Parse and validate the named bundled specification (cached)."""
        cached = self._spec_cache.get(name)
        if cached is None:
            path = self.spec_path(name)
            cached = parse_mac(path.read_text(encoding="utf-8"), filename=str(path))
            validate(cached)
            self._spec_cache[name] = cached
        return cached

    # ----------------------------------------------------------------- classes
    def load_protocol(self, name: str, *, base: Optional[str] = None) -> Type[Agent]:
        """Agent class for the named protocol, optionally re-layered over *base*.

        Passing ``base`` overrides the specification's ``uses`` header — the
        paper's single-line change that moves Scribe from Pastry to Chord.
        """
        cache_key = (name, base)
        cached = self._class_cache.get(cache_key)
        if cached is not None:
            return cached
        spec = self.load_spec(name)
        if base is not None and base != spec.base:
            spec = _respecify_base(spec, base)
        # Re-based variants compile under their own module name so they never
        # poison the unoverridden variant's sys.modules registration (or its
        # cached class, which keeps pointing at its own module).
        agent_class = compile_spec(spec, validate_spec=False,
                                   module_name=module_name_for(name, base))
        if base is not None:
            # Distinguish re-based variants so both can coexist in one process.
            agent_class = type(f"{class_name_for(name)}Over{base.capitalize()}",
                               (agent_class,), {"BASE_PROTOCOL": base})
        self._class_cache[cache_key] = agent_class
        return agent_class

    def load_stack(self, name: str,
                   base_overrides: Optional[dict[str, str]] = None) -> list[Type[Agent]]:
        """Resolve the full layering chain of *name*, lowest layer first.

        ``base_overrides`` maps protocol name → replacement base protocol,
        applied while following the ``uses`` chain (e.g. ``{"scribe":
        "chord"}`` builds SplitStream/Scribe/Chord instead of
        SplitStream/Scribe/Pastry).
        """
        base_overrides = base_overrides or {}
        chain: list[Type[Agent]] = []
        seen: set[str] = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise MacError(f"layering cycle detected at protocol {current!r}")
            seen.add(current)
            override = base_overrides.get(current)
            spec = self.load_spec(current)
            effective_base = override if override is not None else spec.base
            agent_class = self.load_protocol(current, base=override)
            chain.append(agent_class)
            current = effective_base
        chain.reverse()
        return chain

    # ------------------------------------------------------------------ output
    def generated_source(self, name: str, *, base: Optional[str] = None) -> str:
        """The generated Python source for the named protocol."""
        spec = self.load_spec(name)
        if base is not None and base != spec.base:
            spec = _respecify_base(spec, base)
        return generate_source(spec)

    def write_generated(self, name: str, directory: Path,
                        *, base: Optional[str] = None) -> Path:
        """Write the generated module to *directory* and return its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}_generated.py"
        path.write_text(self.generated_source(name, base=base), encoding="utf-8")
        return path

    def lines_of_code(self) -> dict[str, int]:
        """LOC of every bundled specification (the Figure-7 quantity)."""
        return {name: self.load_spec(name).lines_of_code() for name in self.available()}


def _respecify_base(spec: ProtocolSpec, base: str) -> ProtocolSpec:
    """A copy of *spec* with its ``uses`` header replaced."""
    clone = ProtocolSpec(
        name=spec.name, base=base, addressing=spec.addressing, trace=spec.trace,
        constants=list(spec.constants), states=list(spec.states),
        neighbor_types=list(spec.neighbor_types), transports=list(spec.transports),
        messages=list(spec.messages), state_vars=list(spec.state_vars),
        transitions=list(spec.transitions), routines=list(spec.routines),
        source_file=spec.source_file, source_text=spec.source_text,
    )
    return clone


#: Process-wide registry over the bundled specifications.
_default_registry: Optional[ProtocolRegistry] = None


def get_registry() -> ProtocolRegistry:
    """The shared registry over the bundled specification directory."""
    global _default_registry
    if _default_registry is None:
        _default_registry = ProtocolRegistry()
    return _default_registry


def load_protocol(name: str, *, base: Optional[str] = None) -> Type[Agent]:
    """Shortcut for :meth:`ProtocolRegistry.load_protocol` on the shared registry."""
    return get_registry().load_protocol(name, base=base)


def load_stack(name: str,
               base_overrides: Optional[dict[str, str]] = None) -> list[Type[Agent]]:
    """Shortcut for :meth:`ProtocolRegistry.load_stack` on the shared registry."""
    return get_registry().load_stack(name, base_overrides)
