"""Name tables used when translating transition bodies.

A transition body in a mac file is written against the MACEDON action library
— bare calls such as ``neighbor_add(papa, source)`` or ``state_change(joined)``
— plus the protocol's own state variables and constants, and a small set of
event-context names (``source``, ``msg``, ``dest_key``, …).  The code
generator rewrites each of these name classes onto the runtime objects that
implement them:

* **agent primitives and declared state** become ``self.<name>`` (they are
  methods/attributes of :class:`repro.runtime.agent.Agent` or of the generated
  subclass);
* **event-context names** become ``__ctx.<name>`` (attributes of the
  :class:`repro.runtime.agent.TransitionContext` passed to every transition).

Anything else — locals, builtins, helper routines the user prefixed with
``self.`` explicitly — is left untouched.
"""

from __future__ import annotations

#: Names rewritten to ``self.<name>``: the MACEDON action library plus
#: runtime attributes that transitions commonly read.
AGENT_PRIMITIVES: frozenset[str] = frozenset({
    # FSM / identity
    "state_change", "state", "my_addr", "my_key", "is_bootstrap",
    "bootstrap_addr", "bootstrap_key", "key_space", "now", "random",
    "random_int", "hash_of",
    # neighbor management
    "neighbor_add", "neighbor_remove", "neighbor_clear", "neighbor_size",
    "neighbor_query", "neighbor_entry", "neighbor_random", "neighbor_addresses",
    # timer subsystem
    "timer_sched", "timer_resched", "timer_cancel",
    # message transmission
    "send_msg", "route_msg", "routeip_msg", "wrap_msg",
    # downcalls into the layer below
    "downcall_route", "downcall_routeip", "downcall_multicast",
    "downcall_anycast", "downcall_collect", "downcall_create_group",
    "downcall_join", "downcall_leave", "downcall_ext",
    # upcalls into the layer above / application
    "upcall_deliver", "upcall_forward", "upcall_notify", "upcall_ext",
    # tracing / locking / plumbing
    "trace", "debug", "lock", "node", "simulator", "lower", "upper",
})

#: Names rewritten to ``__ctx.<name>``: the event context of the transition.
CONTEXT_NAMES: frozenset[str] = frozenset({
    "api", "source", "source_key", "msg", "dest", "dest_key", "group",
    "payload", "payload_size", "priority", "bootstrap", "next_hop",
    "next_hop_key", "quash", "error_addr", "neighbors", "nbr_type", "op",
    "arg", "timer_name", "result", "field",
})

#: Sanity guard: a name must not be claimed by both tables.
assert not (AGENT_PRIMITIVES & CONTEXT_NAMES), "primitive/context name collision"
