"""The MACEDON code generator: mac AST → Python agent source.

The paper's toolchain translates a specification into C++ that links against
the shared runtime libraries; here the target is a Python module defining one
subclass of :class:`repro.runtime.agent.Agent`.  The output is genuine source
text — it can be written to disk, inspected, diffed, and imported — rather
than an interpreter over the AST, preserving the paper's "generate code, then
run it everywhere" workflow.

Transition bodies are Python (the embedded action language), written against
the MACEDON primitive library.  :func:`rewrite_action_code` retargets bare
primitive and state-variable names onto ``self`` and event-context names onto
the transition's ``__ctx`` argument using token-level rewriting, so strings
and comments are never touched and the emitted code keeps the author's
formatting.
"""

from __future__ import annotations

import io
import keyword
import re
import textwrap
import tokenize
from dataclasses import dataclass
from typing import Iterable, Optional

from ..dsl.ast import ProtocolSpec, TransitionDecl
from ..dsl.errors import CodegenError
from .primitives import AGENT_PRIMITIVES, CONTEXT_NAMES

_ROUTINE_DEF_RE = re.compile(r"^\s*def\s+([A-Za-z_][A-Za-z_0-9]*)\s*\(", re.MULTILINE)


# --------------------------------------------------------------------- helpers
def class_name_for(protocol_name: str) -> str:
    """Python class name for a protocol, e.g. ``split_stream`` → ``SplitStreamAgent``."""
    parts = re.split(r"[_\-]+", protocol_name)
    return "".join(part.capitalize() for part in parts if part) + "Agent"


def module_name_for(protocol_name: str, base: Optional[str] = None) -> str:
    """Synthetic module name under which generated code is registered.

    Re-based variants (``base`` given) get their own module name so loading
    Scribe-over-Chord never clobbers the ``sys.modules`` registration of the
    bundled Scribe-over-Pastry module (both can pickle/traceback correctly
    in one process).
    """
    if base:
        return f"repro._generated.{protocol_name}__over_{base}"
    return f"repro._generated.{protocol_name}"


@dataclass
class _Replacement:
    row: int          # 1-based line number within the body
    col_start: int
    col_end: int
    text: str


def rewrite_action_code(code: str, self_names: Iterable[str],
                        ctx_names: Iterable[str] = CONTEXT_NAMES,
                        *, context: str = "") -> str:
    """Rewrite a transition/routine body onto runtime objects.

    ``self_names`` are rewritten to ``self.<name>``; ``ctx_names`` to
    ``__ctx.<name>``.  Names used as attribute accesses (``x.delay``) or as
    keyword arguments (``f(response=1)``) are left alone.
    """
    body = normalize_action_code(code)
    self_set = frozenset(self_names)
    ctx_set = frozenset(ctx_names)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(body).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        raise CodegenError(f"cannot tokenize action code ({context}): {exc}") from exc

    replacements: list[_Replacement] = []
    significant: list[tokenize.TokenInfo] = [
        token for token in tokens
        if token.type not in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                              tokenize.DEDENT, tokenize.COMMENT,
                              tokenize.ENCODING, tokenize.ENDMARKER)
    ]
    for index, token in enumerate(significant):
        if token.type != tokenize.NAME:
            continue
        name = token.string
        if keyword.iskeyword(name):
            continue
        if name not in self_set and name not in ctx_set:
            continue
        previous = significant[index - 1] if index > 0 else None
        nxt = significant[index + 1] if index + 1 < len(significant) else None
        # Attribute access: obj.name — leave alone.
        if previous is not None and previous.type == tokenize.OP and previous.string == ".":
            continue
        # Keyword argument: f(name=value) — leave alone.
        if (nxt is not None and nxt.type == tokenize.OP and nxt.string == "="
                and previous is not None and previous.type == tokenize.OP
                and previous.string in "(,"):
            continue
        prefix = "self." if name in self_set else "__ctx."
        replacements.append(_Replacement(row=token.start[0], col_start=token.start[1],
                                         col_end=token.end[1], text=f"{prefix}{name}"))

    if not replacements:
        return body
    lines = body.splitlines()
    # Apply right-to-left within each line so earlier columns stay valid.
    replacements.sort(key=lambda item: (item.row, item.col_start), reverse=True)
    for replacement in replacements:
        line = lines[replacement.row - 1]
        lines[replacement.row - 1] = (
            line[:replacement.col_start] + replacement.text + line[replacement.col_end:]
        )
    return "\n".join(lines)


def normalize_action_code(code: str) -> str:
    """Dedent and trim an embedded code block; empty blocks become ``pass``."""
    stripped = code.strip("\n")
    if not stripped.strip():
        return "pass"
    return textwrap.dedent(stripped).strip("\n")


def _indent(code: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else "" for line in code.splitlines())


def routine_method_names(spec: ProtocolSpec) -> list[str]:
    """Names of helper methods defined in the spec's routines blocks."""
    names: list[str] = []
    for routine in spec.routines:
        names.extend(_ROUTINE_DEF_RE.findall(routine.code))
    return names


# ---------------------------------------------------------------- generation
class CodeGenerator:
    """Generates a Python module from a validated :class:`ProtocolSpec`."""

    def __init__(self, spec: ProtocolSpec) -> None:
        self.spec = spec
        self.constants = spec.constant_map()

    # ------------------------------------------------------------------ naming
    def _transition_method_name(self, index: int, transition: TransitionDecl) -> str:
        safe = re.sub(r"[^A-Za-z_0-9]", "_", transition.name)
        return f"_t{index:02d}_{transition.kind}_{safe}"

    def _self_names(self) -> frozenset[str]:
        names = set(AGENT_PRIMITIVES)
        names.update(self.constants)
        names.update(self.spec.state_var_names())
        names.update(routine_method_names(self.spec))
        return frozenset(names)

    # ---------------------------------------------------------------- sections
    def generate(self) -> str:
        """Return the complete Python source of the generated module."""
        spec = self.spec
        class_name = class_name_for(spec.name)
        parts: list[str] = []
        parts.append(self._header())
        parts.append(self._imports())
        parts.append(f"class {class_name}(Agent):")
        parts.append(f'    """MACEDON agent generated from {spec.name}.mac."""\n')
        parts.append(self._class_attributes())
        parts.append(self._routines())
        parts.append(self._transition_methods())
        parts.append(f'\n\nAGENT_CLASS = {class_name}\n')
        source = "\n".join(part for part in parts if part)
        return source

    def _header(self) -> str:
        origin = self.spec.source_file or f"{self.spec.name}.mac"
        return (
            f'"""Generated by the MACEDON code generator from {origin}.\n\n'
            f"Do not edit by hand: regenerate from the specification instead.\n"
            f'"""\n'
        )

    def _imports(self) -> str:
        return (
            "from repro.runtime.agent import (\n"
            "    Agent,\n"
            "    StateVarSpec,\n"
            "    TransitionSpec,\n"
            "    NBR_TYPE_PARENT,\n"
            "    NBR_TYPE_CHILDREN,\n"
            "    NBR_TYPE_SIBLINGS,\n"
            "    NBR_TYPE_PEERS,\n"
            ")\n"
            "from repro.runtime.keys import KeySpace\n"
            "from repro.runtime.messages import FieldSpec, MessageType, WrappedMessage\n"
            "from repro.runtime.neighbors import NeighborFieldSpec, NeighborType\n"
            "from repro.runtime.tracing import TraceLevel\n"
            "\n"
        )

    def _class_attributes(self) -> str:
        spec = self.spec
        lines: list[str] = []
        lines.append(f"    PROTOCOL = {spec.name!r}")
        lines.append(f"    BASE_PROTOCOL = {spec.base!r}")
        lines.append(f"    ADDRESSING = {spec.addressing!r}")
        lines.append(f"    TRACE = TraceLevel.{spec.trace.upper()}")
        lines.append(f"    CONSTANTS = {self.constants!r}")
        lines.append(f"    STATES = {tuple(spec.states)!r}")
        lines.append(self._neighbor_types_attr())
        lines.append(self._transports_attr())
        lines.append(self._messages_attr())
        lines.append(self._state_vars_attr())
        lines.append(self._transitions_attr())
        lines.append(self._transition_index_attr())
        lines.append("    KEY_SPACE = KeySpace()")
        lines.append("")
        return "\n".join(lines)

    def _neighbor_types_attr(self) -> str:
        if not self.spec.neighbor_types:
            return "    NEIGHBOR_TYPES = {}"
        entries = []
        for decl in self.spec.neighbor_types:
            max_size = decl.max_size
            if isinstance(max_size, str):
                max_size = self.constants.get(max_size)
                if not isinstance(max_size, int):
                    raise CodegenError(
                        f"neighbor type {decl.name!r}: max size constant does not "
                        f"resolve to an integer", filename=self.spec.source_file,
                        line=decl.line)
            field_parts = []
            for field in decl.fields:
                type_name = "list" if field.is_list else field.type_name
                field_parts.append(f"NeighborFieldSpec({field.name!r}, {type_name!r})")
            fields = ", ".join(field_parts)
            field_tuple = f"({fields},)" if fields else "()"
            entries.append(
                f"        {decl.name!r}: NeighborType({decl.name!r}, {max_size}, "
                f"{field_tuple}),"
            )
        return "    NEIGHBOR_TYPES = {\n" + "\n".join(entries) + "\n    }"

    def _transports_attr(self) -> str:
        if not self.spec.transports:
            return "    TRANSPORT_DECLS = ()"
        entries = ", ".join(f"({decl.kind!r}, {decl.name!r})"
                            for decl in self.spec.transports)
        return f"    TRANSPORT_DECLS = ({entries},)"

    def _messages_attr(self) -> str:
        if not self.spec.messages:
            return "    MESSAGE_TYPES = ()"
        entries = []
        for message in self.spec.messages:
            fields = ", ".join(
                f"FieldSpec({field.name!r}, {field.type_name!r}, "
                f"is_list={field.is_list!r})"
                for field in message.fields
            )
            field_tuple = f"({fields},)" if fields else "()"
            entries.append(
                f"        MessageType({message.name!r}, {field_tuple}, "
                f"{message.transport!r}),"
            )
        return "    MESSAGE_TYPES = (\n" + "\n".join(entries) + "\n    )"

    def _state_vars_attr(self) -> str:
        if not self.spec.state_vars:
            return "    STATE_VARS = ()"
        entries = []
        for var in self.spec.state_vars:
            entries.append(
                "        StateVarSpec(name={name!r}, kind={kind!r}, "
                "type_name={type_name!r}, default={default!r}, "
                "fail_detect={fail_detect!r}, period={period!r}),".format(
                    name=var.name, kind=var.kind, type_name=var.type_name,
                    default=var.default, fail_detect=var.fail_detect,
                    period=var.period)
            )
        return "    STATE_VARS = (\n" + "\n".join(entries) + "\n    )"

    def _transitions_attr(self) -> str:
        if not self.spec.transitions:
            return "    TRANSITIONS = ()"
        entries = []
        for index, transition in enumerate(self.spec.transitions):
            method = self._transition_method_name(index, transition)
            entries.append(
                f"        TransitionSpec(kind={transition.kind!r}, "
                f"name={transition.name!r}, state_expr={transition.state_expr!r}, "
                f"method={method!r}, locking={transition.locking!r}),"
            )
        return "    TRANSITIONS = (\n" + "\n".join(entries) + "\n    )"

    def _transition_index_attr(self) -> str:
        """Emit the dispatch table: (kind, event name) -> transition positions.

        The runtime binds each position's method once per agent instance and
        dispatches deliveries/timer fires/API calls with a single dict lookup
        instead of a per-event ``getattr``/string scan over every transition
        (see ``Agent._compile_transitions``).  Buckets keep declaration order,
        so state-expression tie-breaking is unchanged.
        """
        if not self.spec.transitions:
            return "    TRANSITION_INDEX = {}"
        index: dict[tuple[str, str], list[int]] = {}
        for position, transition in enumerate(self.spec.transitions):
            index.setdefault((transition.kind, transition.name), []).append(position)
        entries = [
            f"        ({kind!r}, {name!r}): {tuple(positions)!r},"
            for (kind, name), positions in index.items()
        ]
        return "    TRANSITION_INDEX = {\n" + "\n".join(entries) + "\n    }"

    def _routines(self) -> str:
        if not self.spec.routines:
            return ""
        blocks = []
        for routine in self.spec.routines:
            code = normalize_action_code(routine.code)
            blocks.append(_indent(code, 4))
        return "\n    # ---- user routines ----\n" + "\n\n".join(blocks) + "\n"

    def _transition_methods(self) -> str:
        self_names = self._self_names()
        blocks = []
        for index, transition in enumerate(self.spec.transitions):
            method = self._transition_method_name(index, transition)
            context = (f"{self.spec.name}.mac line {transition.line}: "
                       f"{transition.state_expr} {transition.kind} {transition.name}")
            body = rewrite_action_code(transition.code, self_names, context=context)
            docstring = (f'"""{transition.state_expr} {transition.kind} '
                         f'{transition.name}  [locking {transition.locking}] '
                         f'(line {transition.line})."""')
            blocks.append(
                f"    def {method}(self, __ctx):\n"
                f"        {docstring}\n"
                + _indent(body, 8)
            )
        return "\n\n".join(blocks)


def generate_source(spec: ProtocolSpec) -> str:
    """Convenience wrapper: generate Python source for a validated spec."""
    return CodeGenerator(spec).generate()
