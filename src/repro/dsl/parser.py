"""Recursive-descent parser for mac files (the Figure-4 grammar)."""

from __future__ import annotations

from typing import Optional, Union

from .ast import (
    ConstantDecl,
    FieldDecl,
    MessageDecl,
    NeighborTypeDecl,
    ProtocolSpec,
    RoutineDecl,
    StateVarDecl,
    TransitionDecl,
    TransportDecl,
)
from .errors import MacSyntaxError
from .lexer import EOF, IDENT, NUMBER, PUNCT, STRING, Lexer, Token

#: Scalar state-variable / field types understood by the runtime size model.
SCALAR_TYPES = {"int", "long", "double", "float", "bool", "key", "ipaddr", "string"}
#: Container state-variable kinds for protocol bookkeeping.
CONTAINER_KINDS = {"map", "list", "set"}
#: Transport service classes.
TRANSPORT_KINDS = {"TCP", "UDP", "SWP"}
#: Event keywords that terminate a transition's state expression.
EVENT_KEYWORDS = {"API", "api", "timer", "recv", "forward"}
#: Section keywords.
SECTION_KEYWORDS = {
    "constants", "states", "neighbor_types", "transports", "messages",
    "state_variables", "auxiliary", "transitions", "routines",
}
TRACE_LEVELS = {"off", "low", "med", "high"}


def parse_mac(text: str, filename: Optional[str] = None) -> ProtocolSpec:
    """Parse mac source *text* into a :class:`ProtocolSpec`."""
    return _Parser(text, filename).parse()


def parse_mac_file(path) -> ProtocolSpec:
    """Parse a mac file from disk."""
    from pathlib import Path

    path = Path(path)
    return parse_mac(path.read_text(encoding="utf-8"), filename=str(path))


class _Parser:
    def __init__(self, text: str, filename: Optional[str]) -> None:
        self.lexer = Lexer(text, filename)
        self.filename = filename
        self.text = text

    def _error(self, message: str, line: Optional[int] = None) -> MacSyntaxError:
        return MacSyntaxError(message, filename=self.filename,
                              line=line if line is not None else self.lexer.line)

    # --------------------------------------------------------------- top level
    def parse(self) -> ProtocolSpec:
        spec = self._parse_headers()
        spec.source_file = self.filename
        spec.source_text = self.text
        while not self.lexer.at_eof():
            token = self.lexer.next()
            if token.kind != IDENT:
                raise self._error(f"expected a section keyword, found {token.value!r}",
                                  token.line)
            section = token.value
            if section == "constants":
                self._parse_constants(spec)
            elif section == "states":
                self._parse_states(spec)
            elif section == "neighbor_types":
                self._parse_neighbor_types(spec)
            elif section == "transports":
                self._parse_transports(spec)
            elif section == "messages":
                self._parse_messages(spec)
            elif section in ("state_variables",):
                self._parse_state_vars(spec)
            elif section == "auxiliary":
                # The grammar spells this section "auxiliary data { ... }".
                self.lexer.expect_ident("data")
                self._parse_state_vars(spec)
            elif section == "transitions":
                self._parse_transitions(spec)
            elif section == "routines":
                self._parse_routines(spec)
            else:
                raise self._error(f"unknown section {section!r}", token.line)
        return spec

    # ----------------------------------------------------------------- headers
    def _parse_headers(self) -> ProtocolSpec:
        self.lexer.expect_ident("protocol")
        name = self.lexer.expect_ident().value
        base: Optional[str] = None
        if self.lexer.accept_ident("uses"):
            base = self.lexer.expect_ident().value
        spec = ProtocolSpec(name=name, base=base)

        # Optional addressing and tracing headers, in either order.
        while True:
            token = self.lexer.peek()
            if token.kind != IDENT:
                break
            if token.value == "addressing":
                self.lexer.next()
                mode = self.lexer.expect_ident().value
                if mode not in ("ip", "hash"):
                    raise self._error(f"addressing must be 'ip' or 'hash', got {mode!r}",
                                      token.line)
                spec.addressing = mode
            elif token.value.startswith("trace_") or token.value == "trace":
                self.lexer.next()
                if token.value == "trace" or token.value == "trace_":
                    level = self.lexer.expect_ident().value
                else:
                    level = token.value[len("trace_"):]
                if level not in TRACE_LEVELS:
                    raise self._error(f"unknown trace level {level!r}", token.line)
                spec.trace = level
            else:
                break
        return spec

    # ---------------------------------------------------------------- sections
    def _parse_constants(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            name_token = self.lexer.expect_ident()
            self.lexer.expect_punct("=")
            value = self._parse_literal()
            self.lexer.expect_punct(";")
            spec.constants.append(ConstantDecl(name=name_token.value, value=value,
                                               line=name_token.line))

    def _parse_literal(self) -> Union[int, float, str]:
        token = self.lexer.next()
        if token.kind == NUMBER:
            return _to_number(token.value)
        if token.kind == STRING:
            return token.value
        if token.kind == IDENT and token.value in ("true", "false"):
            return token.value == "true"
        raise self._error(f"expected a literal value, found {token.value!r}", token.line)

    def _parse_states(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            token = self.lexer.expect_ident()
            self.lexer.expect_punct(";")
            spec.states.append(token.value)

    def _parse_neighbor_types(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            name_token = self.lexer.expect_ident()
            size_token = self.lexer.next()
            if size_token.kind == NUMBER:
                max_size: Union[int, str] = int(float(size_token.value))
            elif size_token.kind == IDENT:
                max_size = size_token.value
            else:
                raise self._error("expected neighbor set maximum size", size_token.line)
            fields = self._parse_field_block()
            spec.neighbor_types.append(NeighborTypeDecl(
                name=name_token.value, max_size=max_size, fields=tuple(fields),
                line=name_token.line))

    def _parse_field_block(self) -> list[FieldDecl]:
        self.lexer.expect_punct("{")
        fields: list[FieldDecl] = []
        while not self.lexer.accept_punct("}"):
            type_token = self.lexer.expect_ident()
            is_list = False
            name_token = self.lexer.next()
            if name_token.kind == IDENT and name_token.value == "list":
                is_list = True
                name_token = self.lexer.next()
            if name_token.kind != IDENT:
                raise self._error("expected field name", name_token.line)
            self.lexer.expect_punct(";")
            fields.append(FieldDecl(type_name=type_token.value, name=name_token.value,
                                    is_list=is_list, line=type_token.line))
        return fields

    def _parse_transports(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            kind_token = self.lexer.expect_ident()
            if kind_token.value.upper() not in TRANSPORT_KINDS:
                raise self._error(
                    f"transport kind must be one of {sorted(TRANSPORT_KINDS)}, "
                    f"got {kind_token.value!r}", kind_token.line)
            name_token = self.lexer.expect_ident()
            self.lexer.expect_punct(";")
            spec.transports.append(TransportDecl(kind=kind_token.value.upper(),
                                                 name=name_token.value,
                                                 line=kind_token.line))

    def _parse_messages(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            first = self.lexer.expect_ident()
            transport: Optional[str] = None
            if self.lexer.peek().kind == IDENT:
                transport = first.value
                name_token = self.lexer.expect_ident()
            else:
                name_token = first
            fields = self._parse_field_block()
            spec.messages.append(MessageDecl(name=name_token.value,
                                             fields=tuple(fields),
                                             transport=transport,
                                             line=first.line))

    def _parse_state_vars(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while not self.lexer.accept_punct("}"):
            line = self.lexer.peek().line
            fail_detect = self.lexer.accept_ident("fail_detect")
            type_token = self.lexer.expect_ident()
            type_name = type_token.value

            if type_name == "timer":
                name = self.lexer.expect_ident().value
                period: Optional[float] = None
                if self.lexer.peek().kind == NUMBER:
                    period = float(self.lexer.next().value)
                self.lexer.expect_punct(";")
                spec.state_vars.append(StateVarDecl(kind="timer", name=name,
                                                    period=period, line=line))
                continue

            if type_name in CONTAINER_KINDS:
                name = self.lexer.expect_ident().value
                self.lexer.expect_punct(";")
                spec.state_vars.append(StateVarDecl(kind=type_name, name=name, line=line))
                continue

            name = self.lexer.expect_ident().value
            default = None
            if self.lexer.accept_punct("="):
                default = self._parse_literal()
            self.lexer.expect_punct(";")
            if type_name in SCALAR_TYPES:
                spec.state_vars.append(StateVarDecl(kind="var", name=name,
                                                    type_name=type_name,
                                                    default=default, line=line))
            else:
                # A neighbor-set instance of a declared neighbor type.
                spec.state_vars.append(StateVarDecl(kind="neighbor_set", name=name,
                                                    type_name=type_name,
                                                    fail_detect=fail_detect, line=line))
                continue
            if fail_detect:
                raise self._error("fail_detect only applies to neighbor sets", line)

    def _parse_transitions(self, spec: ProtocolSpec) -> None:
        self.lexer.expect_punct("{")
        while True:
            if self.lexer.accept_punct("}"):
                break
            if self.lexer.at_eof():
                raise self._error("unterminated transitions block")
            spec.transitions.append(self._parse_one_transition())

    def _parse_one_transition(self) -> TransitionDecl:
        line = self.lexer.peek().line
        state_expr = self._parse_state_expression()
        keyword_token = self.lexer.expect_ident()
        keyword = keyword_token.value
        if keyword in ("API", "api"):
            kind = "api"
            name = self.lexer.expect_ident().value
        elif keyword == "timer":
            kind = "timer"
            name = self.lexer.expect_ident().value
        elif keyword in ("recv", "forward"):
            kind = keyword
            name = self.lexer.expect_ident().value
        else:
            raise self._error(
                f"expected API, timer, recv, or forward; found {keyword!r}",
                keyword_token.line)
        locking = "write"
        if self.lexer.accept_punct("["):
            locking = self._parse_transition_options()
        code, _ = self.lexer.read_raw_block()
        return TransitionDecl(state_expr=state_expr, kind=kind, name=name,
                              code=code, locking=locking, line=line)

    def _parse_state_expression(self) -> str:
        parts: list[str] = []
        while True:
            token = self.lexer.peek()
            if token.kind == IDENT and token.value in EVENT_KEYWORDS:
                break
            if token.kind == EOF:
                raise self._error("unterminated transition declaration")
            if token.kind == IDENT:
                parts.append(token.value)
            elif token.kind == PUNCT and token.value in "()|!":
                parts.append(token.value)
            else:
                raise self._error(
                    f"unexpected {token.value!r} in transition state expression",
                    token.line)
            self.lexer.next()
        if not parts:
            raise self._error("transition is missing its state expression")
        return _join_state_expr(parts)

    def _parse_transition_options(self) -> str:
        locking = "write"
        while not self.lexer.accept_punct("]"):
            option_token = self.lexer.expect_ident()
            if option_token.value == "locking":
                mode = self.lexer.expect_ident().value
                if mode not in ("read", "write"):
                    raise self._error(f"locking must be 'read' or 'write', got {mode!r}",
                                      option_token.line)
                locking = mode
            else:
                raise self._error(f"unknown transition option {option_token.value!r}",
                                  option_token.line)
            self.lexer.accept_punct(";")
        return locking

    def _parse_routines(self, spec: ProtocolSpec) -> None:
        line = self.lexer.peek().line
        code, _ = self.lexer.read_raw_block()
        spec.routines.append(RoutineDecl(code=code, line=line))


def _join_state_expr(parts: list[str]) -> str:
    """Reassemble state-expression tokens into canonical text.

    Tokens were separated by the lexer; state names that were adjacent in the
    source (e.g. ``joining | init``) must be re-joined with the original
    operators, which are all single characters and unambiguous.
    """
    return "".join(parts)


def _to_number(text: str) -> Union[int, float]:
    value = float(text)
    if value.is_integer() and "." not in text and "e" not in text.lower():
        return int(value)
    return value
