"""Convenience helpers for loading mac specifications from disk."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .ast import ProtocolSpec
from .parser import parse_mac
from .validator import validate


def load_spec(path: Union[str, Path], *, validate_spec: bool = True) -> ProtocolSpec:
    """Parse (and by default validate) the mac file at *path*."""
    path = Path(path)
    spec = parse_mac(path.read_text(encoding="utf-8"), filename=str(path))
    if validate_spec:
        validate(spec)
    return spec


def load_spec_text(text: str, *, filename: str = "<string>",
                   validate_spec: bool = True) -> ProtocolSpec:
    """Parse (and by default validate) mac source given as a string."""
    spec = parse_mac(text, filename=filename)
    if validate_spec:
        validate(spec)
    return spec
