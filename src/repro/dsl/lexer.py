"""Tokenizer for mac files.

The MACEDON grammar (Figure 4 of the paper) is small: identifiers, numbers,
strings, a handful of punctuation characters, and brace-delimited blocks.
Transition bodies and library routines contain embedded action code (C++ in
the paper, Python here), so the lexer supports a *raw block* mode that
captures a brace-balanced region verbatim, skipping braces that appear inside
string literals and comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .errors import MacSyntaxError

#: Token kinds produced by the lexer.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_NUMBER_RE = re.compile(r"-?\d+(\.\d+)?([eE][-+]?\d+)?")
_PUNCT_CHARS = "{}[]();|!=,"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line (1-based) for error messages."""

    kind: str
    value: str
    line: int

    def is_punct(self, char: str) -> bool:
        return self.kind == PUNCT and self.value == char

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


class Lexer:
    """A cursor over the mac source with both token and raw-block reading."""

    def __init__(self, text: str, filename: Optional[str] = None) -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self._peeked: Optional[Token] = None

    # ----------------------------------------------------------------- helpers
    def _error(self, message: str) -> MacSyntaxError:
        return MacSyntaxError(message, filename=self.filename, line=self.line)

    def _advance(self, count: int) -> None:
        chunk = self.text[self.pos:self.pos + count]
        self.line += chunk.count("\n")
        self.pos += count

    def _skip_ws_and_comments(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance(1)
                continue
            if self.text.startswith("//", self.pos) or char == "#":
                end = self.text.find("\n", self.pos)
                if end == -1:
                    end = len(self.text)
                self._advance(end - self.pos)
                continue
            if self.text.startswith("/*", self.pos):
                end = self.text.find("*/", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated /* comment")
                self._advance(end + 2 - self.pos)
                continue
            break

    # ------------------------------------------------------------------ tokens
    def peek(self) -> Token:
        if self._peeked is None:
            self._peeked = self._read_token()
        return self._peeked

    def next(self) -> Token:
        token = self.peek()
        self._peeked = None
        return token

    def _read_token(self) -> Token:
        self._skip_ws_and_comments()
        if self.pos >= len(self.text):
            return Token(EOF, "", self.line)
        char = self.text[self.pos]
        line = self.line
        if char in "\"'":
            return self._read_string(char)
        match = _NUMBER_RE.match(self.text, self.pos)
        if match and (char.isdigit() or
                      (char == "-" and self.pos + 1 < len(self.text)
                       and self.text[self.pos + 1].isdigit())):
            self._advance(match.end() - self.pos)
            return Token(NUMBER, match.group(0), line)
        match = _IDENT_RE.match(self.text, self.pos)
        if match:
            self._advance(match.end() - self.pos)
            return Token(IDENT, match.group(0), line)
        if char in _PUNCT_CHARS:
            self._advance(1)
            return Token(PUNCT, char, line)
        raise self._error(f"unexpected character {char!r}")

    def _read_string(self, quote: str) -> Token:
        line = self.line
        end = self.pos + 1
        while end < len(self.text):
            if self.text[end] == "\\":
                end += 2
                continue
            if self.text[end] == quote:
                break
            end += 1
        else:
            raise self._error("unterminated string literal")
        value = self.text[self.pos + 1:end]
        self._advance(end + 1 - self.pos)
        return Token(STRING, value, line)

    # ------------------------------------------------------------- expectations
    def expect_ident(self, expected: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != IDENT:
            raise self._error(f"expected identifier, found {token.value!r}")
        if expected is not None and token.value != expected:
            raise self._error(f"expected {expected!r}, found {token.value!r}")
        return token

    def expect_punct(self, char: str) -> Token:
        token = self.next()
        if not token.is_punct(char):
            raise self._error(f"expected {char!r}, found {token.value!r}")
        return token

    def accept_punct(self, char: str) -> bool:
        if self.peek().is_punct(char):
            self.next()
            return True
        return False

    def accept_ident(self, value: str) -> bool:
        token = self.peek()
        if token.kind == IDENT and token.value == value:
            self.next()
            return True
        return False

    def at_eof(self) -> bool:
        return self.peek().kind == EOF

    # --------------------------------------------------------------- raw blocks
    def read_raw_block(self) -> tuple[str, int]:
        """Read a ``{ ... }`` block verbatim (for transition bodies / routines).

        Returns the text between the outer braces (exclusive) and the line on
        which the block started.  Nested braces are tracked; braces inside
        string literals and ``#`` comments in the embedded code are ignored.
        A pending peeked ``{`` token is honoured as the opening brace.
        """
        if self._peeked is not None:
            if not self._peeked.is_punct("{"):
                raise self._error(
                    f"expected '{{' to open a code block, found {self._peeked.value!r}"
                )
            start_line = self._peeked.line
            self._peeked = None
        else:
            self._skip_ws_and_comments()
            if self.pos >= len(self.text) or self.text[self.pos] != "{":
                raise self._error("expected '{' to open a code block")
            start_line = self.line
            self._advance(1)
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in "\"'":
                self._skip_embedded_string(char)
                continue
            if char == "#":
                end = self.text.find("\n", self.pos)
                if end == -1:
                    end = len(self.text)
                self._advance(end - self.pos)
                continue
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    body = self.text[start:self.pos]
                    self._advance(1)
                    return body, start_line
            self._advance(1)
        raise MacSyntaxError("unterminated code block", filename=self.filename,
                             line=start_line)

    def _skip_embedded_string(self, quote: str) -> None:
        # Handle triple-quoted strings in embedded Python.
        triple = quote * 3
        if self.text.startswith(triple, self.pos):
            end = self.text.find(triple, self.pos + 3)
            if end == -1:
                raise self._error("unterminated triple-quoted string in code block")
            self._advance(end + 3 - self.pos)
            return
        end = self.pos + 1
        while end < len(self.text):
            if self.text[end] == "\\":
                end += 2
                continue
            if self.text[end] == quote or self.text[end] == "\n":
                break
            end += 1
        self._advance(min(end + 1, len(self.text)) - self.pos)
