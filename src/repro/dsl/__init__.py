"""The MACEDON domain-specific language front end (Figure-4 grammar)."""

from .ast import (
    ConstantDecl,
    FieldDecl,
    MessageDecl,
    NeighborTypeDecl,
    ProtocolSpec,
    RoutineDecl,
    StateVarDecl,
    TransitionDecl,
    TransportDecl,
)
from .errors import CodegenError, MacError, MacSyntaxError, MacValidationError
from .lexer import Lexer, Token
from .loader import load_spec, load_spec_text
from .parser import parse_mac, parse_mac_file
from .validator import validate

__all__ = [
    "ConstantDecl",
    "FieldDecl",
    "MessageDecl",
    "NeighborTypeDecl",
    "ProtocolSpec",
    "RoutineDecl",
    "StateVarDecl",
    "TransitionDecl",
    "TransportDecl",
    "CodegenError",
    "MacError",
    "MacSyntaxError",
    "MacValidationError",
    "Lexer",
    "Token",
    "load_spec",
    "load_spec_text",
    "parse_mac",
    "parse_mac_file",
    "validate",
]
