"""Abstract syntax tree for MACEDON protocol specifications.

These dataclasses mirror the sections of the Figure-4 grammar: headers,
STATE AND DATA (constants, states, neighbor types, transports, messages,
state variables), TRANSITIONS, and ROUTINES.  The parser produces a
:class:`ProtocolSpec`; the validator checks cross-references; the code
generator turns it into a Python agent class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


@dataclass(frozen=True)
class ConstantDecl:
    """``NAME = value;`` inside the constants block."""

    name: str
    value: Union[int, float, str]
    line: int = 0


@dataclass(frozen=True)
class FieldDecl:
    """A typed field of a message or neighbor type: ``int response;``."""

    type_name: str
    name: str
    is_list: bool = False
    line: int = 0


@dataclass(frozen=True)
class NeighborTypeDecl:
    """``oparent 1 { double delay; }`` inside neighbor_types."""

    name: str
    max_size: Union[int, str]       # integer literal or constant name
    fields: tuple[FieldDecl, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class TransportDecl:
    """``TCP HIGH;`` inside transports."""

    kind: str                        # TCP | UDP | SWP
    name: str
    line: int = 0


@dataclass(frozen=True)
class MessageDecl:
    """``HIGHEST join_reply { int response; }`` inside messages."""

    name: str
    fields: tuple[FieldDecl, ...] = ()
    transport: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class StateVarDecl:
    """One declaration inside state_variables / auxiliary data.

    ``kind`` is one of ``var``, ``neighbor_set``, ``timer``, ``map``,
    ``list``, ``set`` (matching :class:`repro.runtime.agent.StateVarSpec`).
    """

    kind: str
    name: str
    type_name: str = ""
    default: Any = None
    fail_detect: bool = False
    period: Optional[float] = None
    line: int = 0


@dataclass(frozen=True)
class TransitionDecl:
    """One transition: state expression, event, options, and its action code."""

    state_expr: str
    kind: str                        # api | timer | recv | forward
    name: str
    code: str
    locking: str = "write"
    line: int = 0


@dataclass(frozen=True)
class RoutineDecl:
    """A block of user-supplied helper methods (raw Python, emitted verbatim)."""

    code: str
    line: int = 0


@dataclass
class ProtocolSpec:
    """A parsed mac file."""

    name: str
    base: Optional[str] = None       # the "uses" header
    addressing: str = "ip"           # "ip" or "hash"
    trace: str = "off"               # off | low | med | high
    constants: list[ConstantDecl] = field(default_factory=list)
    states: list[str] = field(default_factory=list)
    neighbor_types: list[NeighborTypeDecl] = field(default_factory=list)
    transports: list[TransportDecl] = field(default_factory=list)
    messages: list[MessageDecl] = field(default_factory=list)
    state_vars: list[StateVarDecl] = field(default_factory=list)
    transitions: list[TransitionDecl] = field(default_factory=list)
    routines: list[RoutineDecl] = field(default_factory=list)
    source_file: Optional[str] = None
    source_text: str = ""

    # ------------------------------------------------------------------ lookups
    def constant_map(self) -> dict[str, Any]:
        return {constant.name: constant.value for constant in self.constants}

    def neighbor_type(self, name: str) -> Optional[NeighborTypeDecl]:
        for decl in self.neighbor_types:
            if decl.name == name:
                return decl
        return None

    def message(self, name: str) -> Optional[MessageDecl]:
        for decl in self.messages:
            if decl.name == name:
                return decl
        return None

    def transport_names(self) -> list[str]:
        return [decl.name for decl in self.transports]

    def timer_names(self) -> list[str]:
        return [decl.name for decl in self.state_vars if decl.kind == "timer"]

    def state_var_names(self) -> list[str]:
        return [decl.name for decl in self.state_vars]

    def is_layered(self) -> bool:
        return self.base is not None

    def lines_of_code(self) -> int:
        """Non-blank, non-comment lines in the original specification.

        This is the quantity Figure 7 of the paper reports for each protocol.
        """
        count = 0
        for line in self.source_text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("//") or stripped.startswith("#"):
                continue
            count += 1
        return count
