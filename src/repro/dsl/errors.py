"""Errors raised by the MACEDON DSL front end."""

from __future__ import annotations

from typing import Optional


class MacError(Exception):
    """Base class for all mac-file processing errors."""

    def __init__(self, message: str, *, filename: Optional[str] = None,
                 line: Optional[int] = None) -> None:
        self.filename = filename
        self.line = line
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if line is not None:
            location = f"{location}{line}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class MacSyntaxError(MacError):
    """The specification text does not follow the MACEDON grammar."""


class MacValidationError(MacError):
    """The specification parses but is semantically inconsistent."""


class CodegenError(MacError):
    """The code generator could not translate a (valid) specification."""
