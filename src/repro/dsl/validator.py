"""Semantic validation of parsed mac specifications.

The parser only checks the grammar; this pass checks cross-references the
code generator and runtime rely on:

* unique and well-formed names (states, neighbor types, transports, messages,
  state variables, timers);
* message transport bindings refer to declared transports (for lowest-layer
  protocols);
* neighbor-set state variables refer to declared neighbor types, and neighbor
  maximum sizes that name constants resolve to positive integers;
* transition state expressions parse and refer to declared states;
* transition events refer to declared messages/timers/API names;
* a layered protocol (``uses`` header) does not declare transports.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.agent import API_NAMES
from ..runtime.stateexpr import StateExprError, parse_state_expr
from .ast import ProtocolSpec
from .errors import MacValidationError
from .parser import CONTAINER_KINDS, SCALAR_TYPES

_FIELD_TYPES = SCALAR_TYPES | {"neighbor"}
_PYTHON_KEYWORDS = {
    "from", "import", "def", "class", "return", "if", "else", "elif", "for",
    "while", "pass", "break", "continue", "lambda", "global", "nonlocal",
    "True", "False", "None", "and", "or", "not", "in", "is", "try", "except",
    "finally", "raise", "with", "as", "yield", "assert", "del",
}


def validate(spec: ProtocolSpec) -> None:
    """Raise :class:`MacValidationError` if *spec* is inconsistent."""
    _check_names(spec)
    _check_constants(spec)
    _check_neighbor_types(spec)
    _check_transports_and_messages(spec)
    _check_state_vars(spec)
    _check_transitions(spec)


def _fail(spec: ProtocolSpec, message: str, line: Optional[int] = None) -> None:
    raise MacValidationError(message, filename=spec.source_file, line=line)


def _check_identifier(spec: ProtocolSpec, name: str, what: str,
                      line: Optional[int] = None) -> None:
    if not name.isidentifier():
        _fail(spec, f"{what} {name!r} is not a valid identifier", line)
    if name in _PYTHON_KEYWORDS:
        _fail(spec, f"{what} {name!r} collides with a Python keyword", line)


def _check_names(spec: ProtocolSpec) -> None:
    _check_identifier(spec, spec.name, "protocol name")
    if spec.base is not None:
        _check_identifier(spec, spec.base, "base protocol name")
        if spec.base == spec.name:
            _fail(spec, f"protocol {spec.name!r} cannot be layered on itself")
    seen_states = set()
    for state in spec.states:
        _check_identifier(spec, state, "state")
        if state == "init":
            _fail(spec, "the 'init' state is implicit and must not be redeclared")
        if state == "any":
            _fail(spec, "'any' is reserved in state expressions")
        if state in seen_states:
            _fail(spec, f"state {state!r} declared twice")
        seen_states.add(state)


def _check_constants(spec: ProtocolSpec) -> None:
    seen = set()
    for constant in spec.constants:
        _check_identifier(spec, constant.name, "constant", constant.line)
        if constant.name in seen:
            _fail(spec, f"constant {constant.name!r} declared twice", constant.line)
        seen.add(constant.name)


def _check_neighbor_types(spec: ProtocolSpec) -> None:
    constants = spec.constant_map()
    seen = set()
    for decl in spec.neighbor_types:
        _check_identifier(spec, decl.name, "neighbor type", decl.line)
        if decl.name in seen:
            _fail(spec, f"neighbor type {decl.name!r} declared twice", decl.line)
        seen.add(decl.name)
        max_size = decl.max_size
        if isinstance(max_size, str):
            if max_size not in constants:
                _fail(spec, f"neighbor type {decl.name!r} max size references "
                            f"unknown constant {max_size!r}", decl.line)
            max_size = constants[max_size]
        if not isinstance(max_size, int) or max_size <= 0:
            _fail(spec, f"neighbor type {decl.name!r} max size must be a positive "
                        f"integer, got {max_size!r}", decl.line)
        field_names = set()
        for field in decl.fields:
            _check_identifier(spec, field.name, "neighbor field", field.line)
            if field.name in field_names:
                _fail(spec, f"neighbor type {decl.name!r} field {field.name!r} "
                            f"declared twice", field.line)
            field_names.add(field.name)
            if field.type_name not in _FIELD_TYPES and field.type_name not in ("list",):
                _fail(spec, f"neighbor field {field.name!r} has unknown type "
                            f"{field.type_name!r}", field.line)


def _check_transports_and_messages(spec: ProtocolSpec) -> None:
    transport_names = set()
    for decl in spec.transports:
        _check_identifier(spec, decl.name, "transport", decl.line)
        if decl.name in transport_names:
            _fail(spec, f"transport {decl.name!r} declared twice", decl.line)
        transport_names.add(decl.name)
    if spec.is_layered() and spec.transports:
        _fail(spec, f"protocol {spec.name!r} is layered over {spec.base!r} and must "
                    f"not declare transports (only the lowest layer owns them)")

    message_names = set()
    for message in spec.messages:
        _check_identifier(spec, message.name, "message", message.line)
        if message.name in message_names:
            _fail(spec, f"message {message.name!r} declared twice", message.line)
        message_names.add(message.name)
        if message.transport is not None and not spec.is_layered():
            if message.transport not in transport_names:
                _fail(spec, f"message {message.name!r} is bound to undeclared "
                            f"transport {message.transport!r}", message.line)
        field_names = set()
        for field in message.fields:
            _check_identifier(spec, field.name, "message field", field.line)
            if field.name in field_names:
                _fail(spec, f"message {message.name!r} field {field.name!r} "
                            f"declared twice", field.line)
            field_names.add(field.name)
            if field.type_name not in _FIELD_TYPES:
                _fail(spec, f"message field {field.name!r} has unknown type "
                            f"{field.type_name!r}", field.line)


def _check_state_vars(spec: ProtocolSpec) -> None:
    neighbor_type_names = {decl.name for decl in spec.neighbor_types}
    seen = set()
    reserved = {"state", "node", "lower", "upper", "lock", "my_addr", "my_key",
                "simulator", "key_space", "bootstrap_addr", "bootstrap_key"}
    for var in spec.state_vars:
        _check_identifier(spec, var.name, "state variable", var.line)
        if var.name in seen:
            _fail(spec, f"state variable {var.name!r} declared twice", var.line)
        if var.name in reserved:
            _fail(spec, f"state variable {var.name!r} collides with a runtime "
                        f"attribute", var.line)
        seen.add(var.name)
        if var.kind == "neighbor_set" and var.type_name not in neighbor_type_names:
            _fail(spec, f"state variable {var.name!r} uses undeclared neighbor "
                        f"type {var.type_name!r}", var.line)
        if var.kind == "var" and var.type_name not in SCALAR_TYPES:
            _fail(spec, f"state variable {var.name!r} has unknown type "
                        f"{var.type_name!r}", var.line)
        if var.kind == "timer" and var.period is not None and var.period <= 0:
            _fail(spec, f"timer {var.name!r} default period must be positive", var.line)
        if var.fail_detect and var.kind != "neighbor_set":
            _fail(spec, f"fail_detect only applies to neighbor sets ({var.name!r})",
                  var.line)


def _check_transitions(spec: ProtocolSpec) -> None:
    message_names = {message.name for message in spec.messages}
    timer_names = set(spec.timer_names())
    for transition in spec.transitions:
        try:
            parse_state_expr(transition.state_expr, spec.states)
        except StateExprError as exc:
            _fail(spec, f"bad state expression {transition.state_expr!r}: {exc}",
                  transition.line)
        if transition.kind == "api":
            if transition.name not in API_NAMES:
                _fail(spec, f"unknown API transition {transition.name!r} "
                            f"(allowed: {', '.join(API_NAMES)})", transition.line)
        elif transition.kind == "timer":
            if transition.name not in timer_names:
                _fail(spec, f"timer transition for undeclared timer "
                            f"{transition.name!r}", transition.line)
        elif transition.kind in ("recv", "forward"):
            if transition.name not in message_names:
                _fail(spec, f"{transition.kind} transition for undeclared message "
                            f"{transition.name!r}", transition.line)
        if transition.locking not in ("read", "write"):
            _fail(spec, f"unknown locking mode {transition.locking!r}", transition.line)
        if not transition.code.strip():
            _fail(spec, f"transition {transition.kind} {transition.name!r} has an "
                        f"empty body (use 'pass')", transition.line)
