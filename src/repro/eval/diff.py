"""Sim-vs-live differential harness.

The paper's central claim is that one MACEDON specification produces the
same protocol in simulation and in live deployment.  This module turns that
claim into a checkable artifact: :func:`run_diff` executes one
:class:`~repro.eval.scenario.ScenarioSpec` through ``repro.run(mode="sim")``
and ``repro.run(mode="live")`` across a set of seeds, compares the metric
distributions against declared per-metric tolerances, runs the live
invariants on every live outcome, and returns a machine-readable
:class:`DiffReport` (schema ``repro.diff/1``).

What "agree" means here: a live run is not a replay of the simulation — the
kernel schedules packets, victim sampling differs, and wall-clock compresses
the timeline — so the harness compares *seed-averaged metric means*, not
event logs.  Each :class:`Tolerance` declares how far the live mean may sit
from the sim mean before the divergence is drift worth failing on:
``abs`` bounds the absolute gap, ``rel`` (optional) additionally allows a
fraction of the sim mean, and ``direction`` can restrict which side of the
sim value is a violation (live latency being *lower* than simulated latency
is not a bug).  Metrics missing from either side are skipped unless the
tolerance marks them ``required``.

The comparison is deliberately asymmetric in what it trusts: invariant
violations on the live side are failures regardless of tolerances — a
duplicate delivery "within tolerance" is still a duplicate delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

ARTIFACT_SCHEMA = "repro.diff/1"


@dataclass(frozen=True)
class Tolerance:
    """How far the live mean of one metric may drift from the sim mean."""

    metric: str
    #: Absolute allowance: |live - sim| <= abs (+ rel * |sim|) passes.
    abs: float
    #: Optional relative allowance, a fraction of the sim mean.
    rel: float = 0.0
    #: "both" (default) fails on either side; "live_below" only when live
    #: undershoots sim; "live_above" only when it overshoots.
    direction: str = "both"
    #: Fail if the metric is missing from either side's results.
    required: bool = False

    def allowance(self, sim_mean: float) -> float:
        return self.abs + self.rel * abs(sim_mean)

    def violated_by(self, sim_mean: float, live_mean: float) -> bool:
        delta = live_mean - sim_mean
        if self.direction == "live_below" and delta >= 0:
            return False
        if self.direction == "live_above" and delta <= 0:
            return False
        return abs(delta) > self.allowance(sim_mean)


#: Default ruler for the library protocols: loose enough for a compressed
#: wall-clock timeline and kernel-scheduled packet orders, tight enough
#: that a broken live transport (or a sim-only protocol bug) trips it.
DEFAULT_TOLERANCES: tuple[Tolerance, ...] = (
    Tolerance("workload.success_ratio", abs=0.15, required=True),
    Tolerance("workload.post_fault_success_ratio", abs=0.15),
    Tolerance("ring.correct_successor_fraction", abs=0.25),
    Tolerance("workload.quorum_success", abs=0.15),
    # Fabricated data is fabricated data in either mode.
    Tolerance("workload.phantom_reads", abs=0.0),
    Tolerance("workload.duplicates", abs=0.0),
    Tolerance("workload.coverage", abs=0.2),
)


@dataclass(frozen=True)
class MetricDiff:
    """One metric's two distributions and the verdict."""

    metric: str
    sim_mean: float
    live_mean: float
    delta: float
    allowance: float
    ok: bool
    sim_values: tuple = ()
    live_values: tuple = ()

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "sim_mean": self.sim_mean,
            "live_mean": self.live_mean,
            "delta": self.delta,
            "allowance": self.allowance,
            "ok": self.ok,
            "sim_values": list(self.sim_values),
            "live_values": list(self.live_values),
        }


@dataclass
class DiffReport:
    """The harness's verdict: per-metric diffs plus live invariant checks."""

    spec_name: str
    seeds: tuple
    diffs: list = field(default_factory=list)
    #: Tolerances marked required whose metric one side never produced.
    missing: list = field(default_factory=list)
    #: Stringified live InvariantViolations, tagged with their seed.
    violations: list = field(default_factory=list)

    @property
    def drifted(self) -> list:
        return [diff for diff in self.diffs if not diff.ok]

    @property
    def ok(self) -> bool:
        return not self.drifted and not self.missing and not self.violations

    def to_dict(self) -> dict:
        return {
            "schema": ARTIFACT_SCHEMA,
            "spec": self.spec_name,
            "seeds": list(self.seeds),
            "ok": self.ok,
            "diffs": [diff.to_dict() for diff in self.diffs],
            "missing": list(self.missing),
            "violations": list(self.violations),
        }

    def summary(self) -> str:
        lines = [f"diff {self.spec_name}: "
                 f"{'OK' if self.ok else 'DRIFT'} over seeds "
                 f"{list(self.seeds)}"]
        for diff in self.diffs:
            marker = "ok  " if diff.ok else "FAIL"
            lines.append(
                f"  [{marker}] {diff.metric}: sim={diff.sim_mean:.4f} "
                f"live={diff.live_mean:.4f} delta={diff.delta:+.4f} "
                f"(allowed ±{diff.allowance:.4f})")
        for metric in self.missing:
            lines.append(f"  [FAIL] {metric}: required metric missing")
        for violation in self.violations:
            lines.append(f"  [FAIL] invariant: {violation}")
        return "\n".join(lines)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def compare(sim_metrics: Sequence[dict], live_metrics: Sequence[dict],
            tolerances: Sequence[Tolerance] = DEFAULT_TOLERANCES,
            *, spec_name: str = "", seeds: Sequence = ()) -> DiffReport:
    """Pure comparison of per-seed metric dicts (no execution).

    ``sim_metrics`` / ``live_metrics`` are parallel lists of per-run metric
    dictionaries; a metric enters the comparison only for runs that emitted
    it (a seed whose fault schedule left no post-fault probes simply does
    not vote on ``post_fault_success_ratio``).
    """
    report = DiffReport(spec_name=spec_name, seeds=tuple(seeds))
    for tolerance in tolerances:
        sim_values = tuple(metrics[tolerance.metric]
                           for metrics in sim_metrics
                           if tolerance.metric in metrics)
        live_values = tuple(metrics[tolerance.metric]
                            for metrics in live_metrics
                            if tolerance.metric in metrics)
        if not sim_values or not live_values:
            if tolerance.required:
                report.missing.append(tolerance.metric)
            continue
        sim_mean = _mean(sim_values)
        live_mean = _mean(live_values)
        report.diffs.append(MetricDiff(
            metric=tolerance.metric,
            sim_mean=sim_mean,
            live_mean=live_mean,
            delta=live_mean - sim_mean,
            allowance=tolerance.allowance(sim_mean),
            ok=not tolerance.violated_by(sim_mean, live_mean),
            sim_values=sim_values,
            live_values=live_values,
        ))
    return report


def run_diff(spec, *, seeds: Sequence[int] = (1,),
             tolerances: Sequence[Tolerance] = DEFAULT_TOLERANCES,
             live_overrides: Optional[dict] = None) -> DiffReport:
    """Run *spec* in both modes across *seeds* and diff the results.

    Each seed gets one simulation run and one live deployment of the
    re-seeded spec; live invariant violations from any seed fail the
    report.  ``live_overrides`` pass through to the live config (a CI
    runner will at least want ``base_port`` to keep parallel jobs apart).
    """
    from dataclasses import replace

    from .. import facade
    from .invariants import check_live_invariants

    sim_metrics: list[dict] = []
    live_metrics: list[dict] = []
    report = DiffReport(spec_name=spec.name, seeds=tuple(seeds))
    for seed in seeds:
        seeded = replace(spec, seed=seed)
        sim_result = facade.run(seeded)
        sim_metrics.append(dict(sim_result.metrics))
        live_result = facade.run(seeded, mode="live",
                                 **dict(live_overrides or {}))
        live_metrics.append(dict(live_result.metrics))
        for violation in check_live_invariants(live_result):
            report.violations.append(f"seed {seed}: {violation}")
    compared = compare(sim_metrics, live_metrics, tolerances,
                       spec_name=spec.name, seeds=seeds)
    report.diffs = compared.diffs
    report.missing = compared.missing
    return report
