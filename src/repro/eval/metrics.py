"""Overlay evaluation metrics.

MACEDON's evaluation framework extracts global topology and routing
information from the emulation substrate to compute metrics that individual
nodes cannot measure themselves: latency stretch, relative delay penalty
(RDP), link stress, and routing-table convergence.  The functions here take
the emulator (global knowledge) plus application-level observations and return
the quantities the paper's figures report.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..network.emulator import NetworkEmulator
from ..runtime.keys import KeySpace
from ..runtime.node import MacedonNode


# ------------------------------------------------------------------ stretch/RDP
@dataclass(frozen=True)
class StretchSample:
    """Stretch of one delivered packet: overlay latency over direct IP latency."""

    receiver: int
    overlay_latency: float
    direct_latency: float

    @property
    def stretch(self) -> float:
        if self.direct_latency <= 0:
            return 1.0
        return self.overlay_latency / self.direct_latency


def stretch_samples(emulator: NetworkEmulator, source: int,
                    overlay_latencies: dict[int, float]) -> list[StretchSample]:
    """Stretch per receiver given measured overlay latencies from *source*.

    ``overlay_latencies`` maps receiver host address to the measured overlay
    end-to-end latency (seconds); the direct latency comes from the emulator's
    global routing information — exactly what the paper extracts from
    ModelNet.
    """
    samples = []
    for receiver, overlay in overlay_latencies.items():
        if receiver == source:
            continue
        direct = emulator.ip_latency(source, receiver)
        samples.append(StretchSample(receiver=receiver, overlay_latency=overlay,
                                     direct_latency=direct))
    return samples


def relative_delay_penalty(samples: Iterable[StretchSample]) -> float:
    """Mean stretch across receivers (a common definition of RDP)."""
    samples = list(samples)
    if not samples:
        return 0.0
    return sum(sample.stretch for sample in samples) / len(samples)


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Simple nearest-rank percentile (fraction in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def group_by_site(values: dict[int, float],
                  site_of: dict[int, int]) -> dict[int, list[float]]:
    """Bucket per-receiver values by site index (Figures 8 and 9 are per-site)."""
    buckets: dict[int, list[float]] = {}
    for receiver, value in values.items():
        site = site_of.get(receiver)
        if site is None:
            continue
        buckets.setdefault(site, []).append(value)
    return buckets


# -------------------------------------------------------------------- link stress
def link_stress(emulator: NetworkEmulator) -> dict[str, float]:
    """Link-stress summary: how many times application payloads re-crossed links.

    Uses the per-link payload counters the emulator collects (tagged
    application packets).  Returns max and mean stress over links that carried
    at least one tagged payload.
    """
    stresses = []
    for stats in emulator.link_stats().values():
        stress = stats.max_stress
        if stress > 0:
            stresses.append(stress)
    if not stresses:
        return {"max": 0.0, "mean": 0.0, "links": 0}
    return {"max": float(max(stresses)), "mean": mean([float(s) for s in stresses]),
            "links": len(stresses)}


# -------------------------------------------------------- Chord convergence (Fig 10)
def correct_chord_fingers(my_key: int, membership_keys: Sequence[tuple[int, int]],
                          *, num_fingers: int = 32,
                          key_space: Optional[KeySpace] = None) -> dict[int, tuple[int, int]]:
    """The globally correct finger table for a node, given full membership.

    ``membership_keys`` is a list of (key, addr) for every node in the ring.
    Correct finger *i* is the first node whose key is ≥ my_key + 2**i (mod
    2**bits) — the same calculation the paper performs with global knowledge
    of all joining nodes.
    """
    key_space = key_space or KeySpace()
    ordered = sorted(set(membership_keys))
    keys_only = [key for key, _ in ordered]
    correct: dict[int, tuple[int, int]] = {}
    size = key_space.size
    for index in range(num_fingers):
        target = (my_key + (1 << index)) % size
        position = bisect.bisect_left(keys_only, target)
        if position == len(keys_only):
            position = 0
        correct[index] = ordered[position]
    return correct


def chord_correct_entry_count(agent, membership_keys: Sequence[tuple[int, int]],
                              *, num_fingers: int = 32) -> int:
    """Number of finger-table entries of *agent* matching the correct table."""
    correct = correct_chord_fingers(agent.my_key, membership_keys,
                                    num_fingers=num_fingers,
                                    key_space=agent.key_space)
    table = agent.finger_table()
    count = 0
    for index, entry in table.items():
        if correct.get(index) == tuple(entry):
            count += 1
    return count


def average_correct_route_entries(nodes: Sequence[MacedonNode],
                                  protocol: str = "chord",
                                  *, num_fingers: int = 32) -> float:
    """Figure 10's y-axis: per-node average number of correct route entries."""
    membership = [(node.agent(protocol).my_key, node.address) for node in nodes]
    total = 0
    for node in nodes:
        total += chord_correct_entry_count(node.agent(protocol), membership,
                                           num_fingers=num_fingers)
    return total / max(1, len(nodes))


def correct_successor_fraction(ring: Sequence[tuple[int, int]],
                               successors: dict[int, int]) -> float:
    """Fraction of nodes whose successor pointer is ring-correct.

    ``ring`` is the global membership as (key, address) pairs; ``successors``
    maps each address to the successor address that node currently believes
    in.  The correct successor of a node is the member with the next key
    clockwise.  Works from any observation source — simulated agents or the
    per-node reports a live cluster collects (global knowledge lives at the
    coordinator there, exactly as ModelNet's does in the paper).
    """
    ordered = sorted(set(ring))
    if not ordered:
        return 0.0
    # A singleton ring falls through to the general rule: the sole member's
    # correct successor is itself, so a stale pointer still scores 0.
    correct = 0
    total = 0
    for index, (_key, address) in enumerate(ordered):
        reported = successors.get(address)
        if reported is None:
            continue
        total += 1
        expected = ordered[(index + 1) % len(ordered)][1]
        if reported == expected:
            correct += 1
    if total == 0:
        return 0.0
    return correct / total


# -------------------------------------------------------- application (KV) metrics
def requests_per_second(completed: int, window: float) -> float:
    """Application throughput: completed client operations per second.

    ``window`` is the measurement span (workload start to scenario end) —
    the ROADMAP's north-star quantity when driven by the KV workload.
    """
    if window <= 0:
        return 0.0
    return completed / window


def quorum_staleness(reads: Iterable[tuple[int, int, float]],
                     writes: Iterable[tuple[int, int, float]]) -> int:
    """Count quorum reads that missed a write completed before they started.

    ``reads`` are completed reads as ``(key, version_returned, issued_at)``;
    ``writes`` are completed (quorum-acked) writes as ``(key, version,
    completed_at)``.  A read is *stale* when some write to its key completed
    strictly before the read was issued, yet the read returned a smaller
    version — the read-your-quorum-writes property ``R + W > N`` promises
    under stable membership.
    """
    by_key: dict[int, list[tuple[float, int]]] = {}
    for key, version, completed_at in writes:
        by_key.setdefault(key, []).append((completed_at, version))
    # Prefix-max over completion time: best[i] = max version completed at or
    # before time point i.
    prefix: dict[int, tuple[list[float], list[int]]] = {}
    for key, entries in by_key.items():
        entries.sort()
        times, best = [], []
        top = -1
        for completed_at, version in entries:
            top = max(top, version)
            times.append(completed_at)
            best.append(top)
        prefix[key] = (times, best)
    stale = 0
    for key, version, issued_at in reads:
        entry = prefix.get(key)
        if entry is None:
            continue
        times, best = entry
        position = bisect.bisect_left(times, issued_at)
        if position > 0 and version < best[position - 1]:
            stale += 1
    return stale


def phantom_reads(reads: Iterable[tuple[int, int]],
                  issued_writes: set[tuple[int, int]]) -> int:
    """Count reads returning a version that was never written to that key.

    ``reads`` are ``(key, version_returned)`` with ``-1`` meaning "not
    found" (never phantom); ``issued_writes`` is the set of ``(key,
    version)`` pairs any client ever issued.  A non-zero count means the
    store fabricated or cross-wired data — unconditionally a bug.
    """
    return sum(1 for key, version in reads
               if version >= 0 and (key, version) not in issued_writes)


def replica_coverage(stores: Sequence[dict[int, int]],
                     targets: dict[int, int], replicas: int) -> float:
    """How completely the live replica sets hold the latest acked writes.

    ``stores`` are the ``key -> version`` maps of every live node;
    ``targets`` maps each key to the highest quorum-completed version.  Each
    key scores ``min(holders, replicas) / replicas`` where a holder stores a
    version ≥ the target; the result is the mean over keys (1.0 = every
    acked write is fully N-way replicated among live nodes).
    """
    if not targets or replicas < 1:
        return 0.0
    score = 0.0
    for key, version in targets.items():
        holders = sum(1 for store in stores if store.get(key, -1) >= version)
        score += min(holders, replicas) / replicas
    return score / len(targets)


# ------------------------------------------------------------------ tree metrics
def multicast_tree_depths(nodes: Sequence[MacedonNode], protocol: str) -> dict[int, int]:
    """Depth of each node in a tree overlay (root depth 0); -1 if detached."""
    parent_of = {}
    for node in nodes:
        agent = node.agent(protocol)
        parent_of[node.address] = agent.parent_address()
    depths: dict[int, int] = {}
    for node in nodes:
        depth = 0
        current = node.address
        seen = set()
        while parent_of.get(current) is not None and current not in seen:
            seen.add(current)
            current = parent_of[current]
            depth += 1
            if depth > len(nodes):
                depth = -1
                break
        depths[node.address] = depth
    return depths
