"""Curated adversarial scenario library.

Each entry names one stress pattern the paper's evaluation (and a decade of
overlay deployments) says a protocol must survive — flash crowds, rack
failures, flapping and asymmetric partitions, bottleneck links, slow nodes,
churn storms — bound to a concrete protocol stack and tuned so that
:mod:`repro.eval.invariants` is checkable at the end (every entry leaves a
fault-free settle window before the scenario ends).

Entries are plain :class:`~repro.eval.scenario.ScenarioSpec` builders::

    from repro.eval.library import LIBRARY, library_spec

    spec = library_spec("flash-crowd")        # seed 0
    summary = ScenarioRunner(spec, seeds=[1, 2, 3]).run()

The :data:`PROTOCOLS` table also serves as the fuzzer's protocol registry:
names map to zero-argument callables returning an agent-class stack, which is
exactly the lazy form :class:`~repro.eval.scenario.ScenarioSpec` accepts for
its ``agents`` field (so specs stay picklable/serialisable by name).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence, Type

from ..runtime.agent import Agent
from ..runtime.failure import FailureDetectorConfig
from .scenario import (
    ChurnModel,
    CorrelatedCrashModel,
    DegradeModel,
    FlappingPartitionModel,
    FlashCrowdModel,
    GroupModel,
    ScenarioError,
    ScenarioSpec,
    WorkloadModel,
)

#: Protocol registry: name -> zero-arg agent-stack factory.  The ring DHT and
#: Chord expose a ``successor`` pointer, so the ring-convergence invariant is
#: live for them; Pastry and Scribe-over-Pastry exercise the prefix-routing
#: family where only the transport/delivery invariants apply.
PROTOCOLS: "dict[str, Callable[[], Sequence[Type[Agent]]]]" = {}


def _register_protocols() -> None:
    from .. import protocols
    from ..protocols.ring import ring_agent

    PROTOCOLS.update({
        "ringdht": lambda: [ring_agent()],
        "chord": lambda: [protocols.chord_agent()],
        "pastry": lambda: [protocols.pastry_agent()],
        "scribe-pastry": lambda: protocols.scribe_stack("pastry"),
    })


_register_protocols()


def resolve_protocol(name: str) -> Callable[[], Sequence[Type[Agent]]]:
    """The agent-stack factory for *name* (raises ScenarioError if unknown)."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown protocol {name!r}; library protocols are "
            f"{sorted(PROTOCOLS)}") from None


#: Aggressive failure detection (the paper's f=10 s, g=4 s operating point):
#: adversarial scenarios are short, so detection must be fast enough that the
#: overlay actually reacts within the run.
FAST_FAILURE = FailureDetectorConfig(failure_timeout=10.0,
                                     heartbeat_timeout=4.0,
                                     check_interval=1.0)

#: Stub-domain uplink edges that exist in every generated transit-stub
#: topology regardless of seed: node ids are allocated deterministically
#: (transit routers 0..9, then stub domains of 4 routers from id 10), and
#: each domain's first router uplinks to its transit anchor — so (10, 0) and
#: (14, 0) are the uplinks of the first two stub domains.  Small populations
#: attach entirely to the first few domains, so these edges carry all their
#: inter-domain traffic; they are only ever degraded or cut *directionally*
#: here (a full cut would disconnect the domain outright).
STUB_UPLINK_EDGES = ((10, 0), (14, 0))


@dataclass(frozen=True)
class LibraryEntry:
    """One named adversarial scenario: metadata plus a spec builder."""

    name: str
    protocol: str
    summary: str
    build: Callable[[], ScenarioSpec]

    def spec(self, seed: int = 0) -> ScenarioSpec:
        return replace(self.build(), seed=seed)


def _base_spec(name: str, protocol: str, *, num_nodes: int, duration: float,
               models: tuple, loss: float = 0.0) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        agents=resolve_protocol(protocol),
        num_nodes=num_nodes,
        duration=duration,
        random_loss_rate=loss,
        failure_config=FAST_FAILURE,
        models=models,
    )


# ------------------------------------------------------------------- builders
def _flash_crowd() -> ScenarioSpec:
    # A small warm core, then 8 nodes join in a Poisson burst; lookups keep
    # running through the arrival wave.  Last joins land ~26 s, leaving a
    # >100 s settle window for ring convergence.
    return _base_spec(
        "flash-crowd", "chord", num_nodes=12, duration=140.0,
        models=(
            FlashCrowdModel(core=4, core_spacing=0.5, at=25.0, burst_rate=10.0),
            WorkloadModel(kind="route", source=-1, start=15.0, packets=40,
                          gap=2.5),
        ))


def _flash_crowd_departure() -> ScenarioSpec:
    # The same burst, but the crowd leaves again after 30 s — the mass-
    # departure half of a flash crowd, which stresses failure detection.
    return _base_spec(
        "flash-crowd-departure", "ringdht", num_nodes=12, duration=150.0,
        models=(
            FlashCrowdModel(core=4, core_spacing=0.5, at=25.0, burst_rate=10.0,
                            stay=30.0),
            WorkloadModel(kind="route", source=-1, start=15.0, packets=40,
                          gap=2.5),
        ))


def _rack_failure() -> ScenarioSpec:
    # Two of the three failure domains power-cycle at once (a correlated
    # crash, not independent churn) and come back 25 s later.
    return _base_spec(
        "rack-failure", "ringdht", num_nodes=12, duration=140.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            CorrelatedCrashModel(at=30.0, racks=2, recover_after=25.0),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=40,
                          gap=2.5),
        ))


def _flapping_partition() -> ScenarioSpec:
    # A host partition that heals and re-cuts three times: 8 s cut / 8 s
    # healed, so the failure detector keeps being almost-right.  Last heal at
    # 30 + 2*16 + 8 = 70 s.
    return _base_spec(
        "flapping-partition", "ringdht", num_nodes=10, duration=140.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            FlappingPartitionModel(at=30.0, period=16.0, duty=0.5, cycles=3,
                                   groups=((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=40,
                          gap=2.5),
        ))


def _asymmetric_partition() -> ScenarioSpec:
    # One-directional blackholes on the two stub-domain uplinks: packets flow
    # one way but not the other, the failure mode that most confuses
    # heartbeat-based detectors.  Two flap cycles, last heal at 54 s.
    return _base_spec(
        "asymmetric-partition", "chord", num_nodes=10, duration=130.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            FlappingPartitionModel(at=30.0, period=16.0, duty=0.5, cycles=2,
                                   links=STUB_UPLINK_EDGES, directed=True),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=40,
                          gap=2.5),
        ))


def _bottleneck_links() -> ScenarioSpec:
    # Uplink congestion: the two stub-domain uplinks drop to 5% bandwidth and
    # 4x latency for 40 s, then recover.
    return _base_spec(
        "bottleneck-links", "ringdht", num_nodes=10, duration=130.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            DegradeModel(at=25.0, restore_after=40.0, links=STUB_UPLINK_EDGES,
                         bandwidth_factor=0.05, latency_factor=4.0),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=40,
                          gap=2.5),
        ))


def _slow_nodes() -> ScenarioSpec:
    # 30% of the membership gets 8x access latency and 20% bandwidth for
    # 40 s — straggler nodes, not dead ones, so the detector must not evict
    # them while the protocol limps.
    return _base_spec(
        "slow-nodes", "chord", num_nodes=12, duration=130.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            DegradeModel(at=25.0, restore_after=40.0, host_fraction=0.3,
                         bandwidth_factor=0.2, latency_factor=8.0),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=40,
                          gap=2.5),
        ))


def _churn_storm() -> ScenarioSpec:
    # Half the membership fail-stops and rejoins inside a 45 s window, on a
    # lossy network — the paper's churn experiment pushed to the edge.
    return _base_spec(
        "churn-storm", "ringdht", num_nodes=12, duration=150.0,
        loss=0.01,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.5,
                       churn_start=25.0, churn_end=70.0, downtime=8.0),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=50,
                          gap=2.0),
        ))


def _partition_under_churn() -> ScenarioSpec:
    # Churn and a 20 s host partition overlap, so some nodes crash while
    # partitioned and recover into a healed network (and vice versa).
    return _base_spec(
        "partition-under-churn", "ringdht", num_nodes=12, duration=150.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.34,
                       churn_start=25.0, churn_end=65.0, downtime=10.0),
            FlappingPartitionModel(at=35.0, period=40.0, duty=0.5, cycles=1,
                                   groups=((0, 1, 2, 3, 4, 5),
                                           (6, 7, 8, 9, 10, 11))),
            WorkloadModel(kind="route", source=-1, start=20.0, packets=50,
                          gap=2.0),
        ))


def _scribe_flapping() -> ScenarioSpec:
    # Scribe-over-Pastry multicast through flapping directed cuts of the
    # stub-domain uplinks: the dissemination tree must survive repeated
    # rendezvous-point unreachability.  Last heal at 35 + 16 + 8 = 59 s.
    return _base_spec(
        "scribe-flapping", "scribe-pastry", num_nodes=10, duration=130.0,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.0),
            GroupModel(group=7, source=0, at=12.0, spacing=0.5),
            FlappingPartitionModel(at=35.0, period=16.0, duty=0.5, cycles=2,
                                   links=STUB_UPLINK_EDGES, directed=True),
            WorkloadModel(kind="multicast", source=0, group=7, start=25.0,
                          packets=40, gap=1.5),
        ))


#: The curated library, in presentation order.
LIBRARY: tuple[LibraryEntry, ...] = (
    LibraryEntry("flash-crowd", "chord",
                 "Poisson burst of joins against a small warm core",
                 _flash_crowd),
    LibraryEntry("flash-crowd-departure", "ringdht",
                 "flash crowd arrives, stays 30 s, then mass-departs",
                 _flash_crowd_departure),
    LibraryEntry("rack-failure", "ringdht",
                 "two failure domains power-cycle simultaneously",
                 _rack_failure),
    LibraryEntry("flapping-partition", "ringdht",
                 "host partition cuts and heals three times",
                 _flapping_partition),
    LibraryEntry("asymmetric-partition", "chord",
                 "one-directional uplink blackholes, flapping",
                 _asymmetric_partition),
    LibraryEntry("bottleneck-links", "ringdht",
                 "stub uplinks at 5% bandwidth / 4x latency for 40 s",
                 _bottleneck_links),
    LibraryEntry("slow-nodes", "chord",
                 "30% of nodes straggle at 8x latency for 40 s",
                 _slow_nodes),
    LibraryEntry("churn-storm", "ringdht",
                 "half the membership churns in 45 s on a lossy network",
                 _churn_storm),
    LibraryEntry("partition-under-churn", "ringdht",
                 "churn overlapping a 20 s partition",
                 _partition_under_churn),
    LibraryEntry("scribe-flapping", "scribe-pastry",
                 "multicast through a flapping directed partition",
                 _scribe_flapping),
)

_BY_NAME = {entry.name: entry for entry in LIBRARY}


def library_names() -> list[str]:
    return [entry.name for entry in LIBRARY]


def library_entry(name: str) -> LibraryEntry:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ScenarioError(
            f"unknown library scenario {name!r}; "
            f"available: {library_names()}") from None


def library_spec(name: str, seed: int = 0) -> ScenarioSpec:
    """The named library scenario as a runnable spec."""
    return library_entry(name).spec(seed)
