"""Batched multi-seed scenario execution.

One :class:`ScenarioSpec` run is a single sample of a stochastic system; the
paper's figures are means over repeated ModelNet runs.  The
:class:`ScenarioRunner` replays a spec across a list of seeds (fresh
simulator, topology, and RNG streams per seed) and aggregates every numeric
metric into :class:`SummaryStats` — mean, standard deviation, extrema, and
percentiles — which is what the benchmarks record in ``BENCH_core.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .metrics import mean, percentile
from .reports import format_table
from .scenario import ScenarioResult, ScenarioSpec

#: Seeds used when the caller does not choose their own replication set.
DEFAULT_SEEDS = (1, 2, 3)


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate of one metric across seeds."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStats":
        values = [float(v) for v in values]
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        average = mean(values)
        variance = sum((v - average) ** 2 for v in values) / len(values)
        return cls(
            count=len(values),
            mean=average,
            stddev=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 0.5),
            p95=percentile(values, 0.95),
        )


@dataclass
class ScenarioSummary:
    """All per-seed results of one spec plus the cross-seed aggregates."""

    name: str
    seeds: list[int]
    results: list[ScenarioResult]
    aggregate: dict[str, SummaryStats]

    def metric(self, key: str) -> SummaryStats:
        try:
            return self.aggregate[key]
        except KeyError as exc:
            raise KeyError(
                f"no metric {key!r} in scenario {self.name!r} "
                f"(have: {sorted(self.aggregate)})") from exc

    def table(self) -> str:
        """The aggregate as a fixed-width text table (one row per metric)."""
        rows = [(key, stats.mean, stats.stddev, stats.minimum, stats.maximum)
                for key, stats in sorted(self.aggregate.items())]
        return format_table(
            ["metric", "mean", "stddev", "min", "max"], rows,
            title=f"scenario {self.name!r} over seeds {self.seeds}")


class ScenarioRunner:
    """Execute one :class:`ScenarioSpec` across multiple seeds.

    ``shards`` runs every seed on the multi-process sharded kernel
    (:meth:`ScenarioSpec.run_sharded`); ``jobs`` runs the seeds themselves in
    parallel worker processes — seeds are independent replications, so this
    is embarrassingly parallel.  The two compose (each seed worker forks its
    own shard workers), though on a machine with C cores ``jobs * shards``
    beyond C buys nothing.
    """

    def __init__(self, spec: ScenarioSpec,
                 seeds: Optional[Sequence[int]] = None, *,
                 shards: int = 1, jobs: int = 1) -> None:
        self.spec = spec
        self.seeds = list(seeds) if seeds is not None else list(DEFAULT_SEEDS)
        if not self.seeds:
            raise ValueError("ScenarioRunner needs at least one seed")
        if shards < 1 or jobs < 1:
            raise ValueError("shards and jobs must be >= 1")
        self.shards = shards
        self.jobs = jobs

    def _run_seed(self, seed: int) -> ScenarioResult:
        seeded = self.spec.with_seed(seed)
        # Only pass the knob when sharding was requested: spec stand-ins in
        # tests (and any out-of-tree ScenarioSpec ducks) predate it.
        result = seeded.run(shards=self.shards) if self.shards != 1 \
            else seeded.run()
        if self.jobs > 1:
            # The live experiment holds the simulator and closures — not
            # picklable, and aggregation never reads it; drop it before the
            # result travels back over the worker pipe.
            result.experiment = None
        return result

    def run(self) -> ScenarioSummary:
        if self.jobs > 1:
            from ..runtime.sharded.mailbox import fork_map
            results = fork_map(self._run_seed, self.seeds, jobs=self.jobs,
                               label="seed worker")
        else:
            results = [self._run_seed(seed) for seed in self.seeds]
        # Aggregate over the *union* of metric keys: fuzzed and adversarial
        # scenarios routinely produce seed-dependent metric sets (a model
        # that only fires under some seeds), and intersecting would silently
        # drop those metrics from the summary.  SummaryStats.count records
        # how many seeds actually reported each key.
        keys = set()
        for result in results:
            keys |= set(result.metrics)
        aggregate = {
            key: SummaryStats.from_values(
                [result.metrics[key] for result in results
                 if key in result.metrics])
            for key in keys
        }
        return ScenarioSummary(name=self.spec.name, seeds=list(self.seeds),
                               results=results, aggregate=aggregate)
