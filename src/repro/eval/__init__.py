"""Evaluation framework: metrics, experiments, scenarios, and LOC accounting."""

from .experiment import ExperimentConfig, OverlayExperiment
from .loc import expansion_factor, generated_loc, spec_loc
from .runner import ScenarioRunner, ScenarioSummary, SummaryStats
from .scenario import (
    ChurnModel,
    CrashModel,
    PartitionModel,
    SampleSeries,
    ScenarioError,
    ScenarioResult,
    ScenarioSpec,
    WorkloadModel,
)
from .metrics import (
    StretchSample,
    average_correct_route_entries,
    chord_correct_entry_count,
    correct_chord_fingers,
    correct_successor_fraction,
    group_by_site,
    link_stress,
    mean,
    multicast_tree_depths,
    percentile,
    relative_delay_penalty,
    stretch_samples,
)
from .reports import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "OverlayExperiment",
    "ChurnModel",
    "CrashModel",
    "PartitionModel",
    "SampleSeries",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioSummary",
    "SummaryStats",
    "WorkloadModel",
    "expansion_factor",
    "generated_loc",
    "spec_loc",
    "StretchSample",
    "average_correct_route_entries",
    "chord_correct_entry_count",
    "correct_chord_fingers",
    "correct_successor_fraction",
    "group_by_site",
    "link_stress",
    "mean",
    "multicast_tree_depths",
    "percentile",
    "relative_delay_penalty",
    "stretch_samples",
    "format_series",
    "format_table",
]
