"""The overlay experiment harness.

An :class:`OverlayExperiment` is the reproduction's equivalent of one
ModelNet run: a topology, an emulator, N overlay nodes all running the same
protocol stack, a bootstrap, and the *primitives* the scenario engine
(:mod:`repro.eval.scenario`) compiles its event models onto — joining,
fail-stop crashes, recoveries, partitions, and link cuts.

Historically this class also carried the measurement patterns of the paper's
figures directly; those methods remain, but are now thin wrappers over the
scenario models (``init_all`` over :class:`~repro.eval.scenario.ChurnModel`,
``multicast_latency_probe`` over
:class:`~repro.eval.scenario.WorkloadModel`), so a script can start from the
simple API and graduate to full :class:`~repro.eval.scenario.ScenarioSpec`
descriptions without the two paths diverging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Type

from ..network.emulator import NetworkEmulator
from ..network.topology import Topology, TopologyError, transit_stub_topology
from ..runtime.agent import Agent
from ..runtime.engine import Simulator
from ..runtime.failure import FailureDetectorConfig
from ..runtime.node import MacedonNode
from ..runtime.tracing import Tracer


@dataclass
class ExperimentConfig:
    """Parameters of one overlay experiment."""

    num_nodes: int
    seed: int = 0
    topology: Optional[Topology] = None
    random_loss_rate: float = 0.0
    strict_locking: bool = True
    #: Seconds of simulated time allowed for overlay construction/convergence.
    convergence_time: float = 120.0
    #: Failure-detector tuning (the paper's f/g) applied to every node.
    failure_config: Optional[FailureDetectorConfig] = None
    #: Observability opt-in (:class:`repro.obs.ObsConfig`).  Consulted at
    #: construction time because the tracer's category policy must exist
    #: before any agent precomputes its trace gates.
    obs: Optional[object] = None


class OverlayExperiment:
    """One emulated deployment of a protocol stack across many nodes."""

    def __init__(self, agent_classes: Sequence[Type[Agent]],
                 config: ExperimentConfig) -> None:
        if config.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.config = config
        self.agent_classes = list(agent_classes)
        self.simulator = Simulator(seed=config.seed)
        self.topology = config.topology or transit_stub_topology(
            config.num_nodes, seed=config.seed)
        capacity = len(self.topology.clients)
        if config.num_nodes > capacity:
            raise TopologyError(
                f"num_nodes={config.num_nodes} exceeds the {capacity} client "
                f"attachment points of topology {self.topology.name!r}; "
                f"generate the topology with num_clients >= {config.num_nodes} "
                f"(or lower num_nodes) so every overlay node gets its own "
                f"access link")
        self.emulator = NetworkEmulator(self.simulator, self.topology,
                                        random_loss_rate=config.random_loss_rate)
        if config.obs is not None:
            from ..obs import build_tracer
            self.tracer = build_tracer(config.obs)
        else:
            self.tracer = Tracer()
        self.nodes: list[MacedonNode] = [
            MacedonNode(self.simulator, self.emulator, self.agent_classes,
                        tracer=self.tracer, strict_locking=config.strict_locking,
                        failure_config=config.failure_config)
            for _ in range(config.num_nodes)
        ]
        self.bootstrap = self.nodes[0]
        self._by_address = {node.address: node for node in self.nodes}
        #: RNG every scenario model applied to this experiment draws from.
        self.scenario_rng = self.simulator.fork_rng("scenario")
        #: Models compiled onto this experiment's timeline, in apply order.
        self.compiled_models: list = []
        #: Stream ids claimed by applied workload models (kept distinct so
        #: concurrent workloads never score each other's probes).
        self.workload_streams: set[int] = set()
        #: Optional idempotent tuning hook (ScenarioSpec.configure).  Re-run
        #: after every node recovery, because recovery rebuilds the agent
        #: stack from the original classes and would otherwise silently
        #: revert per-node protocol tuning on rejoined nodes.
        self.configure_hook: Optional[Callable[["OverlayExperiment"], None]] = None
        #: Sharded execution (set by :meth:`enter_shard` inside a worker):
        #: addresses of the nodes this shard owns, or ``None`` when the
        #: experiment runs whole (single process, or a one-shard plan).
        self._shard_owned: Optional[set[int]] = None
        self._shard_id = 0
        self._shard_plan = None
        #: Owner-gated dispatches this shard popped but skipped (model events
        #: are scheduled pre-fork on every shard's heap, so each skip is one
        #: event the single-process run would not have executed here; the
        #: worker subtracts them to report a shard-count-independent
        #: ``sim.events_processed``).
        self.shard_skipped_events = 0

    # ----------------------------------------------------------------- plumbing
    def node(self, address: int) -> MacedonNode:
        return self._by_address[address]

    def _resolve_node(self, node) -> MacedonNode:
        """Accept a node object or a node *index* (scenario models use indices)."""
        if isinstance(node, MacedonNode):
            return node
        return self.nodes[node]

    @property
    def lowest_protocol(self) -> str:
        return self.agent_classes[0].PROTOCOL

    @property
    def highest_protocol(self) -> str:
        return self.agent_classes[-1].PROTOCOL

    def run(self, duration: float) -> float:
        """Advance the simulation by *duration* seconds."""
        return self.simulator.run(until=self.simulator.now + duration)

    def converge(self) -> float:
        """Run for the configured convergence period."""
        return self.run(self.config.convergence_time)

    def states(self) -> dict[str, int]:
        """FSM-state histogram of the lowest-layer agents (a health check).

        Crashed nodes are reported under ``"crashed"`` rather than whatever
        FSM state their dead stack last held.
        """
        histogram: dict[str, int] = {}
        for node in self.nodes:
            state = "crashed" if node.crashed else node.lowest_agent.state
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    def alive_nodes(self) -> list[MacedonNode]:
        return [node for node in self.nodes if node.alive]

    # ------------------------------------------------------- sharded execution
    def owns_node(self, node: MacedonNode) -> bool:
        """Whether this process owns *node* (always true outside sharded runs).

        Inside a shard worker, nodes owned by other shards are dormant
        replicas: they exist (so addresses, topology attachment, and deliver
        handlers resolve) but must never be initialised, crashed, recovered,
        or made to send — their lifecycle plays out on their owner shard and
        reaches this one only as network packets.
        """
        owned = self._shard_owned
        return owned is None or node.address in owned

    def enter_shard(self, shard_id: int, plan, capture) -> None:
        """Install sharded-execution context (called in a forked worker).

        Marks this process's owned nodes (see :meth:`owns_node`) and diverts
        deliveries bound for other shards' hosts into *capture* —
        ``capture(arrival_time, dst_shard, dst_address, packet)``, the shard
        driver's mailbox buffer.  A one-shard plan installs nothing: the
        worker then executes the exact single-process code paths.
        """
        self._shard_id = shard_id
        self._shard_plan = plan
        self.shard_skipped_events = 0
        if plan.num_shards <= 1:
            return
        self._shard_owned = {self.nodes[index].address
                             for index in plan.owned_nodes(shard_id)}
        shard_of_address = {node.address: plan.shard_of_node[index]
                            for index, node in enumerate(self.nodes)}
        self.emulator.install_cross_shard_egress(shard_of_address, shard_id,
                                                 capture)

    # ------------------------------------------------------ scenario primitives
    def join_node(self, node, bootstrap: Optional[int] = None) -> None:
        """Initialise one node against the bootstrap (recovering it first if
        it is currently crashed).  No-op for nodes other shards own."""
        node = self._resolve_node(node)
        if not self.owns_node(node):
            self.shard_skipped_events += 1
            return
        bootstrap = bootstrap if bootstrap is not None else self.bootstrap.address
        if node.crashed:
            self._recover(node, bootstrap)
        else:
            node.macedon_init(bootstrap)

    def crash_node(self, node) -> None:
        """Fail-stop one node.  Idempotent; no-op for nodes other shards own."""
        node = self._resolve_node(node)
        if not self.owns_node(node):
            self.shard_skipped_events += 1
            return
        node.crash()

    def recover_node(self, node, *, rejoin: bool = True) -> None:
        """Recover a crashed node, re-joining the overlay unless told not to.
        No-op for nodes other shards own."""
        node = self._resolve_node(node)
        if not self.owns_node(node):
            self.shard_skipped_events += 1
            return
        self._recover(node, self.bootstrap.address if rejoin else None)

    def _recover(self, node: MacedonNode, bootstrap: Optional[int]) -> None:
        """Recover *node*, re-applying the configure hook to the fresh stack
        (recovery rebuilds agents from the original classes, so per-node
        tuning would otherwise be lost on exactly the churned nodes)."""
        was_crashed = node.crashed
        node.recover(bootstrap)
        if was_crashed and self.configure_hook is not None:
            self.configure_hook(self)

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Host-level partition by node indices (see ``partition_hosts``)."""
        address_groups = [[self._resolve_node(index).address for index in group]
                          for group in groups]
        self.emulator.partition_hosts(address_groups)

    def heal_partition(self) -> None:
        self.emulator.heal_partition()

    def disable_link(self, u: int, v: int) -> None:
        """Cut one underlay edge (targeted route-plan invalidation)."""
        self.emulator.disable_link(u, v)

    def enable_link(self, u: int, v: int) -> None:
        self.emulator.enable_link(u, v)

    def disable_link_direction(self, u: int, v: int) -> None:
        """Blackhole only the u->v direction (asymmetric partition)."""
        self.emulator.disable_link_direction(u, v)

    def enable_link_direction(self, u: int, v: int) -> None:
        self.emulator.enable_link_direction(u, v)

    def degrade_link(self, u: int, v: int, *, bandwidth_factor: float = 1.0,
                     latency_factor: float = 1.0) -> None:
        """Degrade one underlay edge (bottleneck-link fault injection)."""
        self.emulator.degrade_edge(u, v, bandwidth_factor=bandwidth_factor,
                                   latency_factor=latency_factor)

    def restore_link(self, u: int, v: int) -> None:
        self.emulator.restore_edge(u, v)

    def degrade_node(self, node, *, bandwidth_factor: float = 1.0,
                     latency_factor: float = 1.0) -> None:
        """Degrade a node's access links (slow-node fault injection)."""
        self.emulator.degrade_host(self._resolve_node(node).address,
                                   bandwidth_factor=bandwidth_factor,
                                   latency_factor=latency_factor)

    def restore_node(self, node) -> None:
        self.emulator.restore_host(self._resolve_node(node).address)

    def apply_model(self, model, *, horizon: Optional[float] = None,
                    immediate: bool = False):
        """Compile a scenario model and schedule its events from *now*.

        Event times are offsets from the current simulated time.  With
        *immediate*, events due at exactly this instant run synchronously —
        which is how ``init_all()`` keeps its original "nodes are initialised
        when the call returns" contract.  Returns the compiled model.
        """
        horizon = horizon if horizon is not None else self.config.convergence_time
        compiled = model.instantiate(self, self.scenario_rng, horizon)
        self.compiled_models.append(compiled)
        for event in compiled.events:
            if immediate and event.time <= 0.0:
                event.apply()
            else:
                self.simulator.schedule(event.time, self._apply_model_event,
                                        event, label=f"scenario:{event.kind}")
        return compiled

    #: Emulator-level event kinds that intentionally replicate on every shard
    #: (each worker mutates its own network replica so all shards see the same
    #: cuts/degradations).  Node-level kinds (join/crash/recover/group and the
    #: workload kinds) instead self-report their owner-gated skips at the
    #: call site.
    _REPLICATED_EVENT_KINDS = frozenset({"partition", "heal",
                                         "degrade", "restore"})

    def _apply_model_event(self, event) -> None:
        """Dispatch one scheduled scenario event.

        In a multi-shard worker, a replicated emulator-level event executes on
        every shard but must count as *one* processed event after the merge:
        shard 0 is the canonical counter, every other shard books the dispatch
        as skipped.  Single-process runs (``_shard_id == 0``) take the plain
        path untouched.
        """
        event.apply()
        if self._shard_id and event.kind in self._REPLICATED_EVENT_KINDS:
            self.shard_skipped_events += 1

    # -------------------------------------------------------------- measurement
    def init_all(self, *, staggered: float = 0.0) -> None:
        """Call ``macedon_init`` on every node (optionally staggering joins).

        Thin wrapper over :class:`~repro.eval.scenario.ChurnModel` with no
        churn: immediate joins happen synchronously before this returns;
        staggered joins are scheduled ``staggered`` seconds apart.
        """
        from .scenario import ChurnModel

        model = ChurnModel(join="staggered" if staggered > 0 else "immediate",
                           join_spacing=staggered, churn_fraction=0.0)
        self.apply_model(model, immediate=True)

    def multicast_latency_probe(self, source: MacedonNode, group: int,
                                *, packets: int = 5, packet_bytes: int = 1000,
                                gap: float = 0.5,
                                settle: float = 20.0) -> dict[int, float]:
        """Send a short multicast burst and measure per-receiver average latency.

        Returns {receiver address: mean overlay latency in seconds} over the
        packets that receiver actually received.  Used by the NICE stretch
        and latency figures.  Thin wrapper over
        :class:`~repro.eval.scenario.WorkloadModel`: any deliver handlers the
        application registered keep firing during the probe and are restored
        afterwards.
        """
        from .scenario import WorkloadModel

        model = WorkloadModel(kind="multicast",
                              source=self.nodes.index(source), group=group,
                              packets=packets, gap=gap,
                              packet_bytes=packet_bytes)
        compiled = self.apply_model(model)
        try:
            self.run(packets * gap + settle)
        finally:
            compiled.restore()
        observations = compiled.observations
        return {address: sum(values) / len(values)
                for address, values in observations.per_receiver.items()
                if values and address != source.address}

    def sample_over_time(self, sample: Callable[[], float], *, interval: float,
                         duration: float) -> list[tuple[float, float]]:
        """Evaluate ``sample()`` every *interval* seconds for *duration* seconds.

        Used for the Figure-10 convergence curves (routing-table snapshots
        every two seconds while nodes join).
        """
        results: list[tuple[float, float]] = []
        start = self.simulator.now
        elapsed = 0.0
        while elapsed <= duration:
            results.append((elapsed, sample()))
            if elapsed >= duration:
                break
            self.run(interval)
            elapsed = self.simulator.now - start
        return results
