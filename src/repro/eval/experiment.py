"""The overlay experiment harness.

An :class:`OverlayExperiment` is the reproduction's equivalent of one
ModelNet run: a topology, an emulator, N overlay nodes all running the same
protocol stack, a bootstrap, and convenience methods for the measurement
patterns the paper's evaluation uses (multicast latency probes, routing-table
snapshots over time, streaming bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Type

from ..network.emulator import NetworkEmulator
from ..network.topology import Topology, transit_stub_topology
from ..runtime.agent import Agent
from ..runtime.engine import Simulator
from ..runtime.node import MacedonNode
from ..runtime.tracing import Tracer
from ..apps.payload import AppPayload


@dataclass
class ExperimentConfig:
    """Parameters of one overlay experiment."""

    num_nodes: int
    seed: int = 0
    topology: Optional[Topology] = None
    random_loss_rate: float = 0.0
    strict_locking: bool = True
    #: Seconds of simulated time allowed for overlay construction/convergence.
    convergence_time: float = 120.0


class OverlayExperiment:
    """One emulated deployment of a protocol stack across many nodes."""

    def __init__(self, agent_classes: Sequence[Type[Agent]],
                 config: ExperimentConfig) -> None:
        if config.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.config = config
        self.agent_classes = list(agent_classes)
        self.simulator = Simulator(seed=config.seed)
        self.topology = config.topology or transit_stub_topology(
            config.num_nodes, seed=config.seed)
        self.emulator = NetworkEmulator(self.simulator, self.topology,
                                        random_loss_rate=config.random_loss_rate)
        self.tracer = Tracer()
        self.nodes: list[MacedonNode] = [
            MacedonNode(self.simulator, self.emulator, self.agent_classes,
                        tracer=self.tracer, strict_locking=config.strict_locking)
            for _ in range(config.num_nodes)
        ]
        self.bootstrap = self.nodes[0]
        self._by_address = {node.address: node for node in self.nodes}

    # ----------------------------------------------------------------- plumbing
    def node(self, address: int) -> MacedonNode:
        return self._by_address[address]

    @property
    def lowest_protocol(self) -> str:
        return self.agent_classes[0].PROTOCOL

    @property
    def highest_protocol(self) -> str:
        return self.agent_classes[-1].PROTOCOL

    def init_all(self, *, staggered: float = 0.0) -> None:
        """Call ``macedon_init`` on every node (optionally staggering joins)."""
        for index, node in enumerate(self.nodes):
            if staggered > 0 and index > 0:
                self.simulator.schedule(index * staggered, node.macedon_init,
                                        self.bootstrap.address)
            else:
                node.macedon_init(self.bootstrap.address)

    def run(self, duration: float) -> float:
        """Advance the simulation by *duration* seconds."""
        return self.simulator.run(until=self.simulator.now + duration)

    def converge(self) -> float:
        """Run for the configured convergence period."""
        return self.run(self.config.convergence_time)

    def states(self) -> dict[str, int]:
        """FSM-state histogram of the lowest-layer agents (a health check)."""
        histogram: dict[str, int] = {}
        for node in self.nodes:
            state = node.lowest_agent.state
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    # -------------------------------------------------------------- measurement
    def multicast_latency_probe(self, source: MacedonNode, group: int,
                                *, packets: int = 5, packet_bytes: int = 1000,
                                gap: float = 0.5,
                                settle: float = 20.0) -> dict[int, float]:
        """Send a short multicast burst and measure per-receiver average latency.

        Returns {receiver address: mean overlay latency in seconds} over the
        packets that receiver actually received.  Used by the NICE stretch and
        latency figures.
        """
        latencies: dict[int, list[float]] = {}
        for node in self.nodes:
            if node is source:
                continue
            node.macedon_register_handlers(
                deliver=self._latency_recorder(node.address, latencies))
        for index in range(packets):
            payload = AppPayload(seqno=index, sent_at=0.0, source=source.address,
                                 size=packet_bytes)
            self.simulator.schedule(index * gap, self._send_probe, source, group,
                                    payload, packet_bytes)
        self.run(packets * gap + settle)
        return {address: sum(values) / len(values)
                for address, values in latencies.items() if values}

    def _send_probe(self, source: MacedonNode, group: int, payload: AppPayload,
                    packet_bytes: int) -> None:
        stamped = AppPayload(seqno=payload.seqno, sent_at=self.simulator.now,
                             source=payload.source, size=payload.size,
                             stream_id=payload.stream_id)
        source.macedon_multicast(group, stamped, packet_bytes)

    def _latency_recorder(self, address: int,
                          sink: dict[int, list[float]]) -> Callable:
        def _deliver(payload, size, mtype) -> None:
            if isinstance(payload, AppPayload):
                sink.setdefault(address, []).append(self.simulator.now - payload.sent_at)
        return _deliver

    def sample_over_time(self, sample: Callable[[], float], *, interval: float,
                         duration: float) -> list[tuple[float, float]]:
        """Evaluate ``sample()`` every *interval* seconds for *duration* seconds.

        Used for the Figure-10 convergence curves (routing-table snapshots
        every two seconds while nodes join).
        """
        results: list[tuple[float, float]] = []
        start = self.simulator.now
        elapsed = 0.0
        while elapsed <= duration:
            results.append((elapsed, sample()))
            if elapsed >= duration:
                break
            self.run(interval)
            elapsed = self.simulator.now - start
        return results
