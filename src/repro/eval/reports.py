"""Plain-text report formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that formatting consistent and testable.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str = "") -> str:
    """Fixed-width table with a header row, suitable for terminal output."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, series: Iterable[tuple[float, float]],
                  *, x_label: str = "x", y_label: str = "y") -> str:
    """A two-column series (one figure curve) as text."""
    rows = [(f"{x:.2f}", f"{y:.3f}") for x, y in series]
    return format_table([x_label, y_label], rows, title=name)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
