"""Lines-of-code accounting for mac specifications (Figure 7)."""

from __future__ import annotations

from ..codegen.registry import ProtocolRegistry, get_registry


def spec_loc(registry: ProtocolRegistry | None = None) -> dict[str, int]:
    """Non-blank, non-comment lines of every bundled specification."""
    registry = registry or get_registry()
    return registry.lines_of_code()


def generated_loc(registry: ProtocolRegistry | None = None) -> dict[str, int]:
    """Lines of generated Python per protocol (the paper's 'generated C++' count)."""
    registry = registry or get_registry()
    out: dict[str, int] = {}
    for name in registry.available():
        source = registry.generated_source(name)
        out[name] = sum(1 for line in source.splitlines() if line.strip())
    return out


def expansion_factor(registry: ProtocolRegistry | None = None) -> dict[str, float]:
    """Generated-to-specification size ratio per protocol."""
    registry = registry or get_registry()
    spec = spec_loc(registry)
    generated = generated_loc(registry)
    return {name: generated[name] / spec[name] for name in spec if spec[name]}
