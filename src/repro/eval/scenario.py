"""Declarative experiment scenarios.

The paper's evaluation does not just boot N nodes and measure: it joins them
under realistic schedules, kills them, lets the failure detector drive
``error`` transitions, and measures workloads *while* the overlay is
repairing itself.  This module is the ns-style scenario script for the
reproduction: a :class:`ScenarioSpec` is a declarative description of one
such run — which agents, how many nodes, and a set of typed event models —
that compiles onto the simulator timeline and executes deterministically from
a seed.

The event models cover the paper's fault vocabulary plus the adversarial
shapes the scenario fuzzer (:mod:`repro.eval.fuzz`) explores:

* :class:`ChurnModel` — staggered or Poisson joins, plus optional
  leave/rejoin cycling of a fraction of the membership (fail-stop leaves);
* :class:`FlashCrowdModel` — a calm core boot followed by a Poisson burst
  of joins (flash-crowd churn), with optional mass departure;
* :class:`CrashModel` — a correlated fail-stop kill of chosen or sampled
  victims, with optional recovery;
* :class:`CorrelatedCrashModel` — rack-failure-shaped kills: whole
  topology attachment groups fail together;
* :class:`PartitionModel` — a network partition, either host-level groups
  (testbed-style per-host filtering) or physical link cuts, healed later;
* :class:`FlappingPartitionModel` — timed heal-and-recut cycles, optionally
  with one-directional (asymmetric) link cuts;
* :class:`DegradeModel` — slow nodes and bottleneck links: bandwidth/latency
  degradation of access links or named edges, optionally restored;
* :class:`GroupModel` — multicast group choreography (create + member joins)
  for tree-building protocols;
* :class:`WorkloadModel` — measurement traffic: multicast bursts, key route
  probes, a replicated key/value workload (``kind="kv"``: Zipf-skewed
  put/get mix against :class:`~repro.apps.kv.KvStore` with quorum
  accounting), or topic pub/sub (``kind="pubsub"``: subscribe fanout plus
  publishes against :class:`~repro.apps.pubsub.PubSub`), all with
  delivery/latency accounting.

Event times are **offsets from the moment the model is applied**;
:meth:`ScenarioSpec.run` applies every model at time zero, so offsets and
absolute times coincide for whole-scenario runs.  All randomness comes from
an RNG forked from the experiment seed, so a spec is a pure function of
``(spec, seed)`` — the fixed-seed determinism tests pin this.

:class:`~repro.eval.runner.ScenarioRunner` executes one spec across several
seeds and aggregates the resulting metrics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence, Type, Union

from ..apps.payload import AppPayload
from ..runtime.agent import Agent
from ..runtime.failure import FailureDetectorConfig
from ..network.topology import Topology


class ScenarioError(ValueError):
    """Raised for malformed scenario specifications."""


# --------------------------------------------------------------------- events
@dataclass(frozen=True)
class ScenarioEvent:
    """One compiled timeline entry: when, what, and the thunk that does it."""

    time: float          # offset in seconds from the moment the model is applied
    kind: str            # "join" | "crash" | "recover" | "partition" | ...
    detail: str
    apply: Callable[[], None]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ScenarioError(
                f"{self.kind} event scheduled {self.time} s in the past")


class CompiledModel:
    """A model bound to one experiment: its events plus a metrics closure."""

    def __init__(self, label: str, events: Sequence[ScenarioEvent],
                 finalize: Optional[Callable[[], dict[str, float]]] = None,
                 restore: Optional[Callable[[], None]] = None) -> None:
        self.label = label
        self.events = list(events)
        self._finalize = finalize
        self._restore = restore
        #: Sharded-execution hooks (multi-process runs only).  Models whose
        #: finalize reads *runtime* counters set both: ``shard_payload()``
        #: returns the shard-local raw observations and
        #: ``shard_merge(payloads)`` recomputes the metrics dict from all
        #: shards' payloads with the exact single-process formulas.  Models
        #: whose finalize is a pure function of compile-time state (the
        #: common case — compilation happens once, before the fork) need
        #: neither: their per-shard metrics are verified identical and used
        #: as-is.
        self.shard_payload: Optional[Callable[[], Any]] = None
        self.shard_merge: Optional[Callable[[list], dict[str, float]]] = None

    def metrics(self) -> dict[str, float]:
        """Model-specific metrics, collected after the run."""
        return dict(self._finalize()) if self._finalize is not None else {}

    def restore(self) -> None:
        """Undo any handler instrumentation the model installed."""
        if self._restore is not None:
            self._restore()


# --------------------------------------------------------------------- models
@dataclass(frozen=True)
class ScenarioModel:
    """Base class of the typed event models.

    ``label`` names the model's metrics in :class:`ScenarioResult`
    (``<label>.<metric>``); each subclass has a sensible default.
    """

    label: str = ""

    def default_label(self) -> str:
        return type(self).__name__.removesuffix("Model").lower()

    def instantiate(self, experiment: "OverlayExperiment",  # noqa: F821
                    rng, horizon: float) -> CompiledModel:
        raise NotImplementedError


def _resolve_indices(experiment, indices: Sequence[int], what: str) -> list[int]:
    count = len(experiment.nodes)
    out = []
    for index in indices:
        if not -count <= index < count:
            raise ScenarioError(
                f"{what} index {index} out of range for {count} nodes")
        out.append(index % count)
    return out


def _validate_partition_targets(experiment, groups, links, model: str) -> None:
    """Reject unknown hosts/edges when the model compiles, not mid-run.

    A bad group member or a link absent from the topology used to surface
    only when the partition event fired (as an AddressError/RoutingError
    deep inside the emulator, long after ``build()`` returned); fuzzed and
    hand-written specs alike want the whole list of offenders up front.
    """
    count = len(experiment.nodes)
    bad_members = sorted({index for group in groups for index in group
                          if not -count <= index < count})
    if bad_members:
        raise ScenarioError(
            f"{model} group members out of range for {count} nodes: "
            f"{bad_members}")
    graph = experiment.topology.graph
    bad_links = [(u, v) for u, v in links if not graph.has_edge(u, v)]
    if bad_links:
        raise ScenarioError(
            f"{model} links not in topology "
            f"{experiment.topology.name!r}: {bad_links}")


@dataclass(frozen=True)
class ChurnModel(ScenarioModel):
    """Join schedule plus optional leave/rejoin churn.

    Joins: every node calls ``macedon_init`` against the experiment
    bootstrap — all at once (``join="immediate"``), spaced ``join_spacing``
    seconds apart (``"staggered"``), or with exponential inter-arrival gaps
    of mean ``1/join_rate`` (``"poisson"``).  Node 0 (the bootstrap) always
    joins first, at ``start``.

    Churn: ``churn_fraction`` of the non-exempt membership is sampled; each
    victim fail-stops at a uniform time in ``[churn_start, churn_end]`` and,
    if ``rejoin`` is set, recovers ``downtime`` seconds later with a factory
    reset and a fresh ``macedon_init`` — the recovery path the paper drives
    on ModelNet.
    """

    join: str = "staggered"          # "immediate" | "staggered" | "poisson"
    join_spacing: float = 0.25
    join_rate: float = 4.0           # joins per second for "poisson"
    start: float = 0.0
    churn_fraction: float = 0.0
    churn_start: float = 0.0
    churn_end: Optional[float] = None
    downtime: float = 10.0
    rejoin: bool = True
    exempt: tuple[int, ...] = (0,)   # node indices never churned (bootstrap)

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if self.join not in ("immediate", "staggered", "poisson"):
            raise ScenarioError(f"unknown join mode {self.join!r}")
        events: list[ScenarioEvent] = []
        crashes = 0

        when = self.start
        join_at: list[float] = []
        for index in range(len(experiment.nodes)):
            if index > 0:
                if self.join == "staggered":
                    when = self.start + index * self.join_spacing
                elif self.join == "poisson":
                    when += rng.expovariate(self.join_rate)
            join_at.append(when)
            events.append(ScenarioEvent(
                when, "join", f"node {index} joins",
                lambda i=index: experiment.join_node(i)))

        if self.churn_fraction > 0:
            exempt = set(_resolve_indices(experiment, self.exempt, "exempt"))
            candidates = [i for i in range(len(experiment.nodes))
                          if i not in exempt]
            count = min(len(candidates),
                        round(self.churn_fraction * len(candidates)))
            victims = sorted(rng.sample(candidates, count))
            end = self.churn_end if self.churn_end is not None else horizon
            window_end = max(self.churn_start,
                             end - (self.downtime if self.rejoin else 0.0))
            for index in victims:
                # A victim cannot churn out before it has joined: a crash
                # scheduled earlier would be silently undone by the join
                # (join_node recovers crashed nodes), counting a cycle that
                # delivered zero downtime.
                window_start = max(self.churn_start, join_at[index])
                at = rng.uniform(window_start, max(window_start, window_end))
                crashes += 1
                events.append(ScenarioEvent(
                    at, "crash", f"node {index} churns out",
                    lambda i=index: experiment.crash_node(i)))
                if self.rejoin:
                    events.append(ScenarioEvent(
                        at + self.downtime, "recover", f"node {index} rejoins",
                        lambda i=index: experiment.recover_node(i, rejoin=True)))

        label = self.label or self.default_label()
        return CompiledModel(label, events,
                             finalize=lambda: {"joins": float(len(experiment.nodes)),
                                               "churn_cycles": float(crashes)})


@dataclass(frozen=True)
class CrashModel(ScenarioModel):
    """A correlated fail-stop kill at one instant, with optional recovery.

    Victims are either named node indices or a sampled ``fraction`` of the
    non-exempt membership.  With ``recover_after`` set, every victim comes
    back that many seconds later (factory-reset, re-joined via the
    bootstrap); otherwise the kill is permanent for the rest of the run.
    """

    at: float = 0.0
    victims: tuple[int, ...] = ()
    fraction: float = 0.0
    recover_after: Optional[float] = None
    exempt: tuple[int, ...] = (0,)

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if self.victims and self.fraction:
            raise ScenarioError("give CrashModel victims or fraction, not both")
        if self.victims:
            chosen = _resolve_indices(experiment, self.victims, "victim")
        else:
            exempt = set(_resolve_indices(experiment, self.exempt, "exempt"))
            candidates = [i for i in range(len(experiment.nodes))
                          if i not in exempt]
            count = min(len(candidates), round(self.fraction * len(candidates)))
            chosen = sorted(rng.sample(candidates, count))
        events: list[ScenarioEvent] = []
        for index in chosen:
            events.append(ScenarioEvent(
                self.at, "crash", f"node {index} fail-stops",
                lambda i=index: experiment.crash_node(i)))
            if self.recover_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.recover_after, "recover",
                    f"node {index} recovers",
                    lambda i=index: experiment.recover_node(i, rejoin=True)))
        label = self.label or self.default_label()
        return CompiledModel(label, events,
                             finalize=lambda: {"victims": float(len(chosen))})


@dataclass(frozen=True)
class PartitionModel(ScenarioModel):
    """Cut the network at ``at``; optionally heal ``heal_after`` seconds later.

    Two cut mechanisms, matching the emulator's fault hooks:

    * ``groups`` — host-level partition: node-index groups whose members can
      only reach hosts in their own group; unlisted nodes form their own
      implicit group, so a single listed group is isolated from everyone
      else (``NetworkEmulator.partition_hosts``);
    * ``links`` — physical cuts of specific underlay edges
      (``NetworkEmulator.disable_link`` with targeted route invalidation).
    """

    at: float = 0.0
    heal_after: Optional[float] = None
    groups: tuple[tuple[int, ...], ...] = ()
    links: tuple[tuple[int, int], ...] = ()

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if not self.groups and not self.links:
            raise ScenarioError("PartitionModel needs groups or links to cut")
        _validate_partition_targets(experiment, self.groups, self.links,
                                    "PartitionModel")
        events: list[ScenarioEvent] = []
        if self.groups:
            events.append(ScenarioEvent(
                self.at, "partition",
                f"partition into {len(self.groups)} host groups",
                lambda: experiment.partition([list(g) for g in self.groups])))
            if self.heal_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.heal_after, "heal", "partition heals",
                    experiment.heal_partition))
        for (u, v) in self.links:
            events.append(ScenarioEvent(
                self.at, "link-cut", f"link ({u}, {v}) cut",
                lambda u=u, v=v: experiment.disable_link(u, v)))
            if self.heal_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.heal_after, "link-heal",
                    f"link ({u}, {v}) heals",
                    lambda u=u, v=v: experiment.enable_link(u, v)))
        label = self.label or self.default_label()
        return CompiledModel(label, events)


@dataclass(frozen=True)
class FlashCrowdModel(ScenarioModel):
    """Flash-crowd churn: a calm core boot, then the crowd slams in.

    Nodes ``0..core-1`` join staggered ``core_spacing`` seconds apart from
    time zero (node 0 is the bootstrap).  The remaining nodes — the crowd —
    arrive in a Poisson burst starting at ``at`` with exponential
    inter-arrival gaps of mean ``1/burst_rate`` joins per second.  With
    ``stay`` set, every crowd node fail-stops ``stay`` seconds after its own
    join and does not return: the flash crowd leaves as abruptly as it came.
    """

    core: int = 1
    core_spacing: float = 0.5
    at: float = 30.0
    burst_rate: float = 20.0         # crowd joins per second
    stay: Optional[float] = None

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        num_nodes = len(experiment.nodes)
        if not 1 <= self.core <= num_nodes:
            raise ScenarioError(
                f"FlashCrowdModel core {self.core} out of range for "
                f"{num_nodes} nodes")
        if self.burst_rate <= 0:
            raise ScenarioError("FlashCrowdModel burst_rate must be positive")
        if self.stay is not None and self.stay <= 0:
            raise ScenarioError("FlashCrowdModel stay must be positive")
        events: list[ScenarioEvent] = []
        for index in range(self.core):
            events.append(ScenarioEvent(
                index * self.core_spacing, "join",
                f"node {index} joins (core)",
                lambda i=index: experiment.join_node(i)))
        when = self.at
        last = self.at
        for index in range(self.core, num_nodes):
            when += rng.expovariate(self.burst_rate)
            last = when
            events.append(ScenarioEvent(
                when, "join", f"node {index} joins (crowd)",
                lambda i=index: experiment.join_node(i)))
            if self.stay is not None:
                events.append(ScenarioEvent(
                    when + self.stay, "crash", f"node {index} departs (crowd)",
                    lambda i=index: experiment.crash_node(i)))
        crowd = num_nodes - self.core
        label = self.label or self.default_label()
        return CompiledModel(label, events,
                             finalize=lambda: {
                                 "crowd": float(crowd),
                                 "burst_seconds": last - self.at,
                             })


@dataclass(frozen=True)
class CorrelatedCrashModel(ScenarioModel):
    """Rack-failure-shaped kills: whole failure domains go down together.

    Nodes are grouped into failure domains by the *stub domain* their access
    router belongs to (the connected components of the topology's stub-role
    routers — clients behind one stub clique share power/uplink, the classic
    rack); ``racks`` of those domains are sampled and every non-exempt
    member fail-stops at ``at``.  With ``recover_after`` set, the victims
    all come back that many seconds later — a rack power-cycle rather than
    a permanent loss.  On topologies without stub roles each attachment
    router is its own domain.
    """

    at: float = 10.0
    racks: int = 1
    recover_after: Optional[float] = None
    exempt: tuple[int, ...] = (0,)   # the bootstrap survives by default

    @staticmethod
    def failure_domains(experiment) -> dict[int, int]:
        """Map each topology attachment router to a failure-domain id."""
        import networkx as nx

        from ..network.topology import ROLE_ATTR

        graph = experiment.topology.graph
        stub_nodes = [node for node, data in graph.nodes(data=True)
                      if data.get(ROLE_ATTR) == "stub"]
        domain_of: dict[int, int] = {}
        components = sorted(
            (sorted(component) for component in
             nx.connected_components(graph.subgraph(stub_nodes))),
            key=lambda members: members[0])
        for domain, members in enumerate(components):
            for member in members:
                domain_of[member] = domain
        # Client attachment points inherit the domain of the access router
        # they hang off (a client's topology node is the client vertex
        # itself, not the router).
        for client in experiment.topology.clients:
            for neighbor in graph.neighbors(client):
                if neighbor in domain_of:
                    domain_of[client] = domain_of[neighbor]
                    break
        return domain_of

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        exempt = set(_resolve_indices(experiment, self.exempt, "exempt"))
        domain_of = self.failure_domains(experiment)
        by_rack: dict[int, list[int]] = {}
        for index, node in enumerate(experiment.nodes):
            if index not in exempt:
                attachment = node.host.topology_node
                # Routers outside any stub domain (custom topologies) form
                # singleton domains, keyed disjointly from the real ones.
                rack = domain_of.get(attachment, -1 - attachment)
                by_rack.setdefault(rack, []).append(index)
        if not 1 <= self.racks <= len(by_rack):
            raise ScenarioError(
                f"CorrelatedCrashModel racks={self.racks} out of range: "
                f"topology has {len(by_rack)} failure domains with "
                f"non-exempt members")
        chosen = rng.sample(sorted(by_rack), self.racks)
        victims = sorted(index for rack in chosen for index in by_rack[rack])
        events: list[ScenarioEvent] = []
        for index in victims:
            events.append(ScenarioEvent(
                self.at, "crash", f"node {index} fails with its rack",
                lambda i=index: experiment.crash_node(i)))
            if self.recover_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.recover_after, "recover",
                    f"node {index} recovers with its rack",
                    lambda i=index: experiment.recover_node(i, rejoin=True)))
        label = self.label or self.default_label()
        return CompiledModel(label, events,
                             finalize=lambda: {"racks": float(self.racks),
                                               "victims": float(len(victims))})


@dataclass(frozen=True)
class FlappingPartitionModel(ScenarioModel):
    """A partition that heals and recuts on a timer — the flapping-link shape
    that stresses failure detectors far harder than one clean cut.

    Each of ``cycles`` cycles starts at ``at + k * period``: the partition is
    installed, held for ``duty * period`` seconds, then healed for the rest
    of the period.  The cut is either host-level ``groups`` (as in
    :class:`PartitionModel`) or physical ``links``; with ``directed`` set,
    link cuts blackhole only the ``u -> v`` direction of each listed edge
    (asymmetric partition: one side keeps hearing the other).
    """

    at: float = 0.0
    period: float = 20.0
    duty: float = 0.5                # fraction of each period spent cut
    cycles: int = 3
    groups: tuple[tuple[int, ...], ...] = ()
    links: tuple[tuple[int, int], ...] = ()
    directed: bool = False

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if not self.groups and not self.links:
            raise ScenarioError(
                "FlappingPartitionModel needs groups or links to cut")
        if self.directed and not self.links:
            raise ScenarioError(
                "FlappingPartitionModel directed cuts need links "
                "(host groups have no direction)")
        if self.period <= 0 or not 0 < self.duty < 1 or self.cycles < 1:
            raise ScenarioError(
                "FlappingPartitionModel needs period > 0, 0 < duty < 1 "
                "and cycles >= 1")
        _validate_partition_targets(experiment, self.groups, self.links,
                                    "FlappingPartitionModel")
        events: list[ScenarioEvent] = []
        for cycle in range(self.cycles):
            cut_at = self.at + cycle * self.period
            heal_at = cut_at + self.duty * self.period
            if self.groups:
                events.append(ScenarioEvent(
                    cut_at, "partition",
                    f"flap {cycle}: partition into {len(self.groups)} groups",
                    lambda: experiment.partition(
                        [list(g) for g in self.groups])))
                events.append(ScenarioEvent(
                    heal_at, "heal", f"flap {cycle}: partition heals",
                    experiment.heal_partition))
            for (u, v) in self.links:
                if self.directed:
                    events.append(ScenarioEvent(
                        cut_at, "link-cut",
                        f"flap {cycle}: direction ({u} -> {v}) cut",
                        lambda u=u, v=v: experiment.disable_link_direction(u, v)))
                    events.append(ScenarioEvent(
                        heal_at, "link-heal",
                        f"flap {cycle}: direction ({u} -> {v}) heals",
                        lambda u=u, v=v: experiment.enable_link_direction(u, v)))
                else:
                    events.append(ScenarioEvent(
                        cut_at, "link-cut", f"flap {cycle}: link ({u}, {v}) cut",
                        lambda u=u, v=v: experiment.disable_link(u, v)))
                    events.append(ScenarioEvent(
                        heal_at, "link-heal",
                        f"flap {cycle}: link ({u}, {v}) heals",
                        lambda u=u, v=v: experiment.enable_link(u, v)))
        label = self.label or self.default_label()
        return CompiledModel(
            label, events,
            finalize=lambda: {"cycles": float(self.cycles),
                              "cut_seconds": self.cycles * self.duty * self.period})


@dataclass(frozen=True)
class DegradeModel(ScenarioModel):
    """Slow nodes and bottleneck links: service-rate degradation at runtime.

    At ``at``, the access links of the chosen nodes (named ``hosts`` indices
    or a sampled ``host_fraction`` of the non-exempt membership) and the
    named underlay ``links`` have their bandwidth scaled by
    ``bandwidth_factor`` (down) and latency by ``latency_factor`` (up), via
    the emulator's degrade hooks — routing reweighs the affected edges with
    the same targeted invalidation a link cut uses.  With ``restore_after``
    set, everything returns to its original service rate that many seconds
    later.
    """

    at: float = 0.0
    restore_after: Optional[float] = None
    hosts: tuple[int, ...] = ()
    host_fraction: float = 0.0
    links: tuple[tuple[int, int], ...] = ()
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    exempt: tuple[int, ...] = (0,)

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if self.hosts and self.host_fraction:
            raise ScenarioError(
                "give DegradeModel hosts or host_fraction, not both")
        if not self.hosts and not self.host_fraction and not self.links:
            raise ScenarioError(
                "DegradeModel needs hosts, host_fraction, or links")
        if not 0.0 < self.bandwidth_factor <= 1.0 or self.latency_factor < 1.0:
            raise ScenarioError(
                "DegradeModel needs bandwidth_factor in (0, 1] and "
                "latency_factor >= 1 (degradation only slows things down)")
        if self.bandwidth_factor == 1.0 and self.latency_factor == 1.0:
            raise ScenarioError("DegradeModel with both factors 1.0 is a no-op")
        _validate_partition_targets(experiment, (), self.links, "DegradeModel")
        if self.hosts:
            chosen = sorted(set(_resolve_indices(experiment, self.hosts,
                                                 "degraded host")))
        elif self.host_fraction:
            exempt = set(_resolve_indices(experiment, self.exempt, "exempt"))
            candidates = [i for i in range(len(experiment.nodes))
                          if i not in exempt]
            count = min(len(candidates),
                        round(self.host_fraction * len(candidates)))
            chosen = sorted(rng.sample(candidates, count))
        else:
            chosen = []
        events: list[ScenarioEvent] = []
        for index in chosen:
            events.append(ScenarioEvent(
                self.at, "degrade", f"node {index} access links degrade",
                lambda i=index: experiment.degrade_node(
                    i, bandwidth_factor=self.bandwidth_factor,
                    latency_factor=self.latency_factor)))
            if self.restore_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.restore_after, "restore",
                    f"node {index} access links restore",
                    lambda i=index: experiment.restore_node(i)))
        for (u, v) in self.links:
            events.append(ScenarioEvent(
                self.at, "degrade", f"link ({u}, {v}) degrades",
                lambda u=u, v=v: experiment.degrade_link(
                    u, v, bandwidth_factor=self.bandwidth_factor,
                    latency_factor=self.latency_factor)))
            if self.restore_after is not None:
                events.append(ScenarioEvent(
                    self.at + self.restore_after, "restore",
                    f"link ({u}, {v}) restores",
                    lambda u=u, v=v: experiment.restore_link(u, v)))
        label = self.label or self.default_label()
        return CompiledModel(label, events,
                             finalize=lambda: {"hosts": float(len(chosen)),
                                               "links": float(len(self.links))})


@dataclass(frozen=True)
class GroupModel(ScenarioModel):
    """Multicast group choreography for tree-building protocols.

    Node ``source`` creates ``group`` at ``at``; the ``members`` (every
    other node by default) join it staggered ``spacing`` seconds apart.
    This is the setup a multicast :class:`WorkloadModel` needs on protocols
    like Scribe, expressed as a model so fuzzed and curated specs can drive
    tree protocols without hand-written choreography.  Joins are skipped for
    nodes that are crashed or uninitialised when their join fires.
    """

    group: int = 1
    source: int = 0
    at: float = 0.0
    spacing: float = 0.25
    members: tuple[int, ...] = ()    # empty = everyone except source

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        source = _resolve_indices(experiment, (self.source,),
                                  "group source")[0]
        if self.members:
            members = [index for index in
                       _resolve_indices(experiment, self.members,
                                        "group member")
                       if index != source]
        else:
            members = [index for index in range(len(experiment.nodes))
                       if index != source]
        joined = 0

        def _create() -> None:
            node = experiment.nodes[source]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.alive and node.initialized:
                node.macedon_create_group(self.group)

        def _join(index: int) -> None:
            nonlocal joined
            node = experiment.nodes[index]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.alive and node.initialized:
                node.macedon_join(self.group)
                joined += 1

        events = [ScenarioEvent(
            self.at, "group",
            f"node {source} creates group {self.group}", _create)]
        for offset, index in enumerate(members):
            events.append(ScenarioEvent(
                self.at + (offset + 1) * self.spacing, "group",
                f"node {index} joins group {self.group}",
                lambda i=index: _join(i)))
        label = self.label or self.default_label()
        compiled = CompiledModel(label, events,
                                 finalize=lambda: {"members": float(len(members)),
                                                   "joined": float(joined)})
        # Sharded runs: ``joined`` counts only this shard's owned members
        # (everyone else's join fires on their owner shard), so the merge is
        # a straight sum; ``members`` is compile-time.
        compiled.shard_payload = compiled.metrics
        compiled.shard_merge = lambda payloads: {
            "members": payloads[0]["members"],
            "joined": float(sum(p["joined"] for p in payloads)),
        }
        return compiled


class WorkloadObservations:
    """Accumulated delivery/latency observations of one workload model."""

    def __init__(self) -> None:
        self.sent = 0
        self.skipped = 0          # probes whose sender was down at send time
        self.deliveries = 0       # total deliver upcalls (multicast: many/packet)
        self.duplicates = 0       # same (receiver, seqno) seen twice
        self.latencies: list[float] = []
        self.per_receiver: dict[int, list[float]] = {}
        self.delivered_seqnos: set[int] = set()
        self._seen: set[tuple[int, int]] = set()
        #: (receiver, seqno, latency) per first delivery — the unit sharded
        #: runs merge on: receivers are shard-owned, so (receiver, seqno) is
        #: globally unique and sorting on it gives every shard count K the
        #: same canonical latency order.
        self.records: list[tuple[int, int, float]] = []

    def record(self, receiver: int, payload: AppPayload, now: float) -> None:
        key = (receiver, payload.seqno)
        if key in self._seen:
            self.duplicates += 1
            return
        self._seen.add(key)
        self.deliveries += 1
        self.delivered_seqnos.add(payload.seqno)
        latency = now - payload.sent_at
        self.latencies.append(latency)
        self.per_receiver.setdefault(receiver, []).append(latency)
        self.records.append((receiver, payload.seqno, latency))

    @property
    def success_ratio(self) -> float:
        """Distinct probes delivered anywhere, over probes actually sent."""
        if self.sent == 0:
            return 0.0
        return len(self.delivered_seqnos) / self.sent


class KvObservations:
    """Accumulated client-operation observations of one KV workload."""

    def __init__(self) -> None:
        self.sent = 0
        self.skipped = 0          # ops whose client was down at issue time
        #: One tuple per quorum-completed operation, the unit sharded runs
        #: merge on: ``(seqno, client_addr, kind_code, key, version,
        #: issued_at, completed_at, acks)`` with kind_code 0=put, 1=get.
        #: Seqnos are driver-unique and each op completes on the shard that
        #: owns its client, so sorting on seqno gives every shard count the
        #: same canonical order.
        self.records: list[tuple] = []

    def complete(self, client: int, record) -> None:
        self.records.append((record.seqno, client,
                             0 if record.kind == "put" else 1, record.key,
                             record.version, record.issued_at,
                             record.completed_at, record.acks))


@dataclass
class KvWorkloadState:
    """Compile-time handles a KV workload exposes for invariant checking.

    Attached to the compiled model as ``compiled.kv_state``; the runtime
    invariants (:mod:`repro.eval.invariants`) read it after the run.
    """

    observations: KvObservations
    issued_writes: set          # every (key, version) any client issued
    stores: list                # per-node KvStore instances (index order)
    nodes: list                 # the experiment's nodes (index order)
    replicas: int
    write_quorum: int
    read_quorum: int
    repair_gap: float
    start: float


@dataclass(frozen=True)
class WorkloadModel(ScenarioModel):
    """Measurement traffic injected while the scenario unfolds.

    * ``kind="multicast"`` — a burst of ``packets`` multicast packets from
      node ``source`` to ``group`` (the NICE/SplitStream measurement
      pattern);
    * ``kind="route"`` — key lookup probes: each probe routes a payload to a
      uniformly random key from a random live node (``source=-1``) or a fixed
      one, and succeeds if *any* node delivers it — the "lookup success under
      churn" quantity;
    * ``kind="kv"`` — a replicated key/value workload: every node hosts a
      :class:`~repro.apps.kv.KvStore` (``replicas``-way replication, quorum
      ``write_quorum``/``read_quorum``) and ``packets`` put/get operations
      (``read_fraction`` reads, keys drawn Zipf(``zipf_s``) over ``keys``
      hash-space keys) are issued from random clients (the first ``clients``
      nodes; 0 = everyone).  ``source`` is ignored.  ``repair_gap > 0`` adds
      periodic anti-entropy sweeps.  Reports quorum success, throughput,
      latency, and the consistency metrics of :mod:`repro.eval.metrics`;
    * ``kind="pubsub"`` — topic pub/sub: every node hosts a
      :class:`~repro.apps.pubsub.PubSub`, ``topics`` topics are created and
      subscribed to (``fanout`` random subscribers each; 0 = everyone), then
      ``packets`` publications are multicast from ``source`` (or random
      publishers with ``source=-1``).  Requires a group-capable overlay
      (Scribe/SplitStream).

    Deliver handlers are chained onto every node when the model is applied
    and the previously registered handlers are invoked afterwards, then
    restored when the scenario finishes — application instrumentation
    survives being measured.
    """

    kind: str = "multicast"        # "multicast" | "route" | "kv" | "pubsub"
    source: int = 0                # node index; -1 = random sender per probe
    group: int = 1
    start: float = 0.0
    packets: int = 5
    gap: float = 0.5
    packet_bytes: int = 1000
    # ---- kind="kv" knobs
    keys: int = 64                 # distinct keys in the working set
    zipf_s: float = 1.1            # key-popularity skew (0 = uniform)
    read_fraction: float = 0.7     # fraction of ops that are gets
    replicas: int = 3              # N-way replication
    write_quorum: int = 2          # W acks complete a put
    read_quorum: int = 2           # Q replies complete a get (max version wins)
    clients: int = 0               # ops come from the first N nodes; 0 = all
    repair_gap: float = 0.0        # anti-entropy period; 0 = disabled
    # ---- kind="pubsub" knobs
    topics: int = 4                # number of topics
    fanout: int = 0                # subscribers per topic; 0 = every node
    #: Stream identity stamped on payloads; 0 (the default) auto-assigns a
    #: distinct id per applied workload so concurrent workloads never score
    #: each other's probes.  Auto ids start at AUTO_STREAM_BASE, well clear
    #: of the small ids application traffic conventionally uses (e.g. the
    #: RandomRoute app hardcodes stream 1) — otherwise the recorder would
    #: cross-score app payloads as probes.
    stream_id: int = 0

    #: First auto-assigned workload stream id.
    AUTO_STREAM_BASE = 1000

    def instantiate(self, experiment, rng, horizon: float) -> CompiledModel:
        if self.kind not in ("multicast", "route", "kv", "pubsub"):
            raise ScenarioError(f"unknown workload kind {self.kind!r}")
        used_streams = experiment.workload_streams
        if self.stream_id:
            if self.stream_id in used_streams:
                raise ScenarioError(
                    f"workload stream_id {self.stream_id} used twice; each "
                    f"concurrent workload needs its own stream")
            stream_id = self.stream_id
        else:
            stream_id = self.AUTO_STREAM_BASE
            while stream_id in used_streams:
                stream_id += 1
        used_streams.add(stream_id)
        if self.kind == "kv":
            return self._instantiate_kv(experiment, rng, horizon, stream_id)
        if self.kind == "pubsub":
            return self._instantiate_pubsub(experiment, rng, horizon, stream_id)
        observations = WorkloadObservations()
        simulator = experiment.simulator

        # Chain a latency recorder in front of whatever deliver handler the
        # application registered; keep the originals for restore().
        saved = [(node, node.handlers) for node in experiment.nodes]

        def _chained(node, previous):
            def _deliver(payload, size, mtype) -> None:
                if isinstance(payload, AppPayload) and \
                        payload.stream_id == stream_id:
                    observations.record(node.address, payload, simulator.now)
                if previous.deliver is not None:
                    previous.deliver(payload, size, mtype)
            return _deliver

        for node, previous in saved:
            node.handlers = replace(previous, deliver=_chained(node, previous))

        def _restore() -> None:
            for node, previous in saved:
                node.handlers = previous

        key_space = experiment.nodes[0].lowest_agent.key_space
        num_nodes = len(experiment.nodes)

        def _send(seqno: int, sender_index: int, dest_key: Optional[int]) -> None:
            sender = experiment.nodes[sender_index]
            # Sharded runs: the probe fires (and is counted, sent or
            # skipped) only on the shard that owns the sender — everywhere
            # else the node is a dormant replica whose state is meaningless.
            if not experiment.owns_node(sender):
                experiment.shard_skipped_events += 1
                return
            if sender.crashed or not sender.initialized:
                observations.skipped += 1
                return
            observations.sent += 1
            payload = AppPayload(seqno=seqno, sent_at=simulator.now,
                                 source=sender.address, size=self.packet_bytes,
                                 stream_id=stream_id)
            if self.kind == "multicast":
                sender.macedon_multicast(self.group, payload, self.packet_bytes)
            else:
                sender.macedon_route(dest_key, payload, self.packet_bytes)

        # Pre-draw senders and target keys at compile time so the RNG stream
        # does not depend on how events interleave at runtime.
        events: list[ScenarioEvent] = []
        for seqno in range(self.packets):
            if self.source >= 0:
                sender_index = _resolve_indices(experiment, (self.source,),
                                                "workload source")[0]
            else:
                sender_index = rng.randrange(num_nodes)
            dest_key = rng.randrange(key_space.size) if self.kind == "route" else None
            events.append(ScenarioEvent(
                self.start + seqno * self.gap, self.kind,
                f"{self.kind} probe {seqno} from node {sender_index}",
                lambda s=seqno, i=sender_index, k=dest_key: _send(s, i, k)))

        from .metrics import mean, percentile  # local import avoids a cycle

        def _finalize() -> dict[str, float]:
            return {
                "sent": float(observations.sent),
                "skipped": float(observations.skipped),
                "deliveries": float(observations.deliveries),
                "duplicates": float(observations.duplicates),
                "success_ratio": observations.success_ratio,
                "latency_mean": mean(observations.latencies),
                "latency_p95": percentile(observations.latencies, 0.95),
            }

        def _shard_payload() -> dict[str, Any]:
            return {
                "sent": observations.sent,
                "skipped": observations.skipped,
                "duplicates": observations.duplicates,
                "records": observations.records,
            }

        def _shard_merge(payloads: list) -> dict[str, float]:
            # Recompute every metric from the pooled raw observations with
            # the exact _finalize formulas.  Records are sorted on the
            # globally unique (receiver, seqno) key, so the latency order —
            # and therefore the float accumulation in mean() — is the same
            # canonical order for every shard count.
            sent = sum(p["sent"] for p in payloads)
            records = sorted((record for p in payloads for record in
                              p["records"]), key=lambda r: (r[0], r[1]))
            latencies = [latency for _receiver, _seqno, latency in records]
            delivered_seqnos = {seqno for _receiver, seqno, _latency in records}
            return {
                "sent": float(sent),
                "skipped": float(sum(p["skipped"] for p in payloads)),
                "deliveries": float(len(records)),
                "duplicates": float(sum(p["duplicates"] for p in payloads)),
                "success_ratio": (len(delivered_seqnos) / sent) if sent else 0.0,
                "latency_mean": mean(latencies),
                "latency_p95": percentile(latencies, 0.95),
            }

        label = self.label or self.default_label()
        compiled = CompiledModel(label, events, finalize=_finalize,
                                 restore=_restore)
        compiled.observations = observations  # type: ignore[attr-defined]
        compiled.shard_payload = _shard_payload
        compiled.shard_merge = _shard_merge
        return compiled

    # ------------------------------------------------------------- kind="kv"
    def _instantiate_kv(self, experiment, rng, horizon: float,
                        stream_id: int) -> CompiledModel:
        from ..apps.kv import KvStore
        from .metrics import (mean, percentile, phantom_reads,
                              quorum_staleness, replica_coverage,
                              requests_per_second)

        if self.keys < 1:
            raise ScenarioError("kv workload needs keys >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ScenarioError("read_fraction must be within [0, 1]")
        if self.zipf_s < 0:
            raise ScenarioError("zipf_s must be >= 0")
        num_nodes = len(experiment.nodes)
        observations = KvObservations()

        # Install a KvStore on every node; construction chains over whatever
        # handlers the node already has, so keep those for restore().
        saved = [(node, node.handlers) for node in experiment.nodes]
        stores = []
        for node in experiment.nodes:
            store = KvStore(node, replicas=self.replicas,
                            write_quorum=self.write_quorum,
                            read_quorum=self.read_quorum,
                            op_bytes=self.packet_bytes, stream_id=stream_id)
            store.on_complete = (lambda record, client=node.address:
                                 observations.complete(client, record))
            stores.append(store)

        def _restore() -> None:
            for node, previous in saved:
                node.handlers = previous

        def _issue(seqno: int, node_index: int, key: int, version: int) -> None:
            node = experiment.nodes[node_index]
            # Sharded runs: each op fires (and is counted) only on the shard
            # that owns its client node.
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.crashed or not node.initialized:
                observations.skipped += 1
                return
            observations.sent += 1
            if version >= 0:
                stores[node_index].put(key, version, seqno)
            else:
                stores[node_index].get(key, seqno)

        def _repair(node_index: int) -> None:
            node = experiment.nodes[node_index]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if not node.crashed and node.initialized:
                stores[node_index].repair()

        # Pre-draw the whole operation schedule at compile time so the RNG
        # stream does not depend on runtime interleaving.  Keys live in the
        # overlay hash space; popularity is Zipf over their ranks.
        key_space = experiment.nodes[0].lowest_agent.key_space
        key_ids = [rng.randrange(key_space.size) for _ in range(self.keys)]
        weights = [1.0 / (rank + 1) ** self.zipf_s for rank in range(self.keys)]
        total_weight = sum(weights)
        zipf_cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total_weight
            zipf_cdf.append(acc)
        zipf_cdf[-1] = 1.0

        client_pool = min(self.clients, num_nodes) if self.clients > 0 \
            else num_nodes
        issued_writes: set[tuple[int, int]] = set()
        events: list[ScenarioEvent] = []
        for seqno in range(self.packets):
            node_index = rng.randrange(client_pool)
            key = key_ids[bisect.bisect_left(zipf_cdf, rng.random())]
            is_read = rng.random() < self.read_fraction
            # Versions double as values: the op's driver-unique seqno, which
            # makes every read a complete consistency observation.
            version = -1 if is_read else seqno
            if not is_read:
                issued_writes.add((key, version))
            op = "get" if is_read else "put"
            events.append(ScenarioEvent(
                self.start + seqno * self.gap, "kv",
                f"kv {op} {seqno} key {key} from node {node_index}",
                lambda s=seqno, i=node_index, k=key, v=version:
                    _issue(s, i, k, v)))
        if self.repair_gap > 0:
            sweep_at = self.start + self.repair_gap
            while sweep_at < horizon:
                for node_index in range(num_nodes):
                    events.append(ScenarioEvent(
                        sweep_at, "kv-repair",
                        f"node {node_index} anti-entropy sweep",
                        lambda i=node_index: _repair(i)))
                sweep_at += self.repair_gap

        window = max(horizon - self.start, 1e-9)

        def _live_stores() -> list[dict[int, int]]:
            """key->version maps of every live *owned* node (all, unsharded)."""
            result = []
            for index, node in enumerate(experiment.nodes):
                if not experiment.owns_node(node):
                    continue
                if node.alive and node.initialized:
                    stores[index]._check_epoch()
                    result.append(dict(stores[index].store))
            return result

        def _compute(sent: int, skipped: int, records: list,
                     live_stores: list) -> dict[str, float]:
            records = sorted(records)
            latencies = [r[6] - r[5] for r in records]
            puts = [r for r in records if r[2] == 0]
            gets = [r for r in records if r[2] == 1]
            writes = [(r[3], r[4], r[6]) for r in puts]
            targets: dict[int, int] = {}
            for key, version, _completed_at in writes:
                if version > targets.get(key, -1):
                    targets[key] = version
            return {
                "sent": float(sent),
                "skipped": float(skipped),
                "completed": float(len(records)),
                "puts": float(len(puts)),
                "gets": float(len(gets)),
                "quorum_success": (len(records) / sent) if sent else 0.0,
                "requests_per_sec": requests_per_second(len(records), window),
                "latency_mean": mean(latencies),
                "latency_p95": percentile(latencies, 0.95),
                "stale_reads": float(quorum_staleness(
                    [(r[3], r[4], r[5]) for r in gets], writes)),
                "phantom_reads": float(phantom_reads(
                    [(r[3], r[4]) for r in gets], issued_writes)),
                "replica_coverage": replica_coverage(
                    live_stores, targets, self.replicas),
            }

        def _finalize() -> dict[str, float]:
            return _compute(observations.sent, observations.skipped,
                            observations.records, _live_stores())

        def _shard_payload() -> dict[str, Any]:
            return {
                "sent": observations.sent,
                "skipped": observations.skipped,
                "records": observations.records,
                "stores": _live_stores(),
            }

        def _shard_merge(payloads: list) -> dict[str, float]:
            # Each client (and each store) is owned by exactly one shard, so
            # pooling is a disjoint union; _compute re-sorts records on the
            # globally unique seqno, giving every shard count the identical
            # canonical accumulation order.
            return _compute(
                sum(p["sent"] for p in payloads),
                sum(p["skipped"] for p in payloads),
                [record for p in payloads for record in p["records"]],
                [store for p in payloads for store in p["stores"]])

        label = self.label or self.default_label()
        compiled = CompiledModel(label, events, finalize=_finalize,
                                 restore=_restore)
        compiled.kv_state = KvWorkloadState(  # type: ignore[attr-defined]
            observations=observations, issued_writes=issued_writes,
            stores=stores, nodes=list(experiment.nodes),
            replicas=self.replicas, write_quorum=self.write_quorum,
            read_quorum=self.read_quorum, repair_gap=self.repair_gap,
            start=self.start)
        compiled.shard_payload = _shard_payload
        compiled.shard_merge = _shard_merge
        return compiled

    # --------------------------------------------------------- kind="pubsub"
    def _instantiate_pubsub(self, experiment, rng, horizon: float,
                            stream_id: int) -> CompiledModel:
        from ..apps.pubsub import PubSub
        from .metrics import mean, percentile, requests_per_second

        if self.topics < 1:
            raise ScenarioError("pubsub workload needs topics >= 1")
        if self.fanout < 0:
            raise ScenarioError("fanout must be >= 0 (0 = every node)")
        num_nodes = len(experiment.nodes)
        observations = WorkloadObservations()

        saved = [(node, node.handlers) for node in experiment.nodes]
        apps = [PubSub(node, stream_id=stream_id)
                for node in experiment.nodes]

        def _note(receiver: int):
            def _on_delivery(delivery) -> None:
                observations.deliveries += 1
                observations.delivered_seqnos.add(delivery.seqno)
                observations.latencies.append(delivery.latency)
                observations.records.append(
                    (receiver, delivery.seqno, delivery.latency))
            return _on_delivery

        for node, app in zip(experiment.nodes, apps):
            app.on_delivery = _note(node.address)

        def _restore() -> None:
            for node, previous in saved:
                node.handlers = previous

        def _create(topic: int, creator_index: int) -> None:
            node = experiment.nodes[creator_index]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.alive and node.initialized:
                apps[creator_index].create_topic(topic)

        def _subscribe(topic: int, member_index: int) -> None:
            node = experiment.nodes[member_index]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.alive and node.initialized:
                apps[member_index].subscribe(topic)

        def _publish(seqno: int, publisher_index: int, topic: int) -> None:
            node = experiment.nodes[publisher_index]
            if not experiment.owns_node(node):
                experiment.shard_skipped_events += 1
                return
            if node.crashed or not node.initialized:
                observations.skipped += 1
                return
            observations.sent += 1
            apps[publisher_index].publish(topic, seqno,
                                          size=self.packet_bytes)

        # Choreography: create every topic at ``start``, stagger the
        # subscriber joins, then publish after the trees have had a moment
        # to form.  All drawn at compile time for a stable RNG stream.
        creator_index = _resolve_indices(
            experiment, (max(self.source, 0),), "pubsub creator")[0]
        spacing = 0.25
        subscribers: list[list[int]] = []
        for topic in range(self.topics):
            if 0 < self.fanout < num_nodes:
                members = sorted(rng.sample(range(num_nodes), self.fanout))
            else:
                members = list(range(num_nodes))
            subscribers.append(members)
        max_members = max(len(members) for members in subscribers)
        publish_start = self.start + spacing * (max_members + 1) + 2.0

        events: list[ScenarioEvent] = []
        for topic, members in enumerate(subscribers):
            events.append(ScenarioEvent(
                self.start, "pubsub",
                f"node {creator_index} creates topic {topic}",
                lambda t=topic: _create(t, creator_index)))
            for offset, member in enumerate(members):
                events.append(ScenarioEvent(
                    self.start + (offset + 1) * spacing, "pubsub",
                    f"node {member} subscribes to topic {topic}",
                    lambda t=topic, m=member: _subscribe(t, m)))

        expected = 0
        for seqno in range(self.packets):
            topic = rng.randrange(self.topics)
            if self.source >= 0:
                publisher_index = creator_index
            else:
                publisher_index = rng.randrange(num_nodes)
            # Scribe never redelivers to the origin, so a subscribed
            # publisher does not count toward its own publication.
            expected += sum(1 for member in subscribers[topic]
                            if member != publisher_index)
            events.append(ScenarioEvent(
                publish_start + seqno * self.gap, "pubsub",
                f"publish {seqno} on topic {topic} "
                f"from node {publisher_index}",
                lambda s=seqno, p=publisher_index, t=topic:
                    _publish(s, p, t)))

        window = max(horizon - self.start, 1e-9)

        def _sync_duplicates() -> int:
            return sum(app.duplicates for node, app
                       in zip(experiment.nodes, apps)
                       if experiment.owns_node(node))

        def _compute(sent: int, skipped: int, duplicates: int,
                     records: list) -> dict[str, float]:
            records = sorted(records, key=lambda r: (r[0], r[1]))
            latencies = [latency for _receiver, _seqno, latency in records]
            delivered = {seqno for _receiver, seqno, _latency in records}
            return {
                "sent": float(sent),
                "skipped": float(skipped),
                "deliveries": float(len(records)),
                "duplicates": float(duplicates),
                "expected": float(expected),
                "coverage": (len(records) / expected) if expected else 0.0,
                "success_ratio": (len(delivered) / sent) if sent else 0.0,
                "latency_mean": mean(latencies),
                "latency_p95": percentile(latencies, 0.95),
                "publishes_per_sec": requests_per_second(sent, window),
            }

        def _finalize() -> dict[str, float]:
            return _compute(observations.sent, observations.skipped,
                            _sync_duplicates(), observations.records)

        def _shard_payload() -> dict[str, Any]:
            return {
                "sent": observations.sent,
                "skipped": observations.skipped,
                "duplicates": _sync_duplicates(),
                "records": observations.records,
            }

        def _shard_merge(payloads: list) -> dict[str, float]:
            return _compute(
                sum(p["sent"] for p in payloads),
                sum(p["skipped"] for p in payloads),
                sum(p["duplicates"] for p in payloads),
                [record for p in payloads for record in p["records"]])

        label = self.label or self.default_label()
        compiled = CompiledModel(label, events, finalize=_finalize,
                                 restore=_restore)
        compiled.observations = observations  # type: ignore[attr-defined]
        compiled.shard_payload = _shard_payload
        compiled.shard_merge = _shard_merge
        return compiled


# -------------------------------------------------------------------- samples
@dataclass(frozen=True)
class SampleSeries:
    """A named time series sampled every ``interval`` seconds during the run.

    ``fn`` receives the experiment and returns one float — e.g. the
    Figure-10 routing-table-correctness metric.  Samples are taken from
    ``start`` to the scenario end, inclusive of both endpoints.
    """

    name: str
    interval: float
    fn: Callable[["OverlayExperiment"], float]  # noqa: F821
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ScenarioError("sample interval must be positive")


# --------------------------------------------------------------------- result
@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    name: str
    seed: int
    duration: float
    metrics: dict[str, float]
    series: dict[str, list[tuple[float, float]]]
    events: list[tuple[float, str, str]]
    #: The live experiment, for ad-hoc inspection (not used in aggregation).
    experiment: Any = None
    #: Sharded-run diagnostics (``run_sharded`` only): effective shard count,
    #: lookahead window, barrier count, cross-shard packet total.  Kept out
    #: of ``metrics`` because these are partition-dependent by nature while
    #: metrics must be identical for every shard count.
    shard_info: Optional[dict] = None
    #: The ``repro.obs/1`` snapshot when the spec opted into observability
    #: (``ScenarioSpec.obs``); ``None`` otherwise.  Kept separate from
    #: ``metrics``, whose key set and values are pinned byte-identical for
    #: the obs-disabled path.
    obs: Optional[dict] = None


AgentClasses = Union[Sequence[Type[Agent]], Callable[[], Sequence[Type[Agent]]]]


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: agents, population, faults, and workload.

    ``agents`` may be a sequence of agent classes or a zero-argument callable
    returning one (so DSL compilation happens lazily, per spec use).
    ``topology`` may be a :class:`Topology` or a callable ``seed -> Topology``;
    by default a transit-stub topology with ``num_nodes`` clients is generated
    from the seed, so every seed sees a different (but reproducible) network.
    """

    name: str
    agents: AgentClasses
    num_nodes: int
    duration: float
    seed: int = 0
    topology: Union[Topology, Callable[[int], Topology], None] = None
    random_loss_rate: float = 0.0
    strict_locking: bool = True
    failure_config: Optional[FailureDetectorConfig] = None
    models: tuple[ScenarioModel, ...] = ()
    samples: tuple[SampleSeries, ...] = ()
    #: Post-construction tuning hook, e.g. tightening protocol timers per
    #: node.  Must be **idempotent**: it is re-applied after every node
    #: recovery, because fail-stop recovery rebuilds the agent stack and
    #: would otherwise revert the tuning on exactly the churned nodes.
    configure: Optional[Callable[["OverlayExperiment"], None]] = None  # noqa: F821
    #: Observability opt-in (:class:`repro.obs.ObsConfig`): metrics
    #: snapshot on ``result.obs``, optional trace export and causal
    #: tracing.  ``None`` — the default — runs the historical code paths
    #: untouched.
    obs: Optional[Any] = None

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """This spec, re-seeded (the multi-seed runner's replication knob)."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------- build
    def resolve_agents(self) -> list[Type[Agent]]:
        agents = self.agents() if callable(self.agents) else self.agents
        return list(agents)

    def build(self) -> "OverlayExperiment":  # noqa: F821
        """Construct the experiment and schedule every model onto it."""
        from .experiment import ExperimentConfig, OverlayExperiment

        if self.duration <= 0:
            raise ScenarioError("scenario duration must be positive")
        topology = self.topology(self.seed) if callable(self.topology) \
            else self.topology
        config = ExperimentConfig(
            num_nodes=self.num_nodes,
            seed=self.seed,
            topology=topology,
            random_loss_rate=self.random_loss_rate,
            strict_locking=self.strict_locking,
            convergence_time=self.duration,
            failure_config=self.failure_config,
            obs=self.obs,
        )
        experiment = OverlayExperiment(self.resolve_agents(), config)
        if self.configure is not None:
            experiment.configure_hook = self.configure
            self.configure(experiment)
        for model in self.models:
            experiment.apply_model(model, horizon=self.duration)
        return experiment

    # --------------------------------------------------------------------- run
    def run(self, *, shards: int = 1) -> ScenarioResult:
        """Execute the scenario and collect metrics, series, and event log.

        ``shards > 1`` delegates to :meth:`run_sharded`, the multi-process
        conservative-lockstep kernel; ``shards=1`` is the original
        single-process path (use :meth:`run_sharded` explicitly to push a
        one-shard run through the worker pipeline, e.g. for the byte-identity
        gate in the benchmarks).
        """
        if shards != 1:
            return self.run_sharded(shards)
        experiment = self.build()
        simulator = experiment.simulator

        obs_registry = obs_causal = None
        if self.obs is not None:
            from ..obs import CausalLog, base_registry
            obs_registry = base_registry()
            if experiment.tracer.sink is not None:
                experiment.tracer.sink.update_meta(
                    mode="sim", name=self.name, seed=self.seed)
            if self.obs.causal:
                obs_causal = CausalLog(experiment.tracer, simulator,
                                       registry=obs_registry)
                obs_causal.install(experiment.emulator)

        series: dict[str, list[tuple[float, float]]] = {}
        for sample in self.samples:
            points = series.setdefault(sample.name, [])
            when = sample.start
            while when <= self.duration + 1e-9:
                simulator.schedule_at(
                    when,
                    lambda s=sample, p=points: p.append(
                        (simulator.now, float(s.fn(experiment)))),
                    label=f"sample:{sample.name}")
                when += sample.interval

        experiment.run(self.duration)

        # Reverse apply order: each restore() re-installs what the model saw
        # when it was applied, so unwinding must pop the chain LIFO.
        for compiled in reversed(experiment.compiled_models):
            compiled.restore()

        metrics: dict[str, float] = {}
        labels: dict[str, int] = {}
        for compiled in experiment.compiled_models:
            label = compiled.label
            labels[label] = labels.get(label, 0) + 1
            if labels[label] > 1:
                label = f"{label}{labels[label]}"
            for key, value in compiled.metrics().items():
                metrics[f"{label}.{key}"] = value

        stats = experiment.emulator.stats
        metrics.update({
            "net.packets_sent": float(stats.packets_sent),
            "net.packets_delivered": float(stats.packets_delivered),
            "net.packets_dropped": float(stats.packets_dropped),
            "net.bytes_delivered": float(stats.bytes_delivered),
            "sim.events_processed": float(simulator.events_processed),
            "nodes.alive": float(sum(node.alive for node in experiment.nodes)),
            "nodes.crashes": float(sum(node.crash_count
                                       for node in experiment.nodes)),
            "nodes.recoveries": float(sum(node.recover_count
                                          for node in experiment.nodes)),
        })

        events = [(event.time, event.kind, event.detail)
                  for compiled in experiment.compiled_models
                  for event in compiled.events]
        events.sort(key=lambda item: item[0])
        obs_snapshot = None
        if obs_registry is not None:
            from ..obs import artifact, fill_sim, write_obs_snapshot
            fill_sim(obs_registry, experiment,
                     events_processed=simulator.events_processed,
                     owned_nodes=experiment.nodes, causal=obs_causal)
            obs_snapshot = artifact(obs_registry, mode="sim", name=self.name,
                                    seed=self.seed, duration=self.duration)
            sink = experiment.tracer.sink
            if sink is not None:
                sink.close()
            if self.obs.snapshot_path:
                write_obs_snapshot(self.obs.snapshot_path, obs_snapshot)
        return ScenarioResult(name=self.name, seed=self.seed,
                              duration=self.duration, metrics=metrics,
                              series=series, events=events,
                              experiment=experiment, obs=obs_snapshot)

    def run_sharded(self, shards: int) -> ScenarioResult:
        """Execute the scenario on the multi-process sharded kernel.

        The experiment is built once here in the parent (models compiled,
        agents resolved — so dynamically generated protocol modules exist in
        every worker), then one worker per shard is forked and runs its own
        event heap inside conservative lockstep windows, exchanging
        cross-shard packets at barriers (:mod:`repro.runtime.sharded`).

        ``shards=1`` reproduces :meth:`run` byte-identically (single window,
        no cross-shard traffic, metrics computed by the worker with the
        single-process code path).  ``shards=K`` merges per-shard payloads
        with canonical-order formulas, so repeated runs — and, for
        fault-free scenarios, different K — give identical metrics; sample
        series need a global view and are rejected for K > 1.  The returned
        result carries ``experiment=None`` (the parent's copy never ran).
        """
        from ..runtime.sharded import (ShardCoordinator, ShardedDriver,
                                       plan_shards)

        experiment = self.build()
        plan = plan_shards(experiment.topology, self.num_nodes, shards)
        if plan.num_shards > 1 and self.samples:
            raise ScenarioError(
                "sample series need a global experiment view and are not "
                "supported with shards > 1")
        shard_of_address = {node.address: plan.shard_of_node[index]
                            for index, node in enumerate(experiment.nodes)}
        coordinator = ShardCoordinator(plan, start=0.0,
                                       duration=self.duration,
                                       shard_of_address=shard_of_address)
        simulator = experiment.simulator
        single = plan.num_shards == 1

        def worker(shard_id, endpoint, barriers):
            obs_registry = obs_causal = None
            if self.obs is not None:
                from ..obs import CausalLog, base_registry
                obs_registry = base_registry()
                tracer = experiment.tracer
                if tracer.sink is not None:
                    if not single:
                        # One writer per file: each forked worker spills its
                        # own shard-suffixed JSONL (run_trace.py merges them).
                        tracer.sink.path = \
                            f"{tracer.sink.path}.shard{shard_id}"
                    tracer.sink.update_meta(
                        mode="sim" if single else "sharded",
                        name=self.name, seed=self.seed, shard=shard_id)
                if self.obs.causal:
                    # Install order matters: the delivery wrapper must be in
                    # place before enter_shard captures the callback identity
                    # for the egress filter; the send tap must come after it
                    # swaps in the sharded send.
                    obs_causal = CausalLog(tracer, simulator,
                                           registry=obs_registry,
                                           origin=shard_id + 1)
                    experiment.emulator.install_delivery_wrapper(
                        obs_causal.wrap_delivery)
            driver = ShardedDriver(simulator, shard_id=shard_id, plan=plan,
                                   endpoint=endpoint, registry=obs_registry)
            experiment.enter_shard(shard_id, plan, driver.capture)
            if obs_causal is not None:
                experiment.emulator.install_send_tap(obs_causal.tag)
            series: dict[str, list[tuple[float, float]]] = {}
            if single:
                # Identical sample scheduling to run(): same schedule()
                # calls, same sequence numbers, so the one-shard run stays
                # byte-identical.
                for sample in self.samples:
                    points = series.setdefault(sample.name, [])
                    when = sample.start
                    while when <= self.duration + 1e-9:
                        simulator.schedule_at(
                            when,
                            lambda s=sample, p=points: p.append(
                                (simulator.now, float(s.fn(experiment)))),
                            label=f"sample:{sample.name}")
                        when += sample.interval
            driver.run_windows(barriers,
                               experiment.emulator.inject_delivery)
            for compiled in reversed(experiment.compiled_models):
                compiled.restore()
            models = []
            for compiled in experiment.compiled_models:
                if not single and compiled.shard_payload is not None:
                    models.append(compiled.shard_payload())
                else:
                    models.append(compiled.metrics())
            stats = experiment.emulator.stats
            owned = [experiment.nodes[i]
                     for i in plan.owned_nodes(shard_id)]
            obs_payload = None
            if obs_registry is not None:
                from ..obs import fill_sim
                fill_sim(obs_registry, experiment,
                         events_processed=(simulator.events_processed
                                           - experiment.shard_skipped_events),
                         owned_nodes=owned, causal=obs_causal,
                         cross_shard_packets=driver.packets_exported)
                if experiment.tracer.sink is not None:
                    experiment.tracer.sink.close()
                obs_payload = obs_registry.snapshot()
            return {
                "obs": obs_payload,
                "models": models,
                "net": (stats.packets_sent, stats.packets_delivered,
                        stats.packets_dropped, stats.bytes_delivered),
                # Subtract the owner-gated no-op dispatches: model events are
                # on every shard's heap, so without the correction the sum
                # across shards would grow by (K-1) x model events and
                # ``sim.events_processed`` would depend on the shard count.
                "events_processed": (simulator.events_processed
                                     - experiment.shard_skipped_events),
                "alive": sum(node.alive for node in owned),
                "crashes": sum(node.crash_count for node in owned),
                "recoveries": sum(node.recover_count for node in owned),
                "series": series,
                "cross_shard_packets": driver.packets_exported,
            }

        payloads = coordinator.run(worker)

        metrics: dict[str, float] = {}
        labels: dict[str, int] = {}
        for index, compiled in enumerate(experiment.compiled_models):
            label = compiled.label
            labels[label] = labels.get(label, 0) + 1
            if labels[label] > 1:
                label = f"{label}{labels[label]}"
            entries = [payload["models"][index] for payload in payloads]
            if single:
                model_metrics = entries[0]
            elif compiled.shard_merge is not None:
                model_metrics = compiled.shard_merge(entries)
            else:
                # No merge hook: only valid if the model's finalize is a
                # pure function of compile-time state, in which case every
                # shard reported the same dict.
                if any(entry != entries[0] for entry in entries[1:]):
                    raise ScenarioError(
                        f"model {label!r} produced diverging per-shard "
                        f"metrics and defines no shard_merge hook")
                model_metrics = entries[0]
            for key, value in model_metrics.items():
                metrics[f"{label}.{key}"] = value

        metrics.update({
            "net.packets_sent": float(sum(p["net"][0] for p in payloads)),
            "net.packets_delivered": float(sum(p["net"][1]
                                               for p in payloads)),
            "net.packets_dropped": float(sum(p["net"][2] for p in payloads)),
            "net.bytes_delivered": float(sum(p["net"][3] for p in payloads)),
            "sim.events_processed": float(sum(p["events_processed"]
                                              for p in payloads)),
            "nodes.alive": float(sum(p["alive"] for p in payloads)),
            "nodes.crashes": float(sum(p["crashes"] for p in payloads)),
            "nodes.recoveries": float(sum(p["recoveries"]
                                          for p in payloads)),
        })

        series = payloads[0]["series"] if single else {}
        events = [(event.time, event.kind, event.detail)
                  for compiled in experiment.compiled_models
                  for event in compiled.events]
        events.sort(key=lambda item: item[0])
        shard_info = {
            "requested_shards": shards,
            "num_shards": plan.num_shards,
            "lookahead": plan.lookahead,
            "barriers": len(coordinator.barriers),
            "cross_shard_packets": sum(p["cross_shard_packets"]
                                       for p in payloads),
        }
        obs_snapshot = None
        if self.obs is not None:
            from ..obs import artifact, base_registry, write_obs_snapshot
            registry = base_registry()
            for payload in payloads:
                if payload["obs"] is not None:
                    registry.merge(payload["obs"])
            obs_snapshot = artifact(
                registry, mode="sim" if single else "sharded",
                name=self.name, seed=self.seed, duration=self.duration,
                extra={"shards": plan.num_shards})
            if self.obs.snapshot_path:
                write_obs_snapshot(self.obs.snapshot_path, obs_snapshot)
        return ScenarioResult(name=self.name, seed=self.seed,
                              duration=self.duration, metrics=metrics,
                              series=series, events=events,
                              experiment=None, shard_info=shard_info,
                              obs=obs_snapshot)
