"""Seed-pinned scenario fuzzer with shrinking and replayable artifacts.

The scenario engine makes every run a pure function of ``(spec, seed)``, and
:mod:`repro.eval.invariants` states what must hold at the end of any run.
This module closes the loop: generate random-but-valid
:class:`~repro.eval.scenario.ScenarioSpec` values from a bounded grammar,
run them across the protocol registry, and assert the invariants.  On a
violation the failing spec is *shrunk* — models dropped, intensities halved —
to a minimal spec that still violates the same invariants, and the result is
written as a JSON artifact that replays the failure deterministically::

    python scripts/run_fuzz.py --count 50 --seed 1
    python scripts/run_fuzz.py --replay artifacts/fuzz/fuzz-3417784430.json

Design constraints baked into the grammar:

* exactly one join model (churn or flash crowd) so the population always
  comes up;
* every fault ends at least ``settle`` seconds before the scenario does, so
  the ring-convergence invariant is checkable rather than vacuous;
* a route workload always runs, so the delivery invariants have traffic to
  judge;
* a KV workload always rides along, so the quorum-consistency invariants
  (phantom reads, read-your-quorum-writes, write durability) have
  observations to judge — placed after the settle window half the time,
  which arms the stable-membership consistency check;
* link faults target :data:`~repro.eval.library.STUB_UPLINK_EDGES`, which
  exist in every generated transit-stub topology, and are only ever cut
  *directionally* or degraded — never fully severed.
"""

from __future__ import annotations

import json
import random
import traceback
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..runtime.failure import FailureDetectorConfig
from .invariants import InvariantViolation, check_invariants
from .library import FAST_FAILURE, PROTOCOLS, STUB_UPLINK_EDGES, resolve_protocol
from .scenario import (
    ChurnModel,
    CorrelatedCrashModel,
    CrashModel,
    DegradeModel,
    FlappingPartitionModel,
    FlashCrowdModel,
    GroupModel,
    PartitionModel,
    ScenarioError,
    ScenarioModel,
    ScenarioSpec,
    WorkloadModel,
)

#: Artifact schema identifier (bump on incompatible format changes).
ARTIFACT_SCHEMA = "repro.fuzz/1"

#: Model classes the grammar and the serialiser know about.
MODEL_TYPES: dict[str, type] = {
    cls.__name__: cls for cls in (
        ChurnModel, CrashModel, PartitionModel, FlashCrowdModel,
        CorrelatedCrashModel, FlappingPartitionModel, DegradeModel,
        GroupModel, WorkloadModel,
    )
}


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds of the scenario grammar."""

    protocols: tuple[str, ...] = ("ringdht", "chord")
    min_nodes: int = 6
    max_nodes: int = 12
    min_duration: float = 150.0
    max_duration: float = 220.0
    #: Fault-free seconds guaranteed at the end of every generated scenario.
    #: Sized to the transport's worst case, not taste: a connection that
    #: lived through a long cut backs off to MAX_RTO (30 s), so a rejoining
    #: node can legitimately need two retransmission cycles plus a ring walk
    #: before its join completes — convergence measurably takes up to ~70 s
    #: after the last disruption.  Anything shorter reports slow (but
    #: correct) convergence as a ring violation.
    settle: float = 80.0
    #: Fault models layered on top of the join model (0..max per spec).
    max_fault_models: int = 2
    ring_threshold: float = 0.7
    #: Shrinking budget: candidate re-runs before giving up on minimality.
    max_shrink_runs: int = 40

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ScenarioError("FuzzConfig needs at least one protocol")
        for name in self.protocols:
            resolve_protocol(name)
        if self.min_nodes < 4:
            raise ScenarioError("fuzzed scenarios need at least 4 nodes")
        if self.max_nodes < self.min_nodes:
            raise ScenarioError("max_nodes < min_nodes")
        if self.min_duration <= self.settle + 40.0:
            raise ScenarioError(
                "min_duration must leave room for faults before the settle "
                "window")


DEFAULT_CONFIG = FuzzConfig()


# ------------------------------------------------------------------- grammar
def _gen_join_model(rng: random.Random, num_nodes: int,
                    fault_end: float) -> ScenarioModel:
    if rng.random() < 0.5:
        churn_fraction = rng.choice((0.0, 0.25, 0.5))
        churn_end = round(rng.uniform(50.0, fault_end), 2)
        return ChurnModel(join="staggered", join_spacing=0.5,
                          churn_fraction=churn_fraction,
                          churn_start=25.0, churn_end=churn_end,
                          downtime=round(rng.uniform(5.0, 12.0), 2))
    core = rng.randint(2, max(2, num_nodes // 3))
    stay = round(rng.uniform(20.0, 35.0), 2) if rng.random() < 0.4 else None
    # Burst joins land within a few seconds of `at`; keep `at` well clear of
    # fault_end so stragglers (and optional departures) stay inside it.
    margin = 15.0 + (stay or 0.0)
    at = round(rng.uniform(15.0, max(16.0, fault_end - margin - 10.0)), 2)
    return FlashCrowdModel(core=core, core_spacing=0.5, at=at,
                           burst_rate=round(rng.uniform(5.0, 20.0), 2),
                           stay=stay)


def _gen_fault_model(rng: random.Random, num_nodes: int,
                     fault_end: float) -> ScenarioModel:
    kind = rng.choice(("correlated-crash", "crash", "flapping", "degrade"))
    if kind == "correlated-crash":
        at = round(rng.uniform(25.0, fault_end - 35.0), 2)
        recover = round(rng.uniform(15.0, 30.0), 2)
        return CorrelatedCrashModel(at=at, racks=1, recover_after=recover)
    if kind == "crash":
        # An uncorrelated fail-stop kill of a sampled fraction — unlike the
        # rack model, this one has a live equivalent (real SIGKILLs), so it
        # keeps the differential harness supplied with runnable artifacts.
        at = round(rng.uniform(25.0, fault_end - 35.0), 2)
        recover = (round(rng.uniform(10.0, 25.0), 2)
                   if rng.random() < 0.75 else None)
        return CrashModel(at=at, fraction=rng.choice((0.2, 0.3)),
                          recover_after=recover)
    if kind == "flapping":
        period = round(rng.uniform(10.0, 18.0), 2)
        # Cap cycles so the last heal (at + cycles*period) fits before the
        # settle window even at the earliest start.
        cycles = rng.randint(1, max(1, min(3, int((fault_end - 25.0) / period))))
        at = round(rng.uniform(25.0, max(26.0, fault_end - cycles * period)), 2)
        if rng.random() < 0.5:
            split = rng.randint(2, num_nodes - 2)
            groups = (tuple(range(split)), tuple(range(split, num_nodes)))
            return FlappingPartitionModel(at=at, period=period, duty=0.5,
                                          cycles=cycles, groups=groups)
        links = STUB_UPLINK_EDGES[:rng.randint(1, len(STUB_UPLINK_EDGES))]
        return FlappingPartitionModel(at=at, period=period, duty=0.5,
                                      cycles=cycles, links=links,
                                      directed=True)
    duration_of_fault = round(rng.uniform(20.0, 40.0), 2)
    at = round(rng.uniform(25.0, max(26.0, fault_end - duration_of_fault)), 2)
    bandwidth_factor = round(rng.uniform(0.05, 0.5), 2)
    latency_factor = round(rng.uniform(2.0, 8.0), 2)
    if rng.random() < 0.5:
        return DegradeModel(at=at, restore_after=duration_of_fault,
                            host_fraction=rng.choice((0.25, 0.4)),
                            bandwidth_factor=bandwidth_factor,
                            latency_factor=latency_factor)
    links = STUB_UPLINK_EDGES[:rng.randint(1, len(STUB_UPLINK_EDGES))]
    return DegradeModel(at=at, restore_after=duration_of_fault, links=links,
                        bandwidth_factor=bandwidth_factor,
                        latency_factor=latency_factor)


def generate_spec(seed: int,
                  config: FuzzConfig = DEFAULT_CONFIG) -> ScenarioSpec:
    """One random valid spec; a pure function of ``(seed, config)``."""
    rng = random.Random(seed)
    protocol = rng.choice(config.protocols)
    num_nodes = rng.randint(config.min_nodes, config.max_nodes)
    duration = float(rng.randint(int(config.min_duration),
                                 int(config.max_duration)))
    fault_end = duration - config.settle
    models: list[ScenarioModel] = [_gen_join_model(rng, num_nodes, fault_end)]
    for _ in range(rng.randint(0, config.max_fault_models)):
        models.append(_gen_fault_model(rng, num_nodes, fault_end))
    if rng.random() < 0.2 and fault_end >= 70.0:
        # A correlated degrade+crash combo: some hosts limp (degraded access
        # links), then a kill lands mid-limp — the compound failure mode
        # where straggler mitigation and failure detection fight each other.
        degrade_at = round(rng.uniform(25.0, fault_end - 45.0), 2)
        degrade_span = round(rng.uniform(25.0, 40.0), 2)
        models.append(DegradeModel(
            at=degrade_at, restore_after=degrade_span,
            host_fraction=0.25,
            bandwidth_factor=round(rng.uniform(0.1, 0.4), 2),
            latency_factor=round(rng.uniform(3.0, 6.0), 2)))
        models.append(CrashModel(
            at=round(degrade_at + degrade_span / 2, 2), fraction=0.2,
            recover_after=round(rng.uniform(10.0, 20.0), 2)))
    models.append(WorkloadModel(kind="route", source=-1, start=15.0,
                                packets=max(10, int((duration - 20.0) / 2.5)),
                                gap=2.5))
    # The KV workload rides along for the quorum invariants: after the
    # settle window half the time (stable membership arms the
    # read-your-quorum-writes check), through the faults otherwise
    # (exercising phantom-read and durability accounting under churn).
    if rng.random() < 0.5:
        kv_start = round(fault_end + config.settle / 4, 2)
        kv_gap = 1.0
    else:
        kv_start = 20.0
        kv_gap = 2.0
    models.append(WorkloadModel(
        kind="kv", label="kv", start=kv_start,
        packets=max(10, int((duration - 10.0 - kv_start) / kv_gap)),
        gap=kv_gap, packet_bytes=100,
        keys=rng.choice((16, 64)),
        read_fraction=rng.choice((0.5, 0.7)),
        repair_gap=rng.choice((0.0, 10.0))))
    return ScenarioSpec(
        name=f"fuzz-{seed}",
        agents=resolve_protocol(protocol),
        num_nodes=num_nodes,
        duration=duration,
        seed=seed,
        random_loss_rate=rng.choice((0.0, 0.0, 0.01)),
        failure_config=FAST_FAILURE,
        models=tuple(models),
    )


# -------------------------------------------------------------- serialisation
def protocol_name_of(spec: ScenarioSpec) -> str:
    """Reverse-resolve a spec's agents callable to its registry name."""
    for name, factory in PROTOCOLS.items():
        if factory is spec.agents:
            return name
    raise ScenarioError(
        "spec's agents are not a registered protocol factory; only specs "
        "built from repro.eval.library.PROTOCOLS serialise")


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """JSON-ready form of a registry-built spec (topology stays implicit)."""
    if spec.topology is not None or spec.samples or spec.configure:
        raise ScenarioError(
            "only specs with default topology and no samples/configure "
            "hooks serialise to artifacts")
    return {
        "name": spec.name,
        "protocol": protocol_name_of(spec),
        "num_nodes": spec.num_nodes,
        "duration": spec.duration,
        "seed": spec.seed,
        "random_loss_rate": spec.random_loss_rate,
        "strict_locking": spec.strict_locking,
        "failure_config": (asdict(spec.failure_config)
                           if spec.failure_config else None),
        "models": [dict(asdict(model), model=type(model).__name__)
                   for model in spec.models],
    }


def _retuple(value):
    """JSON round-trips tuples as lists; model fields are always tuples."""
    if isinstance(value, list):
        return tuple(_retuple(item) for item in value)
    return value


def model_from_dict(data: dict) -> ScenarioModel:
    data = dict(data)
    type_name = data.pop("model", None)
    try:
        cls = MODEL_TYPES[type_name]
    except KeyError:
        raise ScenarioError(f"unknown scenario model type {type_name!r}") \
            from None
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ScenarioError(
            f"{type_name} artifact has unknown fields {sorted(unknown)}")
    return cls(**{key: _retuple(value) for key, value in data.items()})


def spec_from_dict(data: dict) -> ScenarioSpec:
    failure = data.get("failure_config")
    return ScenarioSpec(
        name=data["name"],
        agents=resolve_protocol(data["protocol"]),
        num_nodes=data["num_nodes"],
        duration=data["duration"],
        seed=data["seed"],
        random_loss_rate=data.get("random_loss_rate", 0.0),
        strict_locking=data.get("strict_locking", True),
        failure_config=FailureDetectorConfig(**failure) if failure else None,
        models=tuple(model_from_dict(item) for item in data["models"]),
    )


# ------------------------------------------------------------------ execution
def run_case(spec: ScenarioSpec,
             config: FuzzConfig = DEFAULT_CONFIG) -> list[InvariantViolation]:
    """Run one spec and return its invariant violations."""
    result = spec.run()
    return check_invariants(result, ring_threshold=config.ring_threshold,
                            ring_settle=config.settle)


def _violated_names(violations: Sequence[InvariantViolation]) -> frozenset:
    return frozenset(violation.invariant for violation in violations)


def _weakened_models(model: ScenarioModel) -> "list[ScenarioModel]":
    """Lower-intensity variants of one model, strongest reduction first."""
    candidates: list[ScenarioModel] = []

    def try_replace(**changes) -> None:
        try:
            candidates.append(replace(model, **changes))
        except (ScenarioError, ValueError):
            pass  # the weakening violated the model's own validation; skip it

    # Floors on every halving keep the weakening chains finite; without them
    # the shrinker burns its whole run budget on ever-smaller intensities.
    if isinstance(model, ChurnModel) and model.churn_fraction > 0.1:
        try_replace(churn_fraction=round(model.churn_fraction / 2, 3))
    if isinstance(model, FlashCrowdModel):
        if model.stay is not None:
            try_replace(stay=None)
        if model.burst_rate > 2.0:
            try_replace(burst_rate=round(model.burst_rate / 2, 3))
    if isinstance(model, CorrelatedCrashModel) and model.racks > 1:
        try_replace(racks=model.racks // 2)
    if isinstance(model, FlappingPartitionModel):
        if model.cycles > 1:
            try_replace(cycles=model.cycles // 2)
        if len(model.links) > 1:
            try_replace(links=model.links[:1])
    if isinstance(model, DegradeModel):
        if model.latency_factor > 2.0:
            try_replace(latency_factor=round(
                1.0 + (model.latency_factor - 1.0) / 2, 3))
        if model.bandwidth_factor < 1.0:
            try_replace(bandwidth_factor=round(
                min(1.0, model.bandwidth_factor * 2), 3))
        if len(model.links) > 1:
            try_replace(links=model.links[:1])
    if isinstance(model, WorkloadModel):
        if model.packets > 10:
            try_replace(packets=model.packets // 2)
        if model.kind == "kv" and model.repair_gap:
            try_replace(repair_gap=0.0)
    return candidates


def _shrink_candidates(spec: ScenarioSpec) -> "list[ScenarioSpec]":
    """Structurally smaller specs to try, most aggressive first."""
    candidates: list[ScenarioSpec] = []
    # 1. Drop whole models (never the workload: the delivery invariants need
    #    traffic, and a spec with no observations reproduces nothing).
    for index, model in enumerate(spec.models):
        if isinstance(model, WorkloadModel):
            continue
        models = spec.models[:index] + spec.models[index + 1:]
        candidates.append(replace(spec, models=models))
    # 2. Halve the population (model validation may reject out-of-range
    #    indices; the runner treats ScenarioError candidates as failures to
    #    reproduce and moves on).
    if spec.num_nodes > 4:
        candidates.append(replace(spec, num_nodes=max(4, spec.num_nodes // 2)))
    # 3. Weaken individual models.
    for index, model in enumerate(spec.models):
        for weakened in _weakened_models(model):
            models = (spec.models[:index] + (weakened,)
                      + spec.models[index + 1:])
            candidates.append(replace(spec, models=models))
    return candidates


def shrink(spec: ScenarioSpec, violations: Sequence[InvariantViolation],
           config: FuzzConfig = DEFAULT_CONFIG,
           log: Callable[[str], None] = lambda _: None
           ) -> tuple[ScenarioSpec, list[InvariantViolation]]:
    """Greedily minimise *spec* while it violates the same invariant set.

    Returns the smallest spec found and its violations.  Every accepted
    candidate was actually re-run, so the result is always a confirmed
    reproduction, never an extrapolation.
    """
    target = _violated_names(violations)
    best, best_violations = spec, list(violations)
    runs = 0
    progress = True
    while progress and runs < config.max_shrink_runs:
        progress = False
        for candidate in _shrink_candidates(best):
            if runs >= config.max_shrink_runs:
                break
            runs += 1
            try:
                candidate_violations = run_case(candidate, config)
            except ScenarioError:
                continue  # shrank into an invalid spec; not a reproduction
            if _violated_names(candidate_violations) == target:
                log(f"  shrink: kept {len(candidate.models)} models, "
                    f"{candidate.num_nodes} nodes after {runs} runs")
                best, best_violations = candidate, candidate_violations
                progress = True
                break
    return best, best_violations


# ------------------------------------------------------------------ artifacts
def write_artifact(path: Path, *, seed: int, original: ScenarioSpec,
                   shrunk: ScenarioSpec,
                   violations: Sequence[InvariantViolation],
                   error: Optional[str] = None) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    # Tag whether the shrunk spec can also boot as a live deployment, so
    # the differential harness (scripts/run_diff.py --artifact) can pick
    # live-runnable repros without trial-compiling every file.  Tagging is
    # best-effort: a tagging failure never loses the artifact itself.
    try:
        from ..live.faults import live_runnable
        runnable, blocker = live_runnable(shrunk)
    except Exception as exc:  # pragma: no cover - defensive
        runnable, blocker = False, f"live_runnable probe failed: {exc}"
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "seed": seed,
        "violations": [{"invariant": v.invariant, "detail": v.detail}
                       for v in violations],
        "spec": spec_to_dict(shrunk),
        "original_spec": spec_to_dict(original),
        "live_runnable": runnable,
        "live_blocker": blocker,
    }
    if error is not None:
        # An unhandled exception, not an invariant violation: the traceback
        # travels in the artifact so the crash replays with full context.
        payload["error"] = error
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def replay_artifact(path: Path,
                    config: FuzzConfig = DEFAULT_CONFIG
                    ) -> list[InvariantViolation]:
    """Re-run an artifact's shrunk spec; returns the violations seen now."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise ScenarioError(
            f"artifact {path} has schema {payload.get('schema')!r}, "
            f"expected {ARTIFACT_SCHEMA!r}")
    return run_case(spec_from_dict(payload["spec"]), config)


# ----------------------------------------------------------------- the fuzzer
@dataclass
class FuzzFailure:
    """One failing case: invariant-violating (fully shrunk) or crashed."""

    case_seed: int
    violations: list[InvariantViolation]
    spec: ScenarioSpec
    artifact: Optional[Path] = None
    #: Traceback text when the case raised instead of violating an
    #: invariant.  A crashed case is a campaign failure like any other —
    #: ``FuzzReport.ok`` goes false, so the caller's exit status can never
    #: green-wash a crash.
    error: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    cases: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(count: int, seed: int, *,
         config: FuzzConfig = DEFAULT_CONFIG,
         artifact_dir: Optional[Path] = None,
         jobs: int = 1,
         log: Callable[[str], None] = lambda _: None) -> FuzzReport:
    """Run *count* generated scenarios; shrink and record every violation.

    Case seeds derive from *seed* via an independent RNG, so ``fuzz(50, 1)``
    explores the same 50 cases on every machine, and any failing case replays
    as ``generate_spec(case_seed)`` with no further state.

    A case that *crashes* (any unhandled exception out of the scenario
    engine) does not abort the campaign: it is recorded as a
    :class:`FuzzFailure` carrying the traceback, the remaining cases still
    run, and the report comes back not-ok — so a crash can never be
    green-washed into a passing campaign, and one broken case cannot hide
    violations in the cases behind it.

    ``jobs > 1`` executes the cases in that many forked worker processes
    (cases are independent by construction); shrinking of failing cases
    still happens in this process, serially.
    """
    rng = random.Random(seed)
    case_seeds = [rng.randrange(2 ** 32) for _ in range(count)]

    def execute(case_seed: int):
        """('ok', violations) or ('crash', traceback) for one case."""
        spec = generate_spec(case_seed, config)
        try:
            return ("ok", run_case(spec, config))
        except Exception:
            return ("crash", traceback.format_exc())

    outcomes = None
    if jobs > 1:
        from ..runtime.sharded.mailbox import fork_map
        outcomes = fork_map(execute, case_seeds, jobs=jobs, label="fuzz case")

    report = FuzzReport()
    for index, case_seed in enumerate(case_seeds):
        spec = generate_spec(case_seed, config)
        protocol = protocol_name_of(spec)
        kind, payload = outcomes[index] if outcomes is not None \
            else execute(case_seed)
        report.cases += 1
        if kind == "crash":
            log(f"case {index + 1}/{count} seed={case_seed} {protocol}: "
                f"CRASH\n{payload}")
            failure = FuzzFailure(case_seed=case_seed, violations=[],
                                  spec=spec, error=payload)
            if artifact_dir is not None:
                failure.artifact = (Path(artifact_dir)
                                    / f"fuzz-{case_seed}.json")
                write_artifact(failure.artifact, seed=case_seed,
                               original=spec, shrunk=spec, violations=[],
                               error=payload)
                log(f"  artifact: {failure.artifact}")
            report.failures.append(failure)
            continue
        violations = payload
        if not violations:
            log(f"case {index + 1}/{count} seed={case_seed} "
                f"{protocol}/{spec.num_nodes}n/{spec.duration:.0f}s "
                f"{len(spec.models)} models: ok")
            continue
        log(f"case {index + 1}/{count} seed={case_seed} {protocol}: "
            f"VIOLATION {sorted(_violated_names(violations))}")
        shrunk, shrunk_violations = shrink(spec, violations, config, log)
        failure = FuzzFailure(case_seed=case_seed,
                              violations=shrunk_violations, spec=shrunk)
        if artifact_dir is not None:
            failure.artifact = Path(artifact_dir) / f"fuzz-{case_seed}.json"
            write_artifact(failure.artifact, seed=case_seed, original=spec,
                           shrunk=shrunk, violations=shrunk_violations)
            log(f"  artifact: {failure.artifact}")
        report.failures.append(failure)
    return report
