"""Runtime invariants checkable against any :class:`ScenarioResult`.

The scenario engine makes every run a pure function of ``(spec, seed)``;
this module supplies the other half of a bug-finding machine: properties
that must hold at the end of *any* scenario, however adversarial.  The
fuzzer (:mod:`repro.eval.fuzz`) asserts them over randomly generated specs;
tests assert them over the curated library.

Four invariants:

* **no_duplicate_delivery** — no workload probe is delivered twice to the
  same receiver: the ``(stream, seqno)`` pair is unique per delivery
  (reliable transports reassemble and deduplicate; a duplicate means
  transport or dispatch state leaked across a fault).
* **no_lost_acks** — after the run quiesces, no reliable connection on a
  live node is stranded: unacknowledged in-flight segments imply an armed
  retransmission timer, and queued-but-untransmitted segments imply an open
  window being consumed (the send pump never stalls with work pending).
* **epoch_monotonicity** — transport incarnation numbers track the node
  lifecycle exactly: a live node's transport epoch equals its crash count,
  a crashed node's equals its recover count, and no connection has observed
  a peer epoch from the future.
* **ring_eventually_correct** — for successor-ring protocols (agents that
  expose a ``successor`` pointer), the live membership's successor pointers
  converge to the global ring after the last fault, scored with the
  existing :func:`~repro.eval.metrics.correct_successor_fraction` observer.
  Skipped when the scenario leaves no settle window or the protocol has no
  ring shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..transport.reliable import ReliableTransport
from .metrics import correct_successor_fraction
from .scenario import ScenarioResult

#: Event kinds that perturb the overlay (everything except measurement
#: traffic); ring convergence is only checkable after the last of these.
DISRUPTIVE_KINDS = frozenset({
    "join", "crash", "recover", "partition", "heal",
    "link-cut", "link-heal", "degrade", "restore",
})


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation: which invariant, and what it saw."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


Invariant = Callable[[ScenarioResult], "list[InvariantViolation]"]


def no_duplicate_delivery(result: ScenarioResult) -> list[InvariantViolation]:
    """Every workload's ``(receiver, seqno)`` deliveries are unique."""
    violations = []
    for compiled in result.experiment.compiled_models:
        observations = getattr(compiled, "observations", None)
        if observations is not None and observations.duplicates:
            violations.append(InvariantViolation(
                "no_duplicate_delivery",
                f"workload {compiled.label!r} saw {observations.duplicates} "
                f"duplicate (receiver, seqno) deliveries"))
    return violations


def no_lost_acks(result: ScenarioResult) -> list[InvariantViolation]:
    """No live reliable connection is stranded after quiesce.

    Unacked in-flight data without an armed retransmission timer would never
    be retransmitted (the segment — and its ack — is lost forever); queued
    data with an empty window would never be transmitted at all (the pump
    always fills at least one window slot).
    """
    violations = []
    for node in result.experiment.nodes:
        if node.crashed:
            continue
        for transport in node.transport_host._transports.values():
            if not isinstance(transport, ReliableTransport):
                continue
            for peer, connection in transport._connections.items():
                where = (f"node {node.address} -> {peer} "
                         f"({transport.name})")
                if connection.in_flight and not connection._timer_armed:
                    violations.append(InvariantViolation(
                        "no_lost_acks",
                        f"{where}: {len(connection.in_flight)} in-flight "
                        f"segments with no retransmission timer armed"))
                if connection.queue and not connection.in_flight:
                    violations.append(InvariantViolation(
                        "no_lost_acks",
                        f"{where}: {len(connection.queue)} queued segments "
                        f"but an empty window (send pump stalled)"))
    return violations


def epoch_monotonicity(result: ScenarioResult) -> list[InvariantViolation]:
    """Transport incarnations track node lifecycles; nobody sees the future."""
    violations = []
    nodes = result.experiment.nodes
    crash_counts = {node.address: node.crash_count for node in nodes}
    for node in nodes:
        host = node.transport_host
        # A live node's transport was built at its last recovery (or at
        # construction), so its epoch is the crash count; a crashed node
        # still holds the pre-crash incarnation, the recover count.
        expected = node.recover_count if node.crashed else node.crash_count
        if host.epoch != expected:
            violations.append(InvariantViolation(
                "epoch_monotonicity",
                f"node {node.address}: transport epoch {host.epoch} != "
                f"{expected} (crashes={node.crash_count}, "
                f"recoveries={node.recover_count}, crashed={node.crashed})"))
        for transport in host._transports.values():
            if not isinstance(transport, ReliableTransport):
                continue
            for peer, connection in transport._connections.items():
                peer_epoch = connection.peer_epoch
                if peer_epoch is None:
                    continue
                limit = crash_counts.get(peer)
                if limit is not None and peer_epoch > limit:
                    violations.append(InvariantViolation(
                        "epoch_monotonicity",
                        f"node {node.address} observed epoch {peer_epoch} "
                        f"from peer {peer}, which has only crashed "
                        f"{limit} times"))
    return violations


def last_disruption(result: ScenarioResult) -> float:
    """Time of the last executed overlay-perturbing event (0.0 if none).

    Events scheduled past the scenario duration never fired and are ignored.
    """
    times = [time for time, kind, _ in result.events
             if kind in DISRUPTIVE_KINDS and time <= result.duration]
    return max(times, default=0.0)


def ring_eventually_correct(result: ScenarioResult, *,
                            threshold: float = 0.7,
                            settle: float = 40.0) -> list[InvariantViolation]:
    """Live successor pointers converge to the global ring after the faults.

    Only applicable when the lowest-layer agents expose a ``successor``
    pointer (the ring/Chord family) and the scenario leaves at least
    ``settle`` fault-free seconds before the end; returns no violations
    otherwise (the property is vacuous, not violated).
    """
    experiment = result.experiment
    if result.duration - last_disruption(result) < settle:
        return []
    live = [node for node in experiment.nodes
            if node.alive and node.initialized]
    if len(live) < 2:
        return []
    agents = [node.lowest_agent for node in live]
    if any(not hasattr(agent, "successor") for agent in agents):
        return []
    key_space = agents[0].key_space
    ring = [(key_space.hash(node.address), node.address) for node in live]
    successors = {node.address: agent.successor
                  for node, agent in zip(live, agents)}
    fraction = correct_successor_fraction(ring, successors)
    if fraction < threshold:
        return [InvariantViolation(
            "ring_eventually_correct",
            f"correct-successor fraction {fraction:.3f} < {threshold} over "
            f"{len(live)} live nodes, {result.duration - last_disruption(result):.0f} s "
            f"after the last disruption")]
    return []


#: The invariants check_invariants runs, in report order.
INVARIANTS: tuple[str, ...] = ("no_duplicate_delivery", "no_lost_acks",
                               "epoch_monotonicity", "ring_eventually_correct")


def check_invariants(result: ScenarioResult, *,
                     ring_threshold: float = 0.7,
                     ring_settle: float = 40.0,
                     include_ring: bool = True) -> list[InvariantViolation]:
    """Run every invariant against *result*; return all violations found."""
    violations = []
    violations.extend(no_duplicate_delivery(result))
    violations.extend(no_lost_acks(result))
    violations.extend(epoch_monotonicity(result))
    if include_ring:
        violations.extend(ring_eventually_correct(
            result, threshold=ring_threshold, settle=ring_settle))
    return violations
