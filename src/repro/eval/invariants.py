"""Runtime invariants checkable against any :class:`ScenarioResult`.

The scenario engine makes every run a pure function of ``(spec, seed)``;
this module supplies the other half of a bug-finding machine: properties
that must hold at the end of *any* scenario, however adversarial.  The
fuzzer (:mod:`repro.eval.fuzz`) asserts them over randomly generated specs;
tests assert them over the curated library.

Seven invariants:

* **no_duplicate_delivery** — no workload probe is delivered twice to the
  same receiver: the ``(stream, seqno)`` pair is unique per delivery
  (reliable transports reassemble and deduplicate; a duplicate means
  transport or dispatch state leaked across a fault).
* **no_lost_acks** — after the run quiesces, no reliable connection on a
  live node is stranded: unacknowledged in-flight segments imply an armed
  retransmission timer, and queued-but-untransmitted segments imply an open
  window being consumed (the send pump never stalls with work pending).
* **epoch_monotonicity** — transport incarnation numbers track the node
  lifecycle exactly: a live node's transport epoch equals its crash count,
  a crashed node's equals its recover count, and no connection has observed
  a peer epoch from the future.
* **ring_eventually_correct** — for successor-ring protocols (agents that
  expose a ``successor`` pointer), the live membership's successor pointers
  converge to the global ring after the last fault, scored with the
  existing :func:`~repro.eval.metrics.correct_successor_fraction` observer.
  Skipped when the scenario leaves no settle window or the protocol has no
  ring shape.
* **kv_no_phantom_reads** — a KV workload's quorum reads never return a
  version that no client ever wrote to that key: replication may lag or
  lose data, but it can never fabricate or cross-wire it.  Unconditional.
* **kv_read_your_quorum_writes** — with ``R + W > N`` and stable, settled
  membership, a read issued after a write completed returns a version at
  least that new.  Checked only when the scenario's last disruptive event
  settled before the workload started (replica sets must be stable for the
  quorum-overlap argument to apply); vacuous otherwise.
* **kv_write_durability** — every quorum-acked write survives on some live
  node as long as fewer than ``write_quorum`` crash events occurred: at
  least one acking replica never crashed, and adoption is monotone.
  Vacuous when crashes reach the quorum size (the workload's
  ``replica_coverage`` metric still reports the degradation).

Live deployments get a parallel set (:func:`check_live_invariants`) phrased
over :class:`~repro.live.cluster.LiveClusterResult` reports — the subset of
these properties that survives the projection through the results queue —
so the differential harness checks the same properties on both sides of a
sim-vs-live comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..transport.reliable import ReliableTransport
from .metrics import (correct_successor_fraction, phantom_reads,
                      quorum_staleness)
from .scenario import ScenarioResult

#: Event kinds that perturb the overlay (everything except measurement
#: traffic); ring convergence is only checkable after the last of these.
DISRUPTIVE_KINDS = frozenset({
    "join", "crash", "recover", "partition", "heal",
    "link-cut", "link-heal", "degrade", "restore",
})


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation: which invariant, and what it saw."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


Invariant = Callable[[ScenarioResult], "list[InvariantViolation]"]


def no_duplicate_delivery(result: ScenarioResult) -> list[InvariantViolation]:
    """Every workload's ``(receiver, seqno)`` deliveries are unique."""
    violations = []
    for compiled in result.experiment.compiled_models:
        observations = getattr(compiled, "observations", None)
        if observations is not None and observations.duplicates:
            violations.append(InvariantViolation(
                "no_duplicate_delivery",
                f"workload {compiled.label!r} saw {observations.duplicates} "
                f"duplicate (receiver, seqno) deliveries"))
    return violations


def no_lost_acks(result: ScenarioResult) -> list[InvariantViolation]:
    """No live reliable connection is stranded after quiesce.

    Unacked in-flight data without an armed retransmission timer would never
    be retransmitted (the segment — and its ack — is lost forever); queued
    data with an empty window would never be transmitted at all (the pump
    always fills at least one window slot).
    """
    violations = []
    for node in result.experiment.nodes:
        if node.crashed:
            continue
        for transport in node.transport_host._transports.values():
            if not isinstance(transport, ReliableTransport):
                continue
            for peer, connection in transport._connections.items():
                where = (f"node {node.address} -> {peer} "
                         f"({transport.name})")
                if connection.in_flight and not connection._timer_armed:
                    violations.append(InvariantViolation(
                        "no_lost_acks",
                        f"{where}: {len(connection.in_flight)} in-flight "
                        f"segments with no retransmission timer armed"))
                if connection.queue and not connection.in_flight:
                    violations.append(InvariantViolation(
                        "no_lost_acks",
                        f"{where}: {len(connection.queue)} queued segments "
                        f"but an empty window (send pump stalled)"))
    return violations


def epoch_monotonicity(result: ScenarioResult) -> list[InvariantViolation]:
    """Transport incarnations track node lifecycles; nobody sees the future."""
    violations = []
    nodes = result.experiment.nodes
    crash_counts = {node.address: node.crash_count for node in nodes}
    for node in nodes:
        host = node.transport_host
        # A live node's transport was built at its last recovery (or at
        # construction), so its epoch is the crash count; a crashed node
        # still holds the pre-crash incarnation, the recover count.
        expected = node.recover_count if node.crashed else node.crash_count
        if host.epoch != expected:
            violations.append(InvariantViolation(
                "epoch_monotonicity",
                f"node {node.address}: transport epoch {host.epoch} != "
                f"{expected} (crashes={node.crash_count}, "
                f"recoveries={node.recover_count}, crashed={node.crashed})"))
        for transport in host._transports.values():
            if not isinstance(transport, ReliableTransport):
                continue
            for peer, connection in transport._connections.items():
                peer_epoch = connection.peer_epoch
                if peer_epoch is None:
                    continue
                limit = crash_counts.get(peer)
                if limit is not None and peer_epoch > limit:
                    violations.append(InvariantViolation(
                        "epoch_monotonicity",
                        f"node {node.address} observed epoch {peer_epoch} "
                        f"from peer {peer}, which has only crashed "
                        f"{limit} times"))
    return violations


def last_disruption(result: ScenarioResult) -> float:
    """Time of the last executed overlay-perturbing event (0.0 if none).

    Events scheduled past the scenario duration never fired and are ignored.
    """
    times = [time for time, kind, _ in result.events
             if kind in DISRUPTIVE_KINDS and time <= result.duration]
    return max(times, default=0.0)


def ring_eventually_correct(result: ScenarioResult, *,
                            threshold: float = 0.7,
                            settle: float = 40.0) -> list[InvariantViolation]:
    """Live successor pointers converge to the global ring after the faults.

    Only applicable when the lowest-layer agents expose a ``successor``
    pointer (the ring/Chord family) and the scenario leaves at least
    ``settle`` fault-free seconds before the end; returns no violations
    otherwise (the property is vacuous, not violated).
    """
    experiment = result.experiment
    if result.duration - last_disruption(result) < settle:
        return []
    live = [node for node in experiment.nodes
            if node.alive and node.initialized]
    if len(live) < 2:
        return []
    agents = [node.lowest_agent for node in live]
    if any(not hasattr(agent, "successor") for agent in agents):
        return []
    key_space = agents[0].key_space
    ring = [(key_space.hash(node.address), node.address) for node in live]
    successors = {node.address: agent.successor
                  for node, agent in zip(live, agents)}
    fraction = correct_successor_fraction(ring, successors)
    if fraction < threshold:
        return [InvariantViolation(
            "ring_eventually_correct",
            f"correct-successor fraction {fraction:.3f} < {threshold} over "
            f"{len(live)} live nodes, {result.duration - last_disruption(result):.0f} s "
            f"after the last disruption")]
    return []


def _kv_states(result: ScenarioResult) -> list:
    """Every KV workload state the run's compiled models exposed."""
    if result.experiment is None:
        return []
    return [state for compiled in result.experiment.compiled_models
            if (state := getattr(compiled, "kv_state", None)) is not None]


def _kv_records(state) -> tuple[list, list]:
    """(completed puts, completed gets) from one KV workload's records."""
    records = sorted(state.observations.records)
    puts = [r for r in records if r[2] == 0]
    gets = [r for r in records if r[2] == 1]
    return puts, gets


def kv_no_phantom_reads(result: ScenarioResult) -> list[InvariantViolation]:
    """No quorum read returns a version nobody ever wrote to that key.

    Replication may lag or lose data under faults, but a version that was
    never issued against a key means the store fabricated or cross-wired
    data — a bug under any fault schedule, so this is unconditional.
    """
    violations = []
    for state in _kv_states(result):
        _puts, gets = _kv_records(state)
        count = phantom_reads([(r[3], r[4]) for r in gets],
                              state.issued_writes)
        if count:
            violations.append(InvariantViolation(
                "kv_no_phantom_reads",
                f"{count} of {len(gets)} quorum reads returned a "
                f"(key, version) no client ever wrote"))
    return violations


def kv_read_your_quorum_writes(result: ScenarioResult, *,
                               settle: float = 10.0) -> list[InvariantViolation]:
    """Under stable membership, completed writes are visible to later reads.

    The ``R + W > N`` overlap argument needs the root and its replica set to
    be the same for the write and the read, so the check applies only when
    the last disruptive event (join/crash/partition/...) settled at least
    ``settle`` seconds before the workload started; vacuous otherwise.
    """
    violations = []
    for state in _kv_states(result):
        if last_disruption(result) + settle > state.start:
            continue
        puts, gets = _kv_records(state)
        stale = quorum_staleness([(r[3], r[4], r[5]) for r in gets],
                                 [(r[3], r[4], r[6]) for r in puts])
        if stale:
            violations.append(InvariantViolation(
                "kv_read_your_quorum_writes",
                f"{stale} of {len(gets)} reads missed a write that "
                f"completed before they were issued, with stable membership "
                f"(W={state.write_quorum}, Q={state.read_quorum}, "
                f"N={state.replicas})"))
    return violations


def kv_write_durability(result: ScenarioResult) -> list[InvariantViolation]:
    """Quorum-acked writes survive fewer than ``write_quorum`` crashes.

    With ``c < W`` crash events in the whole run, at least one of a write's
    ``W`` ackers never crashed; adoption is monotone, so that node still
    holds a version at least as new.  Vacuous once crashes reach ``W`` —
    fail-stop storage is genuinely allowed to lose the data then.
    """
    violations = []
    if result.experiment is None:
        return violations
    total_crashes = sum(node.crash_count
                        for node in result.experiment.nodes)
    for state in _kv_states(result):
        if total_crashes >= state.write_quorum:
            continue
        puts, _gets = _kv_records(state)
        targets: dict[int, int] = {}
        for record in puts:
            if record[4] > targets.get(record[3], -1):
                targets[record[3]] = record[4]
        live_stores = []
        for node, store in zip(state.nodes, state.stores):
            if node.alive and node.initialized:
                store._check_epoch()
                live_stores.append(store.store)
        lost = [(key, version) for key, version in sorted(targets.items())
                if not any(s.get(key, -1) >= version for s in live_stores)]
        if lost:
            violations.append(InvariantViolation(
                "kv_write_durability",
                f"{len(lost)} quorum-acked writes (e.g. key {lost[0][0]} "
                f"version {lost[0][1]}) held by no live node, despite only "
                f"{total_crashes} crash(es) < write_quorum="
                f"{state.write_quorum}"))
    return violations


# --------------------------------------------------------- live deployments
#
# A live run has no Experiment to introspect — its nodes lived in other OS
# processes — so the live invariants are phrased over what crosses the
# results queue: the per-node reports and the aggregated metrics of a
# :class:`~repro.live.cluster.LiveClusterResult`.  They are the subset of
# the simulator's properties that survive that projection, which is exactly
# what the differential harness needs: the *same* properties, checked on
# both sides of a sim-vs-live comparison.

def live_no_duplicate_delivery(outcome) -> list[InvariantViolation]:
    """No live receiver ever saw the same workload seqno twice."""
    violations = []
    for report in outcome.per_node:
        if report.get("duplicates"):
            violations.append(InvariantViolation(
                "live_no_duplicate_delivery",
                f"node {report['address']} saw {report['duplicates']} "
                f"duplicate (receiver, seqno) deliveries"))
    return violations


def live_no_callback_errors(outcome) -> list[InvariantViolation]:
    """No LiveDriver swallowed a transition/timer exception."""
    violations = []
    for report in outcome.per_node:
        count = report.get("callback_error_count", 0)
        if count:
            first = (report.get("callback_errors") or ["?"])[0]
            violations.append(InvariantViolation(
                "live_no_callback_errors",
                f"node {report['address']} recorded {count} callback "
                f"exception(s), first: {first}"))
    return violations


def live_epoch_tracks_incarnation(outcome) -> list[InvariantViolation]:
    """A node's transport epoch equals its supervisor incarnation.

    The live analogue of :func:`epoch_monotonicity`: every respawn must
    re-key the transport demux, or a peer's stale retransmission state can
    poison the reborn node.
    """
    violations = []
    for report in outcome.per_node:
        if report.get("down") or "epoch" not in report:
            continue
        if report["epoch"] != report.get("incarnation", 0):
            violations.append(InvariantViolation(
                "live_epoch_tracks_incarnation",
                f"node {report['address']}: transport epoch "
                f"{report['epoch']} != incarnation "
                f"{report.get('incarnation', 0)}"))
    return violations


def live_no_decode_errors(outcome) -> list[InvariantViolation]:
    """Both ends speak our codec: no frame ever failed to decode."""
    violations = []
    for report in outcome.per_node:
        errors = report.get("socket", {}).get("decode_errors", 0)
        if errors:
            violations.append(InvariantViolation(
                "live_no_decode_errors",
                f"node {report['address']} failed to decode {errors} "
                f"frame(s) — codec mismatch or corruption on localhost"))
    return violations


def live_kv_no_phantom_reads(outcome) -> list[InvariantViolation]:
    """No live quorum read returned a version nobody wrote (KV runs only)."""
    count = outcome.metrics.get("workload.phantom_reads", 0.0)
    if count:
        return [InvariantViolation(
            "live_kv_no_phantom_reads",
            f"{count:.0f} quorum reads returned a (key, version) no client "
            f"ever wrote")]
    return []


#: The live invariants check_live_invariants runs, in report order.
LIVE_INVARIANTS: tuple[str, ...] = (
    "live_no_duplicate_delivery", "live_no_callback_errors",
    "live_epoch_tracks_incarnation", "live_no_decode_errors",
    "live_kv_no_phantom_reads")


def check_live_invariants(outcome) -> list[InvariantViolation]:
    """Run every live invariant against a LiveClusterResult."""
    violations = []
    violations.extend(live_no_duplicate_delivery(outcome))
    violations.extend(live_no_callback_errors(outcome))
    violations.extend(live_epoch_tracks_incarnation(outcome))
    violations.extend(live_no_decode_errors(outcome))
    violations.extend(live_kv_no_phantom_reads(outcome))
    return violations


#: The invariants check_invariants runs, in report order.
INVARIANTS: tuple[str, ...] = ("no_duplicate_delivery", "no_lost_acks",
                               "epoch_monotonicity", "ring_eventually_correct",
                               "kv_no_phantom_reads",
                               "kv_read_your_quorum_writes",
                               "kv_write_durability")


def check_invariants(result: ScenarioResult, *,
                     ring_threshold: float = 0.7,
                     ring_settle: float = 40.0,
                     include_ring: bool = True) -> list[InvariantViolation]:
    """Run every invariant against *result*; return all violations found."""
    violations = []
    violations.extend(no_duplicate_delivery(result))
    violations.extend(no_lost_acks(result))
    violations.extend(epoch_monotonicity(result))
    if include_ring:
        violations.extend(ring_eventually_correct(
            result, threshold=ring_threshold, settle=ring_settle))
    violations.extend(kv_no_phantom_reads(result))
    violations.extend(kv_read_your_quorum_writes(result))
    violations.extend(kv_write_durability(result))
    return violations
