"""The overlay-generic MACEDON API (Figure 3 of the paper).

Applications program against this API instead of against any particular
overlay, so switching the underlying overlay is a one-line change.  The class
below is a thin veneer over :class:`~repro.runtime.node.MacedonNode`; the
free functions mirror the C-style names from the paper for readers following
along with the original figure.
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.node import MacedonNode
from .handlers import (DeliverHandler, ForwardHandler, Handlers,
                       NotifyHandler, UpcallHandler)


class MacedonAPI:
    """Object-oriented wrapper over one node's MACEDON API."""

    def __init__(self, node: MacedonNode) -> None:
        self._node = node

    @property
    def node(self) -> MacedonNode:
        return self._node

    @property
    def address(self) -> int:
        """This node's host (IP-like) address."""
        return self._node.address

    @property
    def key(self) -> int:
        """This node's identifier in the hash address space."""
        return self._node.highest_agent.my_key

    # ------------------------------------------------------------------ control
    def init(self, bootstrap: int, protocol: Optional[str] = None) -> None:
        self._node.macedon_init(bootstrap, protocol)

    def register_handlers(self,
                          forward: Optional[ForwardHandler] = None,
                          deliver: Optional[DeliverHandler] = None,
                          notify: Optional[NotifyHandler] = None,
                          upcall: Optional[UpcallHandler] = None) -> None:
        if isinstance(forward, Handlers):
            self._node.macedon_register_handlers(forward)
            return
        self._node.macedon_register_handlers(deliver=deliver, forward=forward,
                                             notify=notify, upcall=upcall)

    def create_group(self, group_id: int) -> Any:
        return self._node.macedon_create_group(group_id)

    def join(self, group_id: int) -> Any:
        return self._node.macedon_join(group_id)

    def leave(self, group_id: int) -> Any:
        return self._node.macedon_leave(group_id)

    # --------------------------------------------------------------------- data
    def route(self, dest_key: int, payload: Any, size: int, priority: int = -1) -> Any:
        return self._node.macedon_route(dest_key, payload, size, priority)

    def route_ip(self, dest: int, payload: Any, size: int, priority: int = -1) -> Any:
        return self._node.macedon_routeIP(dest, payload, size, priority)

    def multicast(self, group_id: int, payload: Any, size: int,
                  priority: int = -1) -> Any:
        return self._node.macedon_multicast(group_id, payload, size, priority)

    def anycast(self, group_id: int, payload: Any, size: int,
                priority: int = -1) -> Any:
        return self._node.macedon_anycast(group_id, payload, size, priority)

    def collect(self, group_id: int, payload: Any, size: int,
                priority: int = -1) -> Any:
        return self._node.macedon_collect(group_id, payload, size, priority)


# ---------------------------------------------------------------- C-style names
def macedon_init(node: MacedonNode, bootstrap: int, prot: Optional[str] = None) -> None:
    """``macedon_init(macedon_key bootstrap, int prot)``."""
    node.macedon_init(bootstrap, prot)


def macedon_register_handlers(node: MacedonNode,
                              forward: Optional[ForwardHandler] = None,
                              deliver: Optional[DeliverHandler] = None,
                              notify: Optional[NotifyHandler] = None,
                              upcall: Optional[UpcallHandler] = None) -> None:
    """``macedon_register_handlers(...)``.

    Also accepts a ready-made :class:`Handlers` instance positionally, the
    shim form kept for the pre-``AppBase`` wiring style.
    """
    if isinstance(forward, Handlers):
        node.macedon_register_handlers(forward)
        return
    node.macedon_register_handlers(deliver=deliver, forward=forward,
                                   notify=notify, upcall=upcall)


def macedon_create_group(node: MacedonNode, group_id: int) -> Any:
    return node.macedon_create_group(group_id)


def macedon_join(node: MacedonNode, group_id: int) -> Any:
    return node.macedon_join(group_id)


def macedon_leave(node: MacedonNode, group_id: int) -> Any:
    return node.macedon_leave(group_id)


def macedon_route(node: MacedonNode, dest: int, msg: Any, size: int,
                  priority: int = -1) -> Any:
    return node.macedon_route(dest, msg, size, priority)


def macedon_routeIP(node: MacedonNode, dest: int, msg: Any, size: int,
                    priority: int = -1) -> Any:
    return node.macedon_routeIP(dest, msg, size, priority)


def macedon_multicast(node: MacedonNode, group_id: int, msg: Any, size: int,
                      priority: int = -1) -> Any:
    return node.macedon_multicast(group_id, msg, size, priority)


def macedon_anycast(node: MacedonNode, group_id: int, msg: Any, size: int,
                    priority: int = -1) -> Any:
    return node.macedon_anycast(group_id, msg, size, priority)


def macedon_collect(node: MacedonNode, group_id: int, msg: Any, size: int,
                    priority: int = -1) -> Any:
    return node.macedon_collect(group_id, msg, size, priority)
