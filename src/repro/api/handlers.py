"""Application upcall handlers.

The paper's ``macedon_register_handlers()`` lets an application install four
handlers: ``forward`` (called at every routing hop), ``deliver`` (called at
the final destination), ``notify`` (neighbor-set changes), and a generic
extensible ``upcall`` handler.  At least one handler is needed for the
application to receive data; all-None handlers are valid when only overlay
construction is being evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

#: deliver(payload, size, mtype) -> None
DeliverHandler = Callable[[Any, int, Any], None]
#: forward(payload, size, mtype, next_hop, next_hop_key) -> bool (False quashes)
ForwardHandler = Callable[[Any, int, Any, Optional[int], Optional[int]], bool]
#: notify(nbr_type, neighbors) -> None
NotifyHandler = Callable[[int, list[int]], None]
#: upcall(operation, arg) -> Any
UpcallHandler = Callable[[Any, Any], Any]


@dataclass
class Handlers:
    """The set of application handlers registered with one node."""

    deliver: Optional[DeliverHandler] = None
    forward: Optional[ForwardHandler] = None
    notify: Optional[NotifyHandler] = None
    upcall: Optional[UpcallHandler] = None

    def any_registered(self) -> bool:
        return any(handler is not None
                   for handler in (self.deliver, self.forward, self.notify, self.upcall))
