"""The overlay-generic MACEDON API."""

from .handlers import DeliverHandler, ForwardHandler, Handlers, NotifyHandler, UpcallHandler
from .macedon import (
    MacedonAPI,
    macedon_anycast,
    macedon_collect,
    macedon_create_group,
    macedon_init,
    macedon_join,
    macedon_leave,
    macedon_multicast,
    macedon_register_handlers,
    macedon_route,
    macedon_routeIP,
)

__all__ = [
    "DeliverHandler",
    "ForwardHandler",
    "Handlers",
    "NotifyHandler",
    "UpcallHandler",
    "MacedonAPI",
    "macedon_anycast",
    "macedon_collect",
    "macedon_create_group",
    "macedon_init",
    "macedon_join",
    "macedon_leave",
    "macedon_multicast",
    "macedon_register_handlers",
    "macedon_route",
    "macedon_routeIP",
]
