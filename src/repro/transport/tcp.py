"""Reliable, congestion-friendly transport (the grammar's ``TCP`` kind)."""

from __future__ import annotations

from .base import TransportKind
from .reliable import AimdWindow, ReliableTransport, WindowPolicy


class TcpTransport(ReliableTransport):
    """TCP-like transport: reliable delivery with slow start and AIMD."""

    def __init__(self, *args, initial_window: float = 2.0,
                 ssthresh: float = 64.0, max_window: float = 256.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._initial_window = initial_window
        self._ssthresh = ssthresh
        self._max_window = max_window

    @property
    def kind(self) -> TransportKind:
        return TransportKind.TCP

    def _make_policy(self) -> WindowPolicy:
        return AimdWindow(initial_window=self._initial_window,
                          ssthresh=self._ssthresh,
                          max_window=self._max_window)
