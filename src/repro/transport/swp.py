"""Reliable, congestion-unfriendly sliding-window transport (``SWP``).

The paper's third service class: a simple sliding window protocol that
retransmits losses but never reduces its window, so it is reliable without
being congestion-friendly.  Overcast binds its highest-priority control
messages (e.g. ``join_reply``, ``probe_request``) to an SWP instance so they
are never head-of-line blocked behind bulk TCP traffic.
"""

from __future__ import annotations

from .base import TransportKind
from .reliable import FixedWindow, ReliableTransport, WindowPolicy


class SwpTransport(ReliableTransport):
    """Fixed-window reliable transport."""

    def __init__(self, *args, window_size: int = 16, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._window_size = window_size

    @property
    def kind(self) -> TransportKind:
        return TransportKind.SWP

    def _make_policy(self) -> WindowPolicy:
        return FixedWindow(window_size=self._window_size)
