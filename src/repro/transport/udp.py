"""Best-effort datagram transport (the grammar's ``UDP`` kind).

Unreliable and congestion-unfriendly: every logical message becomes one or
more datagrams fired straight into the emulator; losses are not recovered and
there is no pacing.  Overlays use it for messages whose loss is tolerable
(periodic probes, soft-state refreshes, join requests that are retried by a
timer anyway).

The common case — a message that fits in one MSS — is fully inlined: a
three-slot :class:`Datagram` envelope goes straight into a
:class:`~repro.network.packet.Packet`, skipping :class:`Segment`
construction, the ``_send_packet`` indirection, and (on the receive side) the
reliable demux machinery.  Only oversized messages fall back to segments and
fragmentation.

This module also holds the *socket-backed counterpart* of the network
emulator, :class:`SocketUdpNetwork`: it frames the very same
``Datagram``/``Segment`` envelopes (and their :class:`WireCodec`-encoded
payloads) over a real UDP socket between OS processes, presenting the
emulator's ``send``/``set_receive_callback``/``attach_host`` surface so
:class:`~repro.transport.demux.TransportHost` and every transport class —
best-effort demux, reliable windows, epochs, reassembly — run unchanged in
live mode.  See docs/LIVE.md.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
import struct
import time
from typing import Any, Mapping, Optional

from ..network.addressing import HostAddress
from ..network.packet import Packet
from ..runtime.messages import WireCodec, WireError
from .base import Datagram, Segment, Transport, TransportKind


class UdpTransport(Transport):
    """Fire-and-forget datagrams with fragmentation but no reassembly timeout."""

    @property
    def kind(self) -> TransportKind:
        return TransportKind.UDP

    def send(self, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        stats = self.stats
        stats.messages_sent += 1
        if size <= self.MSS:
            # Inlined best-effort fast path (no Segment, no _send_packet).
            protocol = self._protocol_label
            if protocol is None:
                protocol = self._protocol_label = f"udp:{self.name}"
            accepted = self.emulator.send(
                Packet(src=self.local_address, dst=dst,
                       payload=Datagram(self.name, payload, size),
                       size=size, protocol=protocol),
                payload_tag=payload_tag)
            stats.segments_sent += 1
            stats.bytes_sent += size
            if not accepted:
                stats.drops += 1
            return
        # Fragment oversized messages; the receiver reassembles, and if any
        # fragment is lost the whole message is lost (as with IP fragmentation).
        msg_id = self.next_msg_id()
        chunks = (size + self.MSS - 1) // self.MSS
        remaining = size
        for index in range(chunks):
            chunk_size = min(self.MSS, remaining)
            remaining -= chunk_size
            segment = Segment(
                transport=self.name, kind="DATA", seq=index,
                payload=payload if index == 0 else None,
                size=chunk_size, msg_id=msg_id, chunk=index, chunks=chunks,
                epoch=self.epoch,
            )
            self._send_packet(dst, segment, chunk_size, payload_tag)

    def handle_datagram(self, src: int, datagram: Datagram) -> None:
        self.stats.segments_received += 1
        self._deliver_up(src, datagram.payload, datagram.size)

    def handle_segment(self, src: int, segment: Segment) -> None:
        self.stats.segments_received += 1
        if segment.chunks <= 1:
            self._deliver_up(src, segment.payload, segment.size)
            return
        key = (src, segment.msg_id)
        pending = self._reassembly.setdefault(key, {"chunks": {}, "payload": None})
        pending["chunks"][segment.chunk] = segment.size
        if segment.chunk == 0:
            pending["payload"] = segment.payload
        if len(pending["chunks"]) == segment.chunks:
            total = sum(pending["chunks"].values())
            payload = pending["payload"]
            del self._reassembly[key]
            self._deliver_up(src, payload, total)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._reassembly: dict[tuple[int, int], dict] = {}


# ================================================================ live sockets
logger = logging.getLogger(__name__)

#: Frames larger than this are split into fragment datagrams.  Sized to the
#: old single-datagram ceiling so every frame that fit before still goes out
#: as one unfragmented, byte-identical datagram (pinned by the fragmentation
#: tests), while staying under the 65 507-byte UDP payload maximum.
FRAGMENT_THRESHOLD = 60_000

#: Seconds an incomplete reassembly buffer may wait for its missing
#: fragments before it is garbage-collected (IP-style: lose one fragment,
#: lose the message).
FRAGMENT_TIMEOUT = 5.0


class SocketFaults:
    """Network-fault table for one live socket: the live twin of the
    emulator's partition/degrade hooks.

    Rules are keyed by *peer overlay address* and applied where a real
    network would apply them: outbound cuts drop the datagram after the
    transport stack handed it over (the send still "succeeds" — the bytes
    die in the network, not on the host), inbound cuts, loss, and delay act
    on arriving datagrams before any decoding.  Partition membership,
    directed cuts, and degradation rules are tracked separately so healing
    one fault never heals another that targets the same peer.

    The table is installed over the coordinator control channel (see
    :meth:`SocketUdpNetwork.apply_fault_op`); every operation is idempotent,
    so the coordinator can re-send rules (control datagrams are themselves
    best-effort) and replay the active set to a respawned node.
    """

    def __init__(self, local_address: int,
                 rng: Optional[random.Random] = None) -> None:
        self.local_address = local_address
        #: Loss rolls come from a per-node stream so a fixed seed gives a
        #: reproducible drop pattern per receiver (timing still varies).
        self.rng = rng if rng is not None \
            else random.Random(local_address * 0x9E3779B1)
        self.partitioned: set[int] = set()   # peers cut both ways
        self.cut_to: set[int] = set()        # outbound one-way cuts
        self.cut_from: set[int] = set()      # inbound one-way cuts
        self.delay_from: dict[int, float] = {}
        self.loss_from: dict[int, float] = {}

    def active(self) -> bool:
        return bool(self.partitioned or self.cut_to or self.cut_from
                    or self.delay_from or self.loss_from)

    def drops_outbound(self, dst: int) -> bool:
        return dst in self.partitioned or dst in self.cut_to

    def inbound(self, src: int):
        """Verdict for an arriving datagram from *src*.

        ``"drop"`` discards it, a positive float delays delivery by that
        many seconds, ``None`` delivers immediately.
        """
        if src in self.partitioned or src in self.cut_from:
            return "drop"
        loss = self.loss_from.get(src)
        if loss and self.rng.random() < loss:
            return "drop"
        return self.delay_from.get(src)

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"SocketFaults(addr={self.local_address}, "
                f"partitioned={sorted(self.partitioned)}, "
                f"cut_to={sorted(self.cut_to)}, "
                f"cut_from={sorted(self.cut_from)}, "
                f"delayed={sorted(self.delay_from)}, "
                f"lossy={sorted(self.loss_from)})")


class SocketUdpNetwork(asyncio.DatagramProtocol):
    """The network emulator's socket-backed counterpart for one live node.

    One instance owns one bound UDP socket and knows the ``(ip, port)``
    endpoint of every overlay address in the deployment (a static map the
    live cluster computes up front — the DNS of the harness).  It presents
    exactly the surface the transport subsystem and
    :class:`~repro.runtime.node.MacedonNode` use from
    :class:`~repro.network.emulator.NetworkEmulator`:

    * ``send(packet, payload_tag=None) -> bool`` — frames the packet's
      ``Datagram`` or ``Segment`` envelope plus its codec-encoded payload
      into one UDP datagram and transmits it;
    * ``set_receive_callback(address, cb)`` — registers the demux upcall;
    * ``attach_host`` / ``detach_host`` / ``reattach_host`` — address
      binding and the crash/recover mute switch.

    Because the same envelopes cross the wire, the *entire* transport stack —
    best-effort fast path, reliable AIMD/SWP windows, restart epochs with
    challenge ACKs, fragmentation/reassembly — behaves identically in both
    modes; only the bytes become real.  ``payload_tag`` (link-stress
    accounting, a global-knowledge metric) is accepted and ignored: there is
    no omniscient observer on a real network.
    """

    MAGIC = 0xCD
    _HEADER = struct.Struct("!BBI")          # magic, frame kind, src address
    _FRAME_DATAGRAM = 1
    _FRAME_SEGMENT = 2
    _FRAME_RAW = 3
    _FRAME_FRAGMENT = 4
    _FRAME_CONTROL = 5
    #: kind flag, seq, ack, msg_id, chunk, chunks, epoch, dest_epoch, size —
    #: the full Segment envelope (its ~45 bytes of framing play the role of
    #: the emulator's fixed HEADER_BYTES overhead).
    _SEGMENT = struct.Struct("!BqqQIIIII")
    #: magic, frame kind, src address, fragment id, index, count — each
    #: fragment datagram carries one slice of an oversized frame.
    _FRAGMENT = struct.Struct("!BBIIHH")
    #: Causal tracing piggyback (``repro.obs``): trace id, hop count, and
    #: wall-clock send time, wrapped *around* a complete ordinary frame.
    #: Only emitted when a causal log is attached — with tracing off every
    #: sub-cap frame stays byte-identical to the untraced build.
    _FRAME_TRACE = 6
    _TRACE = struct.Struct("!QHd")

    def __init__(self, local_address: int,
                 endpoints: Mapping[int, tuple[str, int]],
                 codec: WireCodec) -> None:
        if local_address not in endpoints:
            raise WireError(
                f"local address {local_address} missing from the endpoint map")
        self.local_address = local_address
        self.endpoints = dict(endpoints)
        self.codec = codec
        self._receive = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: False while "crashed": sends dropped, arrivals ignored.
        self.attached = True
        #: Injected network faults (partition/cut/degrade rules); consulted
        #: on both send and receive, installed via :meth:`apply_fault_op`.
        self.faults = SocketFaults(local_address)
        self._frag_id = 0
        #: (src, frag_id) -> partial reassembly state with a GC deadline.
        self._pending_fragments: dict[tuple[int, int], dict] = {}
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_drops = 0
        self.decode_errors = 0
        self.fault_drops = 0
        self.fragments_sent = 0
        self.fragments_received = 0
        self.reassembly_timeouts = 0
        self.control_frames = 0
        self.traced_frames = 0
        #: Optional :class:`repro.obs.LiveCausalLog`; one attribute read on
        #: the send path is the entire disabled-mode cost.
        self._causal = None

    # ------------------------------------------------------------- lifecycle
    async def open(self) -> None:
        """Bind the local endpoint on the running event loop."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        host, port = self.endpoints[self.local_address]
        await loop.create_datagram_endpoint(lambda: self,
                                            local_addr=(host, port))

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def connection_made(self, transport) -> None:   # DatagramProtocol hook
        self._transport = transport

    def connection_lost(self, exc) -> None:         # DatagramProtocol hook
        self._transport = None
        if exc is not None:   # pragma: no cover - platform-dependent
            logger.warning("live socket closed with error: %s", exc)

    def error_received(self, exc) -> None:          # pragma: no cover
        logger.warning("live socket error: %s", exc)

    # ------------------------------------------------- emulator-like surface
    def attach_host(self, topology_node: Optional[int] = None,
                    receive=None) -> HostAddress:
        """The node's attach call; a live node *is* its one host."""
        del topology_node   # There is no emulated topology to attach to.
        if receive is not None:
            self._receive = receive
        return HostAddress(address=self.local_address, topology_node=0)

    def set_receive_callback(self, address: int, receive) -> None:
        if address != self.local_address:
            raise WireError(
                f"cannot register a receive callback for {address} on the "
                f"socket bound to {self.local_address}")
        self._receive = receive

    def detach_host(self, address: int) -> None:
        if address == self.local_address:
            self.attached = False

    def reattach_host(self, address: int) -> None:
        if address == self.local_address:
            self.attached = True

    # ------------------------------------------------------------------ send
    def send(self, packet: Packet, payload_tag: Optional[str] = None) -> bool:
        del payload_tag   # Link-stress accounting is a simulation-only metric.
        if not self.attached or self._transport is None:
            self.send_drops += 1
            return False
        endpoint = self.endpoints.get(packet.dst)
        if endpoint is None:
            # Same behaviour as the emulator's detached-host rule: traffic to
            # an unknown/absent destination silently vanishes.
            self.send_drops += 1
            return False
        if self.faults.drops_outbound(packet.dst):
            # The datagram left this host and died in the (faulted) network:
            # the send succeeded as far as the transport stack knows.
            self.fault_drops += 1
            return True
        payload = packet.payload
        codec = self.codec
        if type(payload) is Datagram:
            frame = b"".join((
                self._HEADER.pack(self.MAGIC, self._FRAME_DATAGRAM,
                                  self.local_address),
                bytes([len(payload.transport)]),
                payload.transport.encode("ascii"),
                struct.pack("!I", payload.size),
                codec.encode_payload(payload.payload),
            ))
        elif isinstance(payload, Segment):
            frame = b"".join((
                self._HEADER.pack(self.MAGIC, self._FRAME_SEGMENT,
                                  self.local_address),
                bytes([len(payload.transport)]),
                payload.transport.encode("ascii"),
                self._SEGMENT.pack(
                    1 if payload.kind == "ACK" else 0, payload.seq,
                    payload.ack, payload.msg_id, payload.chunk,
                    payload.chunks, payload.epoch, payload.dest_epoch,
                    payload.size),
                codec.encode_payload(payload.payload),
            ))
        else:
            frame = (self._HEADER.pack(self.MAGIC, self._FRAME_RAW,
                                       self.local_address)
                     + codec.encode_payload(payload))
        causal = self._causal
        if causal is not None:
            ctx = causal.ctx
            if ctx is not None:
                trace_id, hop = ctx[0], ctx[1] + 1
            else:
                trace_id, hop = causal.new_trace(), 0
            if hop <= 0xFFFF:
                frame = (self._HEADER.pack(self.MAGIC, self._FRAME_TRACE,
                                           self.local_address)
                         + self._TRACE.pack(trace_id, hop, time.time())
                         + frame)
                self.traced_frames += 1
        if len(frame) > FRAGMENT_THRESHOLD:
            return self._send_fragmented(frame, endpoint)
        try:
            self._transport.sendto(frame, endpoint)
        except OSError as exc:   # pragma: no cover - oversized datagram, etc.
            logger.warning("live send to %s failed: %s", endpoint, exc)
            self.send_drops += 1
            return False
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        return True

    def _send_fragmented(self, frame: bytes, endpoint) -> bool:
        """Split an oversized frame into fragment datagrams.

        Each fragment carries ``(frag_id, index, count)`` plus one slice of
        the original frame — header included, so the reassembled bytes feed
        the normal decode path unchanged.  As with IP fragmentation, losing
        any fragment loses the whole message (the receiver's reassembly
        buffer is garbage-collected after :data:`FRAGMENT_TIMEOUT`).
        """
        budget = FRAGMENT_THRESHOLD - self._FRAGMENT.size
        count = (len(frame) + budget - 1) // budget
        if count > 0xFFFF:   # pragma: no cover - a >3.9 GB message
            logger.warning("frame of %d bytes exceeds the fragment count "
                           "limit; dropping", len(frame))
            self.send_drops += 1
            return False
        self._frag_id = frag_id = (self._frag_id + 1) & 0xFFFFFFFF
        for index in range(count):
            datagram = (self._FRAGMENT.pack(
                self.MAGIC, self._FRAME_FRAGMENT, self.local_address,
                frag_id, index, count)
                + frame[index * budget:(index + 1) * budget])
            try:
                self._transport.sendto(datagram, endpoint)
            except OSError as exc:   # pragma: no cover - kernel buffer, etc.
                logger.warning("live fragment send to %s failed: %s",
                               endpoint, exc)
                self.send_drops += 1
                return False
            self.frames_sent += 1
            self.fragments_sent += 1
            self.bytes_sent += len(datagram)
        return True

    # --------------------------------------------------------------- receive
    def datagram_received(self, data: bytes, addr) -> None:
        self.frames_received += 1
        self.bytes_received += len(data)
        try:
            magic, frame_kind, src = self._HEADER.unpack_from(data, 0)
        except struct.error:
            self.decode_errors += 1
            logger.warning("dropping runt datagram from %s", addr)
            return
        if magic != self.MAGIC:
            self.decode_errors += 1
            logger.warning("dropping datagram with bad magic %#x from %s",
                           magic, addr)
            return
        if frame_kind == self._FRAME_CONTROL:
            # The coordinator control channel is out-of-band: it works
            # through partitions (it *installs* them) and while the node is
            # detached, so fault state stays current across crash/recover.
            self._handle_control(data, addr)
            return
        if not self.attached or self._receive is None:
            return
        faults = self.faults
        if faults.active():
            verdict = faults.inbound(src)
            if verdict == "drop":
                self.fault_drops += 1
                return
            if verdict and self._loop is not None:
                self._loop.call_later(verdict, self._frame_received,
                                      data, addr)
                return
        self._frame_received(data, addr)

    def _frame_received(self, data: bytes, addr) -> None:
        if not self.attached or self._receive is None:
            return   # crashed while a delayed datagram was in flight
        try:
            magic, frame_kind, src = self._HEADER.unpack_from(data, 0)
            if frame_kind == self._FRAME_FRAGMENT:
                data = self._reassemble(data, addr)
                if data is None:
                    return
                magic, frame_kind, src = self._HEADER.unpack_from(data, 0)
            if frame_kind == self._FRAME_TRACE:
                # Unwrap the causal piggyback and process the inner frame.
                # A receiver without a causal log still interoperates: it
                # strips the envelope and moves on.
                trace_id, hop, sent_at = self._TRACE.unpack_from(
                    data, self._HEADER.size)
                inner = data[self._HEADER.size + self._TRACE.size:]
                causal = self._causal
                if causal is None:
                    self._frame_received(inner, addr)
                    return
                causal.on_hop(trace_id, hop, src, sent_at,
                              self.local_address)
                previous = causal.ctx
                causal.ctx = (trace_id, hop)
                try:
                    # Delivery is synchronous, so sends the handler makes
                    # while this context is set inherit the trace.
                    self._frame_received(inner, addr)
                finally:
                    causal.ctx = previous
                return
            offset = self._HEADER.size
            if frame_kind == self._FRAME_RAW:
                payload, _ = self.codec.decode_payload(data, offset)
                size = 0
            else:
                name_len = data[offset]
                offset += 1
                transport_name = data[offset:offset + name_len].decode("ascii")
                offset += name_len
                if frame_kind == self._FRAME_DATAGRAM:
                    (size,) = struct.unpack_from("!I", data, offset)
                    inner, _ = self.codec.decode_payload(data, offset + 4)
                    payload = Datagram(transport_name, inner, size)
                elif frame_kind == self._FRAME_SEGMENT:
                    (kind_flag, seq, ack, msg_id, chunk, chunks, epoch,
                     dest_epoch, size) = self._SEGMENT.unpack_from(data, offset)
                    inner, _ = self.codec.decode_payload(
                        data, offset + self._SEGMENT.size)
                    payload = Segment(
                        transport=transport_name,
                        kind="ACK" if kind_flag else "DATA", seq=seq,
                        payload=inner, size=size, ack=ack, msg_id=msg_id,
                        chunk=chunk, chunks=chunks, epoch=epoch,
                        dest_epoch=dest_epoch)
                else:
                    raise WireError(f"unknown frame kind {frame_kind}")
        except (WireError, struct.error, IndexError, UnicodeDecodeError) as exc:
            # A malformed datagram (version skew, stray traffic on the port)
            # must not kill a live node: count it and drop, like line noise.
            self.decode_errors += 1
            logger.warning("dropping undecodable datagram from %s: %s",
                           addr, exc)
            return
        packet = Packet(src=src, dst=self.local_address, payload=payload,
                        size=size, protocol="live")
        try:
            self._receive(packet)
        except Exception:   # noqa: BLE001 - one bad packet must not stop the node
            logger.exception("live receive callback failed for %r", packet)

    # ---------------------------------------------------------- reassembly
    def _reassemble(self, data: bytes, addr) -> Optional[bytes]:
        """Buffer one fragment; return the whole frame when complete."""
        self.fragments_received += 1
        now = time.monotonic()
        if self._pending_fragments:
            self._gc_fragments(now)
        try:
            _, _, src, frag_id, index, count = self._FRAGMENT.unpack_from(
                data, 0)
        except struct.error as exc:
            raise WireError(f"truncated fragment header: {exc}") from exc
        if count == 0 or index >= count:
            raise WireError(f"bad fragment index {index}/{count}")
        key = (src, frag_id)
        entry = self._pending_fragments.get(key)
        if entry is None:
            entry = self._pending_fragments[key] = {
                "deadline": now + FRAGMENT_TIMEOUT, "count": count,
                "chunks": {}}
        elif entry["count"] != count:
            del self._pending_fragments[key]
            raise WireError(
                f"fragment count changed mid-reassembly ({entry['count']} "
                f"vs {count}) for id {frag_id}")
        entry["chunks"][index] = data[self._FRAGMENT.size:]
        if len(entry["chunks"]) < entry["count"]:
            return None
        del self._pending_fragments[key]
        return b"".join(entry["chunks"][i] for i in range(entry["count"]))

    def _gc_fragments(self, now: Optional[float] = None) -> None:
        """Drop reassembly buffers whose missing fragments never came.

        Called lazily from the fragment path (a socket with no pending
        buffers pays nothing); tests may call it directly.
        """
        if now is None:
            now = time.monotonic()
        expired = [key for key, entry in self._pending_fragments.items()
                   if entry["deadline"] <= now]
        for key in expired:
            del self._pending_fragments[key]
            self.reassembly_timeouts += 1

    # ------------------------------------------------------ control channel
    @classmethod
    def control_frame(cls, op: dict, src: int = 0) -> bytes:
        """Encode a fault-table operation as one control datagram.

        The coordinator (conventionally address 0, which no overlay node
        uses) sends these from a plain blocking socket; they need no codec.
        """
        return (cls._HEADER.pack(cls.MAGIC, cls._FRAME_CONTROL, src)
                + json.dumps(op, separators=(",", ":")).encode("utf-8"))

    def set_control_callback(self, callback) -> None:
        """Override the default control handler (:meth:`apply_fault_op`)."""
        self._control_handler = callback

    def _handle_control(self, data: bytes, addr) -> None:
        self.control_frames += 1
        try:
            op = json.loads(data[self._HEADER.size:].decode("utf-8"))
            if not isinstance(op, dict):
                raise WireError(f"control payload is not an object: {op!r}")
            handler = getattr(self, "_control_handler", None)
            if handler is not None:
                handler(op)
            else:
                self.apply_fault_op(op)
        except (WireError, ValueError, KeyError, TypeError) as exc:
            self.decode_errors += 1
            logger.warning("dropping bad control frame from %s: %s",
                           addr, exc)

    def apply_fault_op(self, op: dict) -> None:
        """Apply one coordinator fault operation to the local fault table.

        Addresses in *op* are overlay addresses.  Operations:

        * ``{"op": "partition", "groups": [[a, b], [c]]}`` — host-level
          partition: this node can only reach peers in its own group;
          unlisted nodes form their own implicit group (exactly the
          emulator's ``partition_hosts`` rule).  Replaces any previous
          partition.
        * ``{"op": "heal-partition"}`` — clear partition rules only.
        * ``{"op": "cut", "pairs": [[a, b]], "one_way": true}`` — cut the
          ``a -> b`` direction of each pair (both directions when
          ``one_way`` is false/absent).
        * ``{"op": "heal", "pairs": [[a, b]]}`` — remove both directions of
          each pair from the cut sets.
        * ``{"op": "degrade", "targets": [a], "delay": 0.05, "loss": 0.3}``
          — degrade the access link of each target: arrivals *from* a
          target are delayed/lossy everywhere, and a targeted node applies
          the rules to every peer (so its inbound direction degrades too).
        * ``{"op": "restore", "targets": [a]}`` — undo ``degrade``.
        """
        faults = self.faults
        kind = op.get("op")
        if kind == "partition":
            groups = [set(group) for group in op.get("groups", ())]
            peers = set(self.endpoints) - {self.local_address}
            mine = next((group for group in groups
                         if self.local_address in group), None)
            if mine is None:
                listed: set[int] = set()
                for group in groups:
                    listed |= group
                faults.partitioned = peers & listed
            else:
                faults.partitioned = peers - mine
        elif kind == "heal-partition":
            faults.partitioned = set()
        elif kind == "cut":
            one_way = bool(op.get("one_way"))
            for u, v in op.get("pairs", ()):
                if self.local_address == u:
                    faults.cut_to.add(v)
                    if not one_way:
                        faults.cut_from.add(v)
                if self.local_address == v:
                    faults.cut_from.add(u)
                    if not one_way:
                        faults.cut_to.add(u)
        elif kind == "heal":
            # Healing is generous: both directions of the pair reopen even
            # if the cut was one-way.
            for u, v in op.get("pairs", ()):
                if self.local_address == u:
                    faults.cut_to.discard(v)
                    faults.cut_from.discard(v)
                if self.local_address == v:
                    faults.cut_to.discard(u)
                    faults.cut_from.discard(u)
        elif kind == "degrade":
            targets = set(op.get("targets", ()))
            delay = float(op.get("delay", 0.0))
            loss = float(op.get("loss", 0.0))
            affected = (set(self.endpoints) - {self.local_address}
                        if self.local_address in targets else targets)
            for peer in affected:
                if delay > 0:
                    faults.delay_from[peer] = delay
                if loss > 0:
                    faults.loss_from[peer] = loss
        elif kind == "restore":
            targets = set(op.get("targets", ()))
            if self.local_address in targets:
                faults.delay_from.clear()
                faults.loss_from.clear()
            else:
                for peer in targets:
                    faults.delay_from.pop(peer, None)
                    faults.loss_from.pop(peer, None)
        else:
            raise WireError(f"unknown fault op {kind!r}")

    @classmethod
    def parse_control_frame(cls, data: bytes) -> Optional[dict]:
        """Decode a control datagram back to its op dict, or ``None``.

        The coordinator's side of the channel: node replies (e.g. the
        ``obs-stats`` report) arrive on its plain blocking socket, outside
        any :class:`SocketUdpNetwork` instance.
        """
        try:
            magic, frame_kind, _src = cls._HEADER.unpack_from(data, 0)
            if magic != cls.MAGIC or frame_kind != cls._FRAME_CONTROL:
                return None
            op = json.loads(data[cls._HEADER.size:].decode("utf-8"))
        except (struct.error, ValueError, UnicodeDecodeError):
            return None
        return op if isinstance(op, dict) else None

    def send_raw(self, frame: bytes, endpoint: tuple[str, int]) -> None:
        """Transmit a pre-framed datagram (control replies)."""
        if self._transport is None:
            return
        try:
            self._transport.sendto(frame, endpoint)
        except OSError as exc:   # pragma: no cover - kernel buffer, etc.
            logger.warning("control reply to %s failed: %s", endpoint, exc)

    # --------------------------------------------------------- observability
    def enable_causal(self, causal) -> None:
        """Attach a :class:`repro.obs.LiveCausalLog`.

        From now on every outbound data frame is wrapped in a ``TRACE``
        envelope carrying (trace id, hop, send time), and inbound
        envelopes are unwrapped with the hop recorded.  Never enabled by
        default: wire bytes with tracing off are pinned byte-identical.
        """
        self._causal = causal

    def stats(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "send_drops": self.send_drops,
            "decode_errors": self.decode_errors,
            "fault_drops": self.fault_drops,
            "fragments_sent": self.fragments_sent,
            "fragments_received": self.fragments_received,
            "reassembly_timeouts": self.reassembly_timeouts,
            "control_frames": self.control_frames,
            "traced_frames": self.traced_frames,
        }

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        endpoint = self.endpoints.get(self.local_address)
        return (f"SocketUdpNetwork(addr={self.local_address}, "
                f"endpoint={endpoint}, peers={len(self.endpoints) - 1})")
