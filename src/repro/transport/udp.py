"""Best-effort datagram transport (the grammar's ``UDP`` kind).

Unreliable and congestion-unfriendly: every logical message becomes one or
more datagrams fired straight into the emulator; losses are not recovered and
there is no pacing.  Overlays use it for messages whose loss is tolerable
(periodic probes, soft-state refreshes, join requests that are retried by a
timer anyway).

The common case — a message that fits in one MSS — is fully inlined: a
three-slot :class:`Datagram` envelope goes straight into a
:class:`~repro.network.packet.Packet`, skipping :class:`Segment`
construction, the ``_send_packet`` indirection, and (on the receive side) the
reliable demux machinery.  Only oversized messages fall back to segments and
fragmentation.

This module also holds the *socket-backed counterpart* of the network
emulator, :class:`SocketUdpNetwork`: it frames the very same
``Datagram``/``Segment`` envelopes (and their :class:`WireCodec`-encoded
payloads) over a real UDP socket between OS processes, presenting the
emulator's ``send``/``set_receive_callback``/``attach_host`` surface so
:class:`~repro.transport.demux.TransportHost` and every transport class —
best-effort demux, reliable windows, epochs, reassembly — run unchanged in
live mode.  See docs/LIVE.md.
"""

from __future__ import annotations

import asyncio
import logging
import struct
from typing import Any, Mapping, Optional

from ..network.addressing import HostAddress
from ..network.packet import Packet
from ..runtime.messages import WireCodec, WireError
from .base import Datagram, Segment, Transport, TransportKind


class UdpTransport(Transport):
    """Fire-and-forget datagrams with fragmentation but no reassembly timeout."""

    @property
    def kind(self) -> TransportKind:
        return TransportKind.UDP

    def send(self, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        stats = self.stats
        stats.messages_sent += 1
        if size <= self.MSS:
            # Inlined best-effort fast path (no Segment, no _send_packet).
            protocol = self._protocol_label
            if protocol is None:
                protocol = self._protocol_label = f"udp:{self.name}"
            accepted = self.emulator.send(
                Packet(src=self.local_address, dst=dst,
                       payload=Datagram(self.name, payload, size),
                       size=size, protocol=protocol),
                payload_tag=payload_tag)
            stats.segments_sent += 1
            stats.bytes_sent += size
            if not accepted:
                stats.drops += 1
            return
        # Fragment oversized messages; the receiver reassembles, and if any
        # fragment is lost the whole message is lost (as with IP fragmentation).
        msg_id = self.next_msg_id()
        chunks = (size + self.MSS - 1) // self.MSS
        remaining = size
        for index in range(chunks):
            chunk_size = min(self.MSS, remaining)
            remaining -= chunk_size
            segment = Segment(
                transport=self.name, kind="DATA", seq=index,
                payload=payload if index == 0 else None,
                size=chunk_size, msg_id=msg_id, chunk=index, chunks=chunks,
                epoch=self.epoch,
            )
            self._send_packet(dst, segment, chunk_size, payload_tag)

    def handle_datagram(self, src: int, datagram: Datagram) -> None:
        self.stats.segments_received += 1
        self._deliver_up(src, datagram.payload, datagram.size)

    def handle_segment(self, src: int, segment: Segment) -> None:
        self.stats.segments_received += 1
        if segment.chunks <= 1:
            self._deliver_up(src, segment.payload, segment.size)
            return
        key = (src, segment.msg_id)
        pending = self._reassembly.setdefault(key, {"chunks": {}, "payload": None})
        pending["chunks"][segment.chunk] = segment.size
        if segment.chunk == 0:
            pending["payload"] = segment.payload
        if len(pending["chunks"]) == segment.chunks:
            total = sum(pending["chunks"].values())
            payload = pending["payload"]
            del self._reassembly[key]
            self._deliver_up(src, payload, total)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._reassembly: dict[tuple[int, int], dict] = {}


# ================================================================ live sockets
logger = logging.getLogger(__name__)


class SocketUdpNetwork(asyncio.DatagramProtocol):
    """The network emulator's socket-backed counterpart for one live node.

    One instance owns one bound UDP socket and knows the ``(ip, port)``
    endpoint of every overlay address in the deployment (a static map the
    live cluster computes up front — the DNS of the harness).  It presents
    exactly the surface the transport subsystem and
    :class:`~repro.runtime.node.MacedonNode` use from
    :class:`~repro.network.emulator.NetworkEmulator`:

    * ``send(packet, payload_tag=None) -> bool`` — frames the packet's
      ``Datagram`` or ``Segment`` envelope plus its codec-encoded payload
      into one UDP datagram and transmits it;
    * ``set_receive_callback(address, cb)`` — registers the demux upcall;
    * ``attach_host`` / ``detach_host`` / ``reattach_host`` — address
      binding and the crash/recover mute switch.

    Because the same envelopes cross the wire, the *entire* transport stack —
    best-effort fast path, reliable AIMD/SWP windows, restart epochs with
    challenge ACKs, fragmentation/reassembly — behaves identically in both
    modes; only the bytes become real.  ``payload_tag`` (link-stress
    accounting, a global-knowledge metric) is accepted and ignored: there is
    no omniscient observer on a real network.
    """

    MAGIC = 0xCD
    _HEADER = struct.Struct("!BBI")          # magic, frame kind, src address
    _FRAME_DATAGRAM = 1
    _FRAME_SEGMENT = 2
    _FRAME_RAW = 3
    #: kind flag, seq, ack, msg_id, chunk, chunks, epoch, dest_epoch, size —
    #: the full Segment envelope (its ~45 bytes of framing play the role of
    #: the emulator's fixed HEADER_BYTES overhead).
    _SEGMENT = struct.Struct("!BqqQIIIII")

    def __init__(self, local_address: int,
                 endpoints: Mapping[int, tuple[str, int]],
                 codec: WireCodec) -> None:
        if local_address not in endpoints:
            raise WireError(
                f"local address {local_address} missing from the endpoint map")
        self.local_address = local_address
        self.endpoints = dict(endpoints)
        self.codec = codec
        self._receive = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        #: False while "crashed": sends dropped, arrivals ignored.
        self.attached = True
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_drops = 0
        self.decode_errors = 0

    # ------------------------------------------------------------- lifecycle
    async def open(self) -> None:
        """Bind the local endpoint on the running event loop."""
        loop = asyncio.get_running_loop()
        host, port = self.endpoints[self.local_address]
        await loop.create_datagram_endpoint(lambda: self,
                                            local_addr=(host, port))

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def connection_made(self, transport) -> None:   # DatagramProtocol hook
        self._transport = transport

    def connection_lost(self, exc) -> None:         # DatagramProtocol hook
        self._transport = None
        if exc is not None:   # pragma: no cover - platform-dependent
            logger.warning("live socket closed with error: %s", exc)

    def error_received(self, exc) -> None:          # pragma: no cover
        logger.warning("live socket error: %s", exc)

    # ------------------------------------------------- emulator-like surface
    def attach_host(self, topology_node: Optional[int] = None,
                    receive=None) -> HostAddress:
        """The node's attach call; a live node *is* its one host."""
        del topology_node   # There is no emulated topology to attach to.
        if receive is not None:
            self._receive = receive
        return HostAddress(address=self.local_address, topology_node=0)

    def set_receive_callback(self, address: int, receive) -> None:
        if address != self.local_address:
            raise WireError(
                f"cannot register a receive callback for {address} on the "
                f"socket bound to {self.local_address}")
        self._receive = receive

    def detach_host(self, address: int) -> None:
        if address == self.local_address:
            self.attached = False

    def reattach_host(self, address: int) -> None:
        if address == self.local_address:
            self.attached = True

    # ------------------------------------------------------------------ send
    def send(self, packet: Packet, payload_tag: Optional[str] = None) -> bool:
        del payload_tag   # Link-stress accounting is a simulation-only metric.
        if not self.attached or self._transport is None:
            self.send_drops += 1
            return False
        endpoint = self.endpoints.get(packet.dst)
        if endpoint is None:
            # Same behaviour as the emulator's detached-host rule: traffic to
            # an unknown/absent destination silently vanishes.
            self.send_drops += 1
            return False
        payload = packet.payload
        codec = self.codec
        if type(payload) is Datagram:
            frame = b"".join((
                self._HEADER.pack(self.MAGIC, self._FRAME_DATAGRAM,
                                  self.local_address),
                bytes([len(payload.transport)]),
                payload.transport.encode("ascii"),
                struct.pack("!I", payload.size),
                codec.encode_payload(payload.payload),
            ))
        elif isinstance(payload, Segment):
            frame = b"".join((
                self._HEADER.pack(self.MAGIC, self._FRAME_SEGMENT,
                                  self.local_address),
                bytes([len(payload.transport)]),
                payload.transport.encode("ascii"),
                self._SEGMENT.pack(
                    1 if payload.kind == "ACK" else 0, payload.seq,
                    payload.ack, payload.msg_id, payload.chunk,
                    payload.chunks, payload.epoch, payload.dest_epoch,
                    payload.size),
                codec.encode_payload(payload.payload),
            ))
        else:
            frame = (self._HEADER.pack(self.MAGIC, self._FRAME_RAW,
                                       self.local_address)
                     + codec.encode_payload(payload))
        try:
            self._transport.sendto(frame, endpoint)
        except OSError as exc:   # pragma: no cover - oversized datagram, etc.
            logger.warning("live send to %s failed: %s", endpoint, exc)
            self.send_drops += 1
            return False
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        return True

    # --------------------------------------------------------------- receive
    def datagram_received(self, data: bytes, addr) -> None:
        if not self.attached or self._receive is None:
            return
        self.frames_received += 1
        self.bytes_received += len(data)
        try:
            magic, frame_kind, src = self._HEADER.unpack_from(data, 0)
            if magic != self.MAGIC:
                raise WireError(f"bad frame magic {magic:#x}")
            offset = self._HEADER.size
            if frame_kind == self._FRAME_RAW:
                payload, _ = self.codec.decode_payload(data, offset)
                size = 0
            else:
                name_len = data[offset]
                offset += 1
                transport_name = data[offset:offset + name_len].decode("ascii")
                offset += name_len
                if frame_kind == self._FRAME_DATAGRAM:
                    (size,) = struct.unpack_from("!I", data, offset)
                    inner, _ = self.codec.decode_payload(data, offset + 4)
                    payload = Datagram(transport_name, inner, size)
                elif frame_kind == self._FRAME_SEGMENT:
                    (kind_flag, seq, ack, msg_id, chunk, chunks, epoch,
                     dest_epoch, size) = self._SEGMENT.unpack_from(data, offset)
                    inner, _ = self.codec.decode_payload(
                        data, offset + self._SEGMENT.size)
                    payload = Segment(
                        transport=transport_name,
                        kind="ACK" if kind_flag else "DATA", seq=seq,
                        payload=inner, size=size, ack=ack, msg_id=msg_id,
                        chunk=chunk, chunks=chunks, epoch=epoch,
                        dest_epoch=dest_epoch)
                else:
                    raise WireError(f"unknown frame kind {frame_kind}")
        except (WireError, struct.error, IndexError, UnicodeDecodeError) as exc:
            # A malformed datagram (version skew, stray traffic on the port)
            # must not kill a live node: count it and drop, like line noise.
            self.decode_errors += 1
            logger.warning("dropping undecodable datagram from %s: %s",
                           addr, exc)
            return
        packet = Packet(src=src, dst=self.local_address, payload=payload,
                        size=size, protocol="live")
        try:
            self._receive(packet)
        except Exception:   # noqa: BLE001 - one bad packet must not stop the node
            logger.exception("live receive callback failed for %r", packet)

    def stats(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "send_drops": self.send_drops,
            "decode_errors": self.decode_errors,
        }

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        endpoint = self.endpoints.get(self.local_address)
        return (f"SocketUdpNetwork(addr={self.local_address}, "
                f"endpoint={endpoint}, peers={len(self.endpoints) - 1})")
