"""Best-effort datagram transport (the grammar's ``UDP`` kind).

Unreliable and congestion-unfriendly: every logical message becomes one or
more datagrams fired straight into the emulator; losses are not recovered and
there is no pacing.  Overlays use it for messages whose loss is tolerable
(periodic probes, soft-state refreshes, join requests that are retried by a
timer anyway).

The common case — a message that fits in one MSS — is fully inlined: a
three-slot :class:`Datagram` envelope goes straight into a
:class:`~repro.network.packet.Packet`, skipping :class:`Segment`
construction, the ``_send_packet`` indirection, and (on the receive side) the
reliable demux machinery.  Only oversized messages fall back to segments and
fragmentation.
"""

from __future__ import annotations

from typing import Any, Optional

from ..network.packet import Packet
from .base import Datagram, Segment, Transport, TransportKind


class UdpTransport(Transport):
    """Fire-and-forget datagrams with fragmentation but no reassembly timeout."""

    @property
    def kind(self) -> TransportKind:
        return TransportKind.UDP

    def send(self, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        stats = self.stats
        stats.messages_sent += 1
        if size <= self.MSS:
            # Inlined best-effort fast path (no Segment, no _send_packet).
            protocol = self._protocol_label
            if protocol is None:
                protocol = self._protocol_label = f"udp:{self.name}"
            accepted = self.emulator.send(
                Packet(src=self.local_address, dst=dst,
                       payload=Datagram(self.name, payload, size),
                       size=size, protocol=protocol),
                payload_tag=payload_tag)
            stats.segments_sent += 1
            stats.bytes_sent += size
            if not accepted:
                stats.drops += 1
            return
        # Fragment oversized messages; the receiver reassembles, and if any
        # fragment is lost the whole message is lost (as with IP fragmentation).
        msg_id = self.next_msg_id()
        chunks = (size + self.MSS - 1) // self.MSS
        remaining = size
        for index in range(chunks):
            chunk_size = min(self.MSS, remaining)
            remaining -= chunk_size
            segment = Segment(
                transport=self.name, kind="DATA", seq=index,
                payload=payload if index == 0 else None,
                size=chunk_size, msg_id=msg_id, chunk=index, chunks=chunks,
                epoch=self.epoch,
            )
            self._send_packet(dst, segment, chunk_size, payload_tag)

    def handle_datagram(self, src: int, datagram: Datagram) -> None:
        self.stats.segments_received += 1
        self._deliver_up(src, datagram.payload, datagram.size)

    def handle_segment(self, src: int, segment: Segment) -> None:
        self.stats.segments_received += 1
        if segment.chunks <= 1:
            self._deliver_up(src, segment.payload, segment.size)
            return
        key = (src, segment.msg_id)
        pending = self._reassembly.setdefault(key, {"chunks": {}, "payload": None})
        pending["chunks"][segment.chunk] = segment.size
        if segment.chunk == 0:
            pending["payload"] = segment.payload
        if len(pending["chunks"]) == segment.chunks:
            total = sum(pending["chunks"].values())
            payload = pending["payload"]
            del self._reassembly[key]
            self._deliver_up(src, payload, total)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._reassembly: dict[tuple[int, int], dict] = {}
