"""Transport subsystem interfaces.

The MACEDON grammar lets the lowest-layer protocol declare named transport
instances of three kinds and bind each message type to one of them::

    transports {
        SWP HIGHEST;
        TCP HIGH;
        TCP MED;
        TCP LOW;
        UDP BEST_EFFORT;
    }

* ``TCP`` — reliable and congestion-friendly (AIMD window).
* ``UDP`` — unreliable and congestion-unfriendly (best effort).
* ``SWP`` — reliable but congestion-unfriendly (fixed-size sliding window).

Declaring *multiple* blocking transports of the same kind is the paper's
mechanism for message priority: if one TCP instance is blocked draining
low-priority traffic, high-priority messages on a different instance are not
head-of-line blocked behind it.  The runtime preserves those semantics: each
transport instance has its own send queue and connection state.
"""

from __future__ import annotations

import abc
import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..network.emulator import NetworkEmulator
from ..network.packet import Packet
from ..runtime.engine import Simulator

#: Upcall signature: (source host address, payload, payload size, transport name).
DeliverUpcall = Callable[[int, Any, int, str], None]


class TransportError(RuntimeError):
    """Raised for misconfigured transport declarations or unknown instances."""


class TransportKind(enum.Enum):
    """The three transport service classes of the MACEDON grammar."""

    TCP = "TCP"
    UDP = "UDP"
    SWP = "SWP"

    @classmethod
    def parse(cls, text: str) -> "TransportKind":
        try:
            return cls[text.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown transport kind {text!r}") from exc


class Segment:
    """What a reliable transport puts inside a network packet.

    A ``__slots__`` class with a hand-written constructor rather than a
    dataclass: one is allocated per DATA segment and per ACK, which makes it
    protocol-plane hot-path state (see docs/PERFORMANCE.md).
    """

    __slots__ = ("transport", "kind", "seq", "payload", "size", "ack",
                 "msg_id", "chunk", "chunks", "epoch", "dest_epoch")

    def __init__(self, transport: str, kind: str = "DATA", seq: int = 0,
                 payload: Any = None, size: int = 0, ack: int = -1,
                 msg_id: int = 0, chunk: int = 0, chunks: int = 1,
                 epoch: int = 0, dest_epoch: int = 0) -> None:
        self.transport = transport
        self.kind = kind       # "DATA" or "ACK"
        self.seq = seq
        self.payload = payload
        self.size = size
        self.ack = ack
        #: Identifier of the logical message this segment belongs to (for
        #: reassembly); ``chunk``/``chunks`` index it within that message.
        self.msg_id = msg_id
        self.chunk = chunk
        self.chunks = chunks
        #: Incarnation of the sending host (bumped on fail-stop recovery).
        #: The reliable transports use it the way TCP uses new ISNs after a
        #: restart: a higher epoch from a peer resets the connection, a lower
        #: one is a stale pre-crash segment and is discarded.
        self.epoch = epoch
        #: The incarnation the sender believes the *destination* is running.
        #: A receiver that has restarted past this value drops the segment
        #: (it was aimed at its dead incarnation) and answers with a
        #: challenge ACK carrying its current epoch.  The sender then resets
        #: the connection and continues on a fresh stream; segments already
        #: in flight to the dead incarnation are LOST, exactly as
        #: unacknowledged data is lost in a real TCP connection reset (the
        #: restarted receiver has no state to deliver them into).
        #: Queued-but-untransmitted messages ride the new stream.
        self.dest_epoch = dest_epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Segment({self.transport!r}, {self.kind}, seq={self.seq}, "
                f"size={self.size}, ack={self.ack})")


class Datagram:
    """The inlined best-effort wire format: one unfragmented UDP message.

    Best-effort single-segment sends are the dominant traffic class, and they
    use none of the reliable machinery — no sequence numbers, no ACK field,
    no reassembly indices, no epoch checks (the UDP receive path never read
    them).  This three-slot envelope replaces the eleven-field
    :class:`Segment` on that path; the demux dispatches on its type before
    touching the segment machinery.
    """

    __slots__ = ("transport", "payload", "size")

    def __init__(self, transport: str, payload: Any, size: int) -> None:
        self.transport = transport
        self.payload = payload
        self.size = size


@dataclass
class TransportStats:
    """Per-transport-instance counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    segments_sent: int = 0
    segments_received: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    drops: int = 0


class Transport(abc.ABC):
    """Base class for one named transport instance bound to one host."""

    #: Maximum segment payload size in bytes (Ethernet-ish MSS).
    MSS = 1400

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        emulator: NetworkEmulator,
        local_address: int,
    ) -> None:
        self.name = name
        self.simulator = simulator
        self.emulator = emulator
        self.local_address = local_address
        #: This host's incarnation number, stamped on every outgoing segment
        #: (set by the TransportHost; 0 for a host that never crashed).
        self.epoch = 0
        self.stats = TransportStats()
        self._deliver_upcall: Optional[DeliverUpcall] = None
        self._msg_ids = itertools.count(1)
        # Wire-protocol tag stamped on every outgoing packet; formatted once
        # here rather than per packet (``kind`` is a property on subclasses).
        self._protocol_label: Optional[str] = None

    # ------------------------------------------------------------------ wiring
    def set_deliver_upcall(self, upcall: DeliverUpcall) -> None:
        """Register the callback invoked when a complete message arrives."""
        self._deliver_upcall = upcall

    def _deliver_up(self, src: int, payload: Any, size: int) -> None:
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += size
        if self._deliver_upcall is not None:
            self._deliver_upcall(src, payload, size, self.name)

    def _send_packet(self, dst: int, segment: Segment, size: int,
                     payload_tag: Optional[str] = None) -> bool:
        protocol = self._protocol_label
        if protocol is None:
            protocol = self._protocol_label = f"{self.kind.value.lower()}:{self.name}"
        packet = Packet(
            src=self.local_address,
            dst=dst,
            payload=segment,
            size=size,
            protocol=protocol,
        )
        accepted = self.emulator.send(packet, payload_tag=payload_tag)
        self.stats.segments_sent += 1
        self.stats.bytes_sent += size
        if not accepted:
            self.stats.drops += 1
        return accepted

    # --------------------------------------------------------------- interface
    @property
    @abc.abstractmethod
    def kind(self) -> TransportKind:
        """Service class of this transport."""

    @abc.abstractmethod
    def send(self, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        """Send a logical message of *size* bytes to host *dst*."""

    @abc.abstractmethod
    def handle_segment(self, src: int, segment: Segment) -> None:
        """Process a segment received from host *src*."""

    def handle_datagram(self, src: int, datagram: Datagram) -> None:
        """Process an inlined best-effort datagram.

        Only the best-effort transport produces (and therefore accepts)
        :class:`Datagram` envelopes; a reliable transport receiving one means
        the peer's stack binds this transport name to a different kind.
        """
        raise TransportError(
            f"transport {self.name!r} ({self.kind.value}) received a "
            f"best-effort datagram; peer stack binds this name to UDP"
        )

    def close(self) -> None:
        """Release timers and queued state (fail-stop crash of the host).

        Base implementation is a no-op; transports with retransmission timers
        or send queues override it so a crashed node stops generating events.
        """

    # ------------------------------------------------------------------ helpers
    def next_msg_id(self) -> int:
        return next(self._msg_ids)

    def queued_bytes(self, dst: Optional[int] = None) -> int:
        """Bytes waiting to be transmitted (0 for unqueued transports)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, host={self.local_address})"
