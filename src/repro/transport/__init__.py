"""Transport subsystem: TCP-like, UDP-like, and SWP service classes."""

from .base import DeliverUpcall, Segment, Transport, TransportKind, TransportStats
from .demux import TransportError, TransportHost
from .reliable import AimdWindow, FixedWindow, ReliableConnection, ReliableTransport
from .swp import SwpTransport
from .tcp import TcpTransport
from .udp import UdpTransport

__all__ = [
    "DeliverUpcall",
    "Segment",
    "Transport",
    "TransportKind",
    "TransportStats",
    "TransportError",
    "TransportHost",
    "AimdWindow",
    "FixedWindow",
    "ReliableConnection",
    "ReliableTransport",
    "SwpTransport",
    "TcpTransport",
    "UdpTransport",
]
