"""Per-host transport multiplexer.

One :class:`TransportHost` is attached to each emulated host.  It owns the
named transport instances a protocol stack declared, registers itself as the
host's network receive callback, and demultiplexes arriving segments to the
right transport instance by name — the interoperability layer the paper
describes sitting between the generated agent code and ns / native sockets.
"""

from __future__ import annotations

from typing import Any, Optional

from ..network.emulator import NetworkEmulator
from ..network.packet import Packet
from ..runtime.engine import Simulator
from .base import (DeliverUpcall, Datagram, Segment, Transport,
                   TransportError, TransportKind)
from .swp import SwpTransport
from .tcp import TcpTransport
from .udp import UdpTransport

_TRANSPORT_CLASSES = {
    TransportKind.TCP: TcpTransport,
    TransportKind.UDP: UdpTransport,
    TransportKind.SWP: SwpTransport,
}


class TransportHost:
    """The set of named transport instances bound to one emulated host."""

    #: Name of the transport created automatically when a protocol declares none.
    DEFAULT_TRANSPORT = "DEFAULT"

    def __init__(self, simulator: Simulator, emulator: NetworkEmulator,
                 local_address: int, *, epoch: int = 0) -> None:
        self.simulator = simulator
        self.emulator = emulator
        self.local_address = local_address
        #: Incarnation of this host (bumped across fail-stop recoveries);
        #: stamped on outgoing segments so peers reset dead connections.
        self.epoch = epoch
        self._transports: dict[str, Transport] = {}
        self._deliver_upcall: Optional[DeliverUpcall] = None
        #: False after shutdown(): sends are dropped, arrivals ignored.
        self.active = True
        emulator.set_receive_callback(local_address, self._on_packet)

    # ----------------------------------------------------------------- config
    def declare(self, kind: TransportKind, name: str, **options: Any) -> Transport:
        """Create a named transport instance of the given kind."""
        if name in self._transports:
            raise TransportError(f"transport {name!r} declared twice")
        transport_cls = _TRANSPORT_CLASSES[kind]
        transport = transport_cls(name, self.simulator, self.emulator,
                                  self.local_address, **options)
        transport.epoch = self.epoch
        if self._deliver_upcall is not None:
            transport.set_deliver_upcall(self._deliver_upcall)
        self._transports[name] = transport
        return transport

    def ensure_default(self) -> Transport:
        """Create the default TCP transport if nothing was declared."""
        if self.DEFAULT_TRANSPORT not in self._transports:
            self.declare(TransportKind.TCP, self.DEFAULT_TRANSPORT)
        return self._transports[self.DEFAULT_TRANSPORT]

    def set_deliver_upcall(self, upcall: DeliverUpcall) -> None:
        """Register the callback all transports use to deliver complete messages."""
        self._deliver_upcall = upcall
        for transport in self._transports.values():
            transport.set_deliver_upcall(upcall)

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> Transport:
        try:
            return self._transports[name]
        except KeyError as exc:
            raise TransportError(
                f"unknown transport {name!r} on host {self.local_address} "
                f"(declared: {sorted(self._transports)})"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._transports

    @property
    def names(self) -> list[str]:
        return sorted(self._transports)

    def send(self, transport_name: str, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        """Send *payload* via the named transport instance."""
        if not self.active:
            return  # Crashed host: outgoing traffic silently vanishes.
        transport = self._transports.get(transport_name)
        if transport is None:
            self.get(transport_name)  # raises the detailed TransportError
        transport.send(dst, payload, size, payload_tag)

    # --------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Silence this host's transport subsystem (fail-stop crash).

        Cancels retransmission timers, drops queued segments, and mutes both
        directions: no segment is sent or processed afterwards.  The node
        builds a *fresh* TransportHost on recovery (re-registering the
        receive callback), so a shut-down host is never revived in place.
        """
        self.active = False
        for transport in self._transports.values():
            transport.close()

    # ----------------------------------------------------------------- receive
    def _on_packet(self, packet: Packet) -> None:
        if not self.active:
            return  # Crashed host: arrivals fall on dead silicon.
        segment = packet.payload
        if type(segment) is Datagram:
            # Inlined best-effort fast path: dominant traffic class, checked
            # first, dispatched without touching the reliable machinery.
            transport = self._transports.get(segment.transport)
            if transport is None:
                raise TransportError(
                    f"host {self.local_address} received datagram for "
                    f"undeclared transport {segment.transport!r}"
                )
            transport.handle_datagram(packet.src, segment)
            return
        if not isinstance(segment, Segment):
            # Not transport traffic (e.g. a raw test packet); ignore silently.
            return
        transport = self._transports.get(segment.transport)
        if transport is None:
            # The peer used a transport name we have not declared; this is a
            # configuration error in a layered stack and should be loud.
            raise TransportError(
                f"host {self.local_address} received segment for undeclared "
                f"transport {segment.transport!r}"
            )
        transport.handle_segment(packet.src, segment)

    def stats(self) -> dict[str, Any]:
        """Per-transport statistics snapshot."""
        return {name: transport.stats for name, transport in self._transports.items()}
