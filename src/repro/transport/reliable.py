"""Shared machinery for the reliable transports (TCP and SWP).

Both reliable kinds share everything except the window policy:

* segmentation of logical messages into MSS-sized segments;
* cumulative acknowledgements with duplicate-ACK fast retransmit;
* retransmission timers with exponential backoff and SRTT/RTTVAR estimation;
* in-order delivery and reassembly of logical messages at the receiver;
* per-connection send queues, which is what gives the paper's priority
  transports their meaning — a blocked low-priority connection does not stall
  a separate high-priority transport instance.

:class:`WindowPolicy` is the strategy object that differs between kinds:
``TCP`` uses slow start + AIMD congestion avoidance (congestion-friendly),
``SWP`` uses a fixed window (reliable but congestion-unfriendly).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Any, Optional

from .base import Segment, Transport, TransportKind


class WindowPolicy(abc.ABC):
    """How many segments may be outstanding, and how to react to events."""

    @abc.abstractmethod
    def window(self) -> float:
        """Current window size in segments."""

    def on_ack(self, newly_acked: int) -> None:
        """Called when *newly_acked* segments are cumulatively acknowledged."""

    def on_timeout(self) -> None:
        """Called when the retransmission timer fires."""

    def on_fast_retransmit(self) -> None:
        """Called when three duplicate ACKs trigger a fast retransmit."""


class AimdWindow(WindowPolicy):
    """TCP-style slow start and additive-increase/multiplicative-decrease."""

    def __init__(self, initial_window: float = 2.0, ssthresh: float = 64.0,
                 max_window: float = 256.0) -> None:
        self.cwnd = initial_window
        self.ssthresh = ssthresh
        self.max_window = max_window

    def window(self) -> float:
        return self.cwnd

    def on_ack(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0                      # slow start
            else:
                self.cwnd += 1.0 / max(self.cwnd, 1)  # congestion avoidance
        self.cwnd = min(self.cwnd, self.max_window)

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh


class FixedWindow(WindowPolicy):
    """SWP-style fixed window: reliable, but never backs off."""

    def __init__(self, window_size: int = 16) -> None:
        self._window = float(window_size)

    def window(self) -> float:
        return self._window


class _InFlight:
    __slots__ = ("segment", "size", "sent_at", "retransmitted")

    def __init__(self, segment: Segment, size: int, sent_at: float,
                 retransmitted: bool = False) -> None:
        self.segment = segment
        self.size = size
        self.sent_at = sent_at
        self.retransmitted = retransmitted


class _QueuedSegment:
    __slots__ = ("segment", "size", "payload_tag")

    def __init__(self, segment: Segment, size: int,
                 payload_tag: Optional[str]) -> None:
        self.segment = segment
        self.size = size
        self.payload_tag = payload_tag


class ReliableConnection:
    """One direction of reliable delivery between this host and one peer."""

    INITIAL_RTO = 1.0
    MIN_RTO = 0.2
    MAX_RTO = 30.0
    ACK_SIZE = 4

    def __init__(self, transport: "ReliableTransport", peer: int,
                 policy: WindowPolicy) -> None:
        self.transport = transport
        self.peer = peer
        self.policy = policy
        # Sender state.
        self.next_seq = 0
        self.send_base = 0
        self.queue: deque[_QueuedSegment] = deque()
        self.in_flight: dict[int, _InFlight] = {}
        self.dup_acks = 0
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.INITIAL_RTO
        # Retransmission timer, re-armed on every transmit and every ACK: it
        # rides the kernel's generation-counter entries (schedule_gen) so the
        # constant re-arming allocates no EventHandle/_Event/label per packet.
        self._timer_cell = [0]
        self._timer_armed = False
        # Receiver state.
        self.expected_seq = 0
        self.out_of_order: dict[int, Segment] = {}
        self._assembly: dict[int, dict[str, Any]] = {}
        #: Last incarnation seen from the peer; None until the first segment.
        self.peer_epoch: Optional[int] = None

    # ------------------------------------------------------------------ sender
    def enqueue(self, segment: Segment, size: int, payload_tag: Optional[str]) -> None:
        self.queue.append(_QueuedSegment(segment, size, payload_tag))
        self._pump()

    def queued_bytes(self) -> int:
        return sum(item.size for item in self.queue)

    def _pump(self) -> None:
        """Transmit queued segments while the window allows."""
        queue = self.queue
        if not queue:
            return
        # The window only moves on ACK/timeout events, never inside the
        # pump loop, so it is evaluated once per pump.
        window = int(self.policy.window())
        while queue and len(self.in_flight) < window:
            item = queue.popleft()
            item.segment.seq = self.next_seq
            self.next_seq += 1
            self._transmit(item.segment, item.size, item.payload_tag)

    def _stamp(self, segment: Segment) -> Segment:
        """Stamp the destination incarnation at transmission time.

        Re-stamped on every (re)transmission, not at enqueue: the sender may
        learn the peer restarted (via a challenge ACK) while a segment sits
        in the queue or awaits retransmission.
        """
        segment.dest_epoch = self.peer_epoch if self.peer_epoch is not None else 0
        return segment

    def _transmit(self, segment: Segment, size: int,
                  payload_tag: Optional[str], retransmit: bool = False) -> None:
        now = self.transport.simulator.now
        self.in_flight[segment.seq] = _InFlight(segment=segment, size=size,
                                                sent_at=now,
                                                retransmitted=retransmit)
        self.transport._send_packet(self.peer, self._stamp(segment), size,
                                    payload_tag)
        if retransmit:
            self.transport.stats.retransmissions += 1
        self._arm_timer()

    def _arm_timer(self) -> None:
        simulator = self.transport.simulator
        if self._timer_armed:
            self._timer_armed = False
            simulator.cancel_gen(self._timer_cell)
        if not self.in_flight:
            return
        self._timer_armed = True
        simulator.schedule_gen(self.rto, self._on_timeout, self._timer_cell)

    def close(self) -> None:
        """Drop all connection state and cancel the retransmission timer."""
        if self._timer_armed:
            self._timer_armed = False
            self.transport.simulator.cancel_gen(self._timer_cell)
        self.queue.clear()
        self.in_flight.clear()
        self.out_of_order.clear()
        self._assembly.clear()

    def reset_for_peer_restart(self, epoch: int) -> None:
        """The peer fail-stopped and came back: start a fresh byte stream.

        Everything in flight toward the old incarnation is void (its receiver
        restarted at sequence zero and will never acknowledge the old
        stream), and the old incarnation's unfinished inbound stream will
        never complete — the losses a real TCP connection reset incurs.
        Segments already queued but not yet transmitted are kept: they get
        sequence numbers at transmission time, so they simply ride the new
        stream.
        """
        self.peer_epoch = epoch
        if self._timer_armed:
            self._timer_armed = False
            self.transport.simulator.cancel_gen(self._timer_cell)
        self.in_flight.clear()
        self.next_seq = 0
        self.send_base = 0
        self.dup_acks = 0
        self.rto = self.INITIAL_RTO
        self.expected_seq = 0
        self.out_of_order.clear()
        self._assembly.clear()
        self._pump()

    def _on_timeout(self) -> None:
        self._timer_armed = False
        if not self.in_flight:
            return
        self.policy.on_timeout()
        self.rto = min(self.rto * 2.0, self.MAX_RTO)
        oldest_seq = min(self.in_flight)
        entry = self.in_flight[oldest_seq]
        entry.retransmitted = True
        entry.sent_at = self.transport.simulator.now
        self.transport._send_packet(self.peer, self._stamp(entry.segment),
                                    entry.size, None)
        self.transport.stats.retransmissions += 1
        self._arm_timer()

    def handle_ack(self, ack: int) -> None:
        """Process a cumulative ACK (next sequence number the peer expects)."""
        if ack <= self.send_base:
            self.dup_acks += 1
            if self.dup_acks >= 3 and self.send_base in self.in_flight:
                self.policy.on_fast_retransmit()
                entry = self.in_flight[self.send_base]
                entry.retransmitted = True
                self.transport._send_packet(self.peer, self._stamp(entry.segment),
                                            entry.size, None)
                self.transport.stats.retransmissions += 1
                self.dup_acks = 0
            return
        self.dup_acks = 0
        newly_acked = 0
        now = self.transport.simulator._now
        in_flight = self.in_flight
        # In-flight sequence numbers are contiguous in [send_base, next_seq),
        # so the acked prefix is exactly range(send_base, ack) — walking it
        # (ascending, the dict's insertion order) pops the same entries in
        # the same order as scanning the whole dict, without the list copy.
        for seq in range(self.send_base, min(ack, self.next_seq)):
            entry = in_flight.pop(seq, None)
            if entry is not None:
                newly_acked += 1
                if not entry.retransmitted:
                    self._update_rtt(now - entry.sent_at)
        self.send_base = ack
        self.policy.on_ack(newly_acked)
        self._arm_timer()
        self._pump()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, self.MIN_RTO), self.MAX_RTO)

    # ---------------------------------------------------------------- receiver
    def handle_data(self, segment: Segment) -> None:
        if segment.seq >= self.expected_seq and segment.seq not in self.out_of_order:
            self.out_of_order[segment.seq] = segment
        # Advance over any contiguous run starting at expected_seq.
        while self.expected_seq in self.out_of_order:
            ready = self.out_of_order.pop(self.expected_seq)
            self.expected_seq += 1
            self._assemble(ready)
        self._send_ack()

    def _send_ack(self) -> None:
        ack_segment = Segment(transport=self.transport.name, kind="ACK",
                              seq=0, ack=self.expected_seq,
                              epoch=self.transport.epoch)
        self.transport._send_packet(self.peer, self._stamp(ack_segment),
                                    self.ACK_SIZE, None)

    def send_challenge_ack(self) -> None:
        """Tell the peer our current incarnation (its segment targeted a dead
        one); carries no cumulative-ACK meaning beyond the epoch."""
        self._send_ack()

    def _assemble(self, segment: Segment) -> None:
        if segment.chunks <= 1:
            self.transport._deliver_up(self.peer, segment.payload, segment.size)
            return
        entry = self._assembly.setdefault(
            segment.msg_id, {"received": 0, "bytes": 0, "payload": None}
        )
        entry["received"] += 1
        entry["bytes"] += segment.size
        if segment.chunk == 0:
            entry["payload"] = segment.payload
        if entry["received"] == segment.chunks:
            self.transport._deliver_up(self.peer, entry["payload"], entry["bytes"])
            del self._assembly[segment.msg_id]


class ReliableTransport(Transport):
    """Base class for TCP and SWP transport instances."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._connections: dict[int, ReliableConnection] = {}

    @abc.abstractmethod
    def _make_policy(self) -> WindowPolicy:
        """Window policy for a new connection."""

    def _connection(self, peer: int) -> ReliableConnection:
        connection = self._connections.get(peer)
        if connection is None:
            connection = ReliableConnection(self, peer, self._make_policy())
            self._connections[peer] = connection
        return connection

    def send(self, dst: int, payload: Any, size: int,
             payload_tag: Optional[str] = None) -> None:
        self.stats.messages_sent += 1
        connection = self._connection(dst)
        if size <= self.MSS:
            segment = Segment(transport=self.name, kind="DATA", seq=0,
                              payload=payload, size=size, epoch=self.epoch)
            connection.enqueue(segment, max(size, 1), payload_tag)
            return
        msg_id = self.next_msg_id()
        chunks = (size + self.MSS - 1) // self.MSS
        remaining = size
        for index in range(chunks):
            chunk_size = min(self.MSS, remaining)
            remaining -= chunk_size
            segment = Segment(
                transport=self.name, kind="DATA", seq=0,
                payload=payload if index == 0 else None,
                size=chunk_size, msg_id=msg_id, chunk=index, chunks=chunks,
                epoch=self.epoch,
            )
            connection.enqueue(segment, chunk_size, payload_tag)

    def handle_segment(self, src: int, segment: Segment) -> None:
        self.stats.segments_received += 1
        connection = self._connection(src)
        epoch = segment.epoch
        if connection.peer_epoch is None:
            connection.peer_epoch = epoch
        elif epoch > connection.peer_epoch:
            # The peer fail-stopped and restarted: its old stream is gone.
            connection.reset_for_peer_restart(epoch)
        elif epoch < connection.peer_epoch:
            return  # Stale segment from a dead incarnation of the peer.
        if segment.dest_epoch < self.epoch:
            # Aimed at a dead incarnation of this host (e.g. a retransmission
            # of pre-crash traffic racing our recovery).  It must not touch
            # the fresh streams — buffering it would later deliver stale data
            # and shadow a genuine same-seq segment.  Challenge-ACK so the
            # live sender learns our epoch, resets, and retries.
            connection.send_challenge_ack()
            return
        if segment.kind == "ACK":
            connection.handle_ack(segment.ack)
        else:
            connection.handle_data(segment)

    def close(self) -> None:
        """Cancel every connection's retransmission timer and drop queues."""
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()

    def queued_bytes(self, dst: Optional[int] = None) -> int:
        if dst is not None:
            connection = self._connections.get(dst)
            return connection.queued_bytes() if connection else 0
        return sum(connection.queued_bytes() for connection in self._connections.values())

    def connection_count(self) -> int:
        return len(self._connections)
