"""Replicated key/value store served over a key-routed overlay.

The store is the paper's missing application layer: clients issue ``put`` and
``get`` operations against the MACEDON API, the overlay routes each key to
its root (the node responsible for the key in the hash space), and the root
replicates writes to its ``replicas - 1`` successor/leaf-set neighbors.
Clients complete a write after ``write_quorum`` acknowledgements and a read
after ``read_quorum`` replies (result = highest version seen), the classic
``R + W > N`` quorum recipe — so a read issued after a write completed
overlaps the write set on at least one replica while the membership holds.

Values are the versions themselves: versions are globally unique and
monotonically assigned by the driver, so "read returned version v" is a
complete consistency observation and the store never ships opaque bytes.

Fail-stop semantics: a crash loses the node's store (factory-reset recovery,
as in the paper's ModelNet kill/restart runs).  The app detects its own
restart lazily by comparing an epoch against ``node.crash_count`` — handler
registrations survive recovery, state must not.  A route-based anti-entropy
pass (:meth:`KvStore.repair`) re-routes every stored key toward its current
root, which migrates data to late-joining roots and refills recovered
replicas.

Every message is a :class:`~repro.apps.payload.KvPayload` riding
``macedon_route`` (client -> root) or ``macedon_routeIP`` (root -> replica,
replica -> client), so the same class runs unchanged over Chord, Pastry, or
the generic ring — and in simulation or live over sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..api.handlers import Handlers
from ..runtime.node import MacedonNode
from .base import AppBase
from .payload import (KV_GET, KV_GET_READ, KV_GET_REPLY, KV_PUT, KV_PUT_ACK,
                      KV_PUT_REPLICATE, KV_REPAIR, KvPayload)

#: ``source`` value marking replication traffic with no owning client (the
#: anti-entropy path); real host addresses start at 1.
NO_CLIENT = 0


@dataclass
class KvOpRecord:
    """One completed client operation, for throughput/consistency accounting."""

    kind: str            # "put" | "get"
    key: int
    seqno: int
    version: int         # put: version written; get: highest version read
    issued_at: float
    completed_at: float
    acks: int            # distinct repliers at completion time

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


@dataclass
class _Pending:
    """A client-side operation waiting for its quorum."""

    kind: str
    key: int
    version: int         # put: version being written; get: best version so far
    issued_at: float
    repliers: set = field(default_factory=set)


class KvStore(AppBase):
    """The replicated KV store role of one overlay node (client + server)."""

    def __init__(self, node: MacedonNode, *, replicas: int = 3,
                 write_quorum: int = 2, read_quorum: int = 2,
                 op_bytes: int = 100, stream_id: int = 0,
                 chain: Optional[Handlers] = None) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not 1 <= write_quorum <= replicas or not 1 <= read_quorum <= replicas:
            raise ValueError(
                f"quorums must be within 1..replicas={replicas} "
                f"(got W={write_quorum}, Q={read_quorum})")
        self.replicas = replicas
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.op_bytes = op_bytes
        self.stream_id = stream_id
        #: key -> highest version adopted (the replica state of this node).
        self.store: dict[int, int] = {}
        #: seqno -> in-flight client operation (seqnos are driver-unique).
        self.pending: dict[int, _Pending] = {}
        self.completed: list[KvOpRecord] = []
        self.ops_issued = 0
        #: Called with each :class:`KvOpRecord` the moment its quorum lands.
        self.on_complete: Optional[Callable[[KvOpRecord], None]] = None
        self._epoch = node.crash_count
        super().__init__(node, chain=chain)

    # ------------------------------------------------------------- fail-stop
    def _check_epoch(self) -> None:
        """Wipe state after a crash/recover cycle (fail-stop loses the store).

        Handlers survive :meth:`MacedonNode.recover` but replica state must
        not; the epoch comparison makes the wipe lazy and idempotent.
        """
        if self.node.crash_count != self._epoch:
            self._epoch = self.node.crash_count
            self.store.clear()
            self.pending.clear()

    # ------------------------------------------------------------ client API
    def put(self, key: int, version: int, seqno: int) -> None:
        """Write ``key := version``; completes after ``write_quorum`` acks."""
        self._check_epoch()
        self.ops_issued += 1
        self.pending[seqno] = _Pending(kind="put", key=key, version=version,
                                       issued_at=self.now)
        payload = KvPayload(op=KV_PUT, key=key, version=version, seqno=seqno,
                            sent_at=self.now, source=self.address,
                            size=self.op_bytes, stream_id=self.stream_id)
        self.node.macedon_route(key, payload, self.op_bytes)

    def get(self, key: int, seqno: int) -> None:
        """Read ``key``; completes after ``read_quorum`` replies (max wins)."""
        self._check_epoch()
        self.ops_issued += 1
        self.pending[seqno] = _Pending(kind="get", key=key, version=-1,
                                       issued_at=self.now)
        payload = KvPayload(op=KV_GET, key=key, version=-1, seqno=seqno,
                            sent_at=self.now, source=self.address,
                            size=self.op_bytes, stream_id=self.stream_id)
        self.node.macedon_route(key, payload, self.op_bytes)

    def repair(self) -> None:
        """Anti-entropy: re-route every stored key toward its current root.

        The root (which may have changed since the write — late joins, heals)
        adopts anything newer and pushes it to its own replica set, so data
        migrates to the nodes now responsible for it.
        """
        self._check_epoch()
        for key, version in sorted(self.store.items()):
            payload = KvPayload(op=KV_REPAIR, key=key, version=version,
                                seqno=0, sent_at=self.now, source=NO_CLIENT,
                                size=self.op_bytes, stream_id=self.stream_id)
            self.node.macedon_route(key, payload, self.op_bytes)

    # -------------------------------------------------------------- replicas
    def replica_targets(self) -> list[int]:
        """Addresses of this root's ``replicas - 1`` closest ring neighbors.

        Successor first (Chord / the generic ring), then leaf-set / ring-set
        members (Pastry / Chord) in ascending address order — the
        deterministic successor-list shape the paper's leaf-set replication
        uses.  Crashed neighbors simply drop the replicate (fail-stop).
        """
        targets: list[int] = []
        seen = {self.address}

        def add(address) -> None:
            if isinstance(address, int) and address > 0 and address not in seen:
                seen.add(address)
                targets.append(address)

        for agent in self.node.stack:
            add(getattr(agent, "successor", None))
        for attr in ("leafset", "ring_set"):
            for agent in self.node.stack:
                nbr_set = getattr(agent, attr, None)
                if nbr_set is not None and hasattr(nbr_set, "addresses"):
                    for address in sorted(nbr_set.addresses()):
                        add(address)
        return targets[: self.replicas - 1]

    def _adopt(self, key: int, version: int) -> bool:
        if version > self.store.get(key, -1):
            self.store[key] = version
            return True
        return False

    def _reply(self, dest: int, payload: KvPayload) -> None:
        if dest == self.address:
            # Client and root are the same node: deliver locally instead of
            # relying on loopback transport.
            self.on_deliver(payload, payload.size, "ipdata")
            return
        self.node.macedon_routeIP(dest, payload, payload.size)

    # ----------------------------------------------------------------- hooks
    def on_deliver(self, payload, size, mtype) -> None:
        if not isinstance(payload, KvPayload) or \
                payload.stream_id != self.stream_id:
            self.chain_deliver(payload, size, mtype)
            return
        self._check_epoch()
        handler = {
            KV_PUT: self._on_put,
            KV_PUT_REPLICATE: self._on_put_replicate,
            KV_PUT_ACK: self._on_put_ack,
            KV_GET: self._on_get,
            KV_GET_READ: self._on_get_read,
            KV_GET_REPLY: self._on_get_reply,
            KV_REPAIR: self._on_repair,
        }.get(payload.op)
        if handler is not None:
            handler(payload)

    # ------------------------------------------------------------- root side
    def _replicate(self, payload: KvPayload, source: int) -> None:
        replicate = KvPayload(op=KV_PUT_REPLICATE, key=payload.key,
                              version=payload.version, seqno=payload.seqno,
                              sent_at=payload.sent_at, source=source,
                              replier=self.address, size=payload.size,
                              stream_id=self.stream_id)
        for target in self.replica_targets():
            self._reply(target, replicate)

    def _on_put(self, payload: KvPayload) -> None:
        """Root: adopt, ack the client, replicate to the neighbor set."""
        self._adopt(payload.key, payload.version)
        self._reply(payload.source, KvPayload(
            op=KV_PUT_ACK, key=payload.key, version=payload.version,
            seqno=payload.seqno, sent_at=payload.sent_at,
            source=payload.source, replier=self.address,
            size=payload.size, stream_id=self.stream_id))
        self._replicate(payload, payload.source)

    def _on_put_replicate(self, payload: KvPayload) -> None:
        """Replica: adopt and ack the owning client directly."""
        self._adopt(payload.key, payload.version)
        if payload.source != NO_CLIENT:
            self._reply(payload.source, KvPayload(
                op=KV_PUT_ACK, key=payload.key, version=payload.version,
                seqno=payload.seqno, sent_at=payload.sent_at,
                source=payload.source, replier=self.address,
                size=payload.size, stream_id=self.stream_id))

    def _on_get(self, payload: KvPayload) -> None:
        """Root: answer with the local version, fan the read to replicas."""
        self._reply(payload.source, KvPayload(
            op=KV_GET_REPLY, key=payload.key,
            version=self.store.get(payload.key, -1), seqno=payload.seqno,
            sent_at=payload.sent_at, source=payload.source,
            replier=self.address, size=payload.size,
            stream_id=self.stream_id))
        read = KvPayload(op=KV_GET_READ, key=payload.key, version=-1,
                         seqno=payload.seqno, sent_at=payload.sent_at,
                         source=payload.source, replier=self.address,
                         size=payload.size, stream_id=self.stream_id)
        for target in self.replica_targets():
            self._reply(target, read)

    def _on_get_read(self, payload: KvPayload) -> None:
        """Replica: report the local version straight to the client."""
        self._reply(payload.source, KvPayload(
            op=KV_GET_REPLY, key=payload.key,
            version=self.store.get(payload.key, -1), seqno=payload.seqno,
            sent_at=payload.sent_at, source=payload.source,
            replier=self.address, size=payload.size,
            stream_id=self.stream_id))

    def _on_repair(self, payload: KvPayload) -> None:
        """Root: adopt anti-entropy data and push it to the replica set.

        The push carries the root's *current* version, not the incoming one:
        a sweep from a stale ex-replica must refresh the replica set, never
        re-propagate the stale write."""
        self._adopt(payload.key, payload.version)
        current = KvPayload(op=payload.op, key=payload.key,
                            version=self.store[payload.key],
                            seqno=payload.seqno, sent_at=payload.sent_at,
                            source=payload.source, size=payload.size,
                            stream_id=self.stream_id)
        self._replicate(current, NO_CLIENT)

    # ----------------------------------------------------------- client side
    def _complete(self, seqno: int, pending: _Pending) -> None:
        del self.pending[seqno]
        record = KvOpRecord(kind=pending.kind, key=pending.key, seqno=seqno,
                            version=pending.version,
                            issued_at=pending.issued_at, completed_at=self.now,
                            acks=len(pending.repliers))
        self.completed.append(record)
        if self.on_complete is not None:
            self.on_complete(record)

    def _on_put_ack(self, payload: KvPayload) -> None:
        pending = self.pending.get(payload.seqno)
        if pending is None or pending.kind != "put" or \
                payload.replier in pending.repliers:
            return
        pending.repliers.add(payload.replier)
        if len(pending.repliers) >= self.write_quorum:
            self._complete(payload.seqno, pending)

    def _on_get_reply(self, payload: KvPayload) -> None:
        pending = self.pending.get(payload.seqno)
        if pending is None or pending.kind != "get" or \
                payload.replier in pending.repliers:
            return
        pending.repliers.add(payload.replier)
        if payload.version > pending.version:
            pending.version = payload.version
        if len(pending.repliers) >= self.read_quorum:
            self._complete(payload.seqno, pending)
