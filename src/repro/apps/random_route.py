"""Random-destination routing workload.

The paper's Pastry validation (Figure 11) has every node stream 1000-byte
packets at 10 Kbps to destination keys drawn uniformly at random from the
hash space, then reports the average per-packet end-to-end latency.  This
module implements that workload against the MACEDON API plus a global
collector so the same harness can drive MACEDON Pastry and the FreePastry
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..runtime.engine import EventHandle, Simulator
from ..runtime.keys import KeySpace
from ..runtime.node import MacedonNode
from .base import AppBase
from .payload import AppPayload


@dataclass
class RouteSample:
    """One delivered packet: who sent it, when, and when it arrived."""

    source: int
    dest_key: int
    sent_at: float
    received_at: float
    receiver: int
    size: int

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class _RouteReceiver(AppBase):
    """Per-node receiver role: score delivered probes with the collector."""

    def __init__(self, node: MacedonNode, workload: "RandomRouteWorkload") -> None:
        self.workload = workload
        super().__init__(node)

    def on_deliver(self, payload, size, mtype) -> None:
        if not isinstance(payload, AppPayload):
            self.chain_deliver(payload, size, mtype)
            return
        self.workload._record(self.address, payload)


class RandomRouteWorkload:
    """Every node streams packets to uniform-random keys; latency is recorded."""

    def __init__(self, nodes: Sequence[MacedonNode], *, rate_bps: float = 10_000,
                 packet_bytes: int = 1000,
                 key_space: Optional[KeySpace] = None, seed: int = 0) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.nodes = list(nodes)
        self.simulator: Simulator = self.nodes[0].simulator
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.key_space = key_space or KeySpace()
        self.interval = (packet_bytes * 8) / rate_bps
        self._rng = self.simulator.fork_rng(f"random-route:{seed}")
        self.samples: list[RouteSample] = []
        self.packets_sent = 0
        self._handles: list[EventHandle] = []
        self._running = False
        self._pending: dict[tuple[int, int], tuple[int, float, int]] = {}
        self.receivers = [_RouteReceiver(node, self) for node in self.nodes]

    def _record(self, receiver: int, payload: AppPayload) -> None:
        pending = self._pending.pop((payload.source, payload.seqno), None)
        if pending is None:
            return
        dest_key, sent_at, packet_size = pending
        self.samples.append(RouteSample(source=payload.source, dest_key=dest_key,
                                        sent_at=sent_at,
                                        received_at=self.simulator.now,
                                        receiver=receiver, size=packet_size))

    # -------------------------------------------------------------------- drive
    def start(self, duration: float) -> None:
        """Start every node's stream, stopping after *duration* seconds."""
        self._running = True
        self._deadline = self.simulator.now + duration
        for index, node in enumerate(self.nodes):
            # Stagger starts so all nodes do not transmit in lockstep.
            offset = self.interval * (index / max(1, len(self.nodes)))
            handle = self.simulator.schedule(offset, self._send_from, node, index)
            self._handles.append(handle)

    def stop(self) -> None:
        self._running = False
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    def _send_from(self, node: MacedonNode, index: int) -> None:
        if not self._running or self.simulator.now >= self._deadline:
            return
        dest_key = self._rng.randrange(self.key_space.size)
        seqno = self.packets_sent
        payload = AppPayload(seqno=seqno, sent_at=self.simulator.now,
                             source=node.address, size=self.packet_bytes,
                             stream_id=1)
        self._pending[(node.address, seqno)] = (dest_key, self.simulator.now,
                                                self.packet_bytes)
        node.macedon_route(dest_key, payload, self.packet_bytes)
        self.packets_sent += 1
        handle = self.simulator.schedule(self.interval, self._send_from, node, index)
        self._handles.append(handle)

    # ------------------------------------------------------------------ metrics
    def average_latency(self) -> float:
        if not self.samples:
            return 0.0
        return sum(sample.latency for sample in self.samples) / len(self.samples)

    def delivery_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return len(self.samples) / self.packets_sent

    def per_receiver_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for sample in self.samples:
            counts[sample.receiver] = counts.get(sample.receiver, 0) + 1
        return counts
