"""Constant-rate streaming source and receiver.

The paper's SplitStream experiment streams 1000-byte packets at 600 Kbps from
one source to a 300-node forest and reports per-node average bandwidth over
time (Figure 12); the Pastry experiment streams 10 Kbps per node.  These two
classes implement that workload against the MACEDON API so any overlay can be
swapped underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime.engine import EventHandle, Simulator
from ..runtime.node import MacedonNode
from .base import AppBase
from .payload import AppPayload


@dataclass
class StreamStats:
    packets_sent: int = 0
    bytes_sent: int = 0


class StreamingSource(AppBase):
    """Streams fixed-size packets at a target bit rate into a multicast group.

    A pure source: it overrides no upcall hooks, so installing it leaves the
    node's existing handlers in place (AppBase only registers overridden
    hooks).
    """

    def __init__(self, node: MacedonNode, group: int, *, rate_bps: float,
                 packet_bytes: int = 1000, stream_id: int = 0) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        super().__init__(node)
        self.simulator: Simulator = node.simulator
        self.group = group
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.stream_id = stream_id
        self.interval = (packet_bytes * 8) / rate_bps
        self.stats = StreamStats()
        self._next_seqno = 0
        self._handle: Optional[EventHandle] = None
        self._running = False

    def start(self, duration: Optional[float] = None) -> None:
        """Begin streaming; stop automatically after *duration* seconds if given."""
        self._running = True
        self._deadline = None if duration is None else self.simulator.now + duration
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._handle = self.simulator.schedule(self.interval, self._send_one,
                                               label="stream-send")

    def _send_one(self) -> None:
        if not self._running:
            return
        if self._deadline is not None and self.simulator.now >= self._deadline:
            self._running = False
            return
        payload = AppPayload(seqno=self._next_seqno, sent_at=self.simulator.now,
                             source=self.node.address, size=self.packet_bytes,
                             stream_id=self.stream_id)
        self._next_seqno += 1
        self.node.macedon_multicast(self.group, payload, self.packet_bytes)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += self.packet_bytes
        self._schedule_next()


@dataclass
class Delivery:
    """One packet received by a stream receiver."""

    seqno: int
    sent_at: float
    received_at: float
    size: int

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class StreamReceiver(AppBase):
    """Records every received packet of a stream (first copy per seqno)."""

    def __init__(self, node: MacedonNode, *, stream_id: Optional[int] = None) -> None:
        self.simulator = node.simulator
        self.stream_id = stream_id
        self.deliveries: list[Delivery] = []
        self._seen: set[tuple[int, int]] = set()
        super().__init__(node)

    def on_deliver(self, payload, size, mtype) -> None:
        if not isinstance(payload, AppPayload):
            self.chain_deliver(payload, size, mtype)
            return
        if self.stream_id is not None and payload.stream_id != self.stream_id:
            return
        key = (payload.source, payload.seqno)
        if key in self._seen:
            return
        self._seen.add(key)
        self.deliveries.append(Delivery(seqno=payload.seqno, sent_at=payload.sent_at,
                                        received_at=self.simulator.now,
                                        size=payload.size))

    # ------------------------------------------------------------------ metrics
    @property
    def packets_received(self) -> int:
        return len(self.deliveries)

    @property
    def bytes_received(self) -> int:
        return sum(delivery.size for delivery in self.deliveries)

    def average_latency(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)

    def average_bandwidth_bps(self, start: float, end: float) -> float:
        """Average received bandwidth (bits/second) over [start, end)."""
        if end <= start:
            return 0.0
        received = sum(d.size for d in self.deliveries if start <= d.received_at < end)
        return received * 8 / (end - start)

    def loss_rate(self, packets_sent: int) -> float:
        if packets_sent <= 0:
            return 0.0
        return max(0.0, 1.0 - self.packets_received / packets_sent)


def bandwidth_timeseries(receivers: list[StreamReceiver], *, start: float,
                         end: float, bucket: float) -> list[tuple[float, float]]:
    """Per-bucket average received bandwidth (bps) across *receivers*.

    This is the quantity plotted in Figure 12: average per-node bandwidth over
    time after the convergence period.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    series: list[tuple[float, float]] = []
    t = start
    while t < end:
        bucket_end = min(t + bucket, end)
        if receivers:
            average = sum(r.average_bandwidth_bps(t, bucket_end) for r in receivers)
            average /= len(receivers)
        else:
            average = 0.0
        series.append((t - start, average))
        t = bucket_end
    return series
