"""Typed application base class over the MACEDON upcall surface.

Applications used to wire themselves up by handing a bare tuple of callables
to ``macedon_register_handlers(deliver=..., forward=...)``; every app
re-implemented the same closure plumbing and none of them composed.
:class:`AppBase` regularizes that: subclass it, override the ``on_*`` hooks
you care about, and construction installs exactly those hooks on the node.

Chaining: whatever :class:`~repro.api.handlers.Handlers` the node had
registered before the app was installed is kept as ``self.chain``; hooks the
app does not override stay pointed at the previous handlers, and an
overridden hook can pass an upcall it does not recognise down the chain with
``super().on_deliver(...)`` (or the explicit ``chain_*`` helpers).  That is
the same discipline the scenario workload recorders use, so instrumentation
and applications stack in any order and :meth:`uninstall` unwinds one layer.

The old ``macedon_register_handlers`` tuple wiring remains supported — it
now also accepts a ``Handlers`` instance positionally — so existing call
sites keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from ..api.handlers import Handlers
from ..runtime.node import MacedonNode


class AppBase:
    """One application instance bound to one overlay node.

    Subclasses override any of :meth:`on_deliver`, :meth:`on_forward`,
    :meth:`on_notify`, :meth:`on_upcall`; only the overridden hooks are
    installed, so a source-only app (no hooks) leaves the node's existing
    handlers untouched.
    """

    def __init__(self, node: MacedonNode, *,
                 chain: Optional[Handlers] = None) -> None:
        self.node = node
        #: Handlers registered before this app; unhandled upcalls fall through.
        self.chain = chain if chain is not None else node.handlers
        self._install()

    # ------------------------------------------------------------ installation
    def _install(self) -> None:
        cls = type(self)
        deliver = self.on_deliver if cls.on_deliver is not AppBase.on_deliver \
            else self.chain.deliver
        forward = self.on_forward if cls.on_forward is not AppBase.on_forward \
            else self.chain.forward
        notify = self.on_notify if cls.on_notify is not AppBase.on_notify \
            else self.chain.notify
        upcall = self.on_upcall if cls.on_upcall is not AppBase.on_upcall \
            else self.chain.upcall
        self.node.macedon_register_handlers(
            deliver=deliver, forward=forward, notify=notify, upcall=upcall)

    def uninstall(self) -> None:
        """Re-register the handlers the node had before this app."""
        self.node.macedon_register_handlers(self.chain)

    # ----------------------------------------------------------------- context
    @property
    def address(self) -> int:
        return self.node.address

    @property
    def now(self) -> float:
        return self.node.simulator.now

    # ------------------------------------------------------------------- hooks
    def on_deliver(self, payload: Any, size: int, mtype: Any) -> None:
        """A payload arrived at this node.  Default: pass down the chain."""
        self.chain_deliver(payload, size, mtype)

    def on_forward(self, payload: Any, size: int, mtype: Any,
                   next_hop: Optional[int], next_hop_key: Optional[int]) -> bool:
        """A payload is transiting this node; return False to quash it."""
        return self.chain_forward(payload, size, mtype, next_hop, next_hop_key)

    def on_notify(self, nbr_type: int, neighbors: list[int]) -> None:
        """The overlay's neighbor set changed."""
        self.chain_notify(nbr_type, neighbors)

    def on_upcall(self, op: Any, arg: Any) -> Any:
        """Generic extensible upcall."""
        return self.chain_upcall(op, arg)

    # ----------------------------------------------------------- chain helpers
    def chain_deliver(self, payload: Any, size: int, mtype: Any) -> None:
        if self.chain.deliver is not None:
            self.chain.deliver(payload, size, mtype)

    def chain_forward(self, payload: Any, size: int, mtype: Any,
                      next_hop: Optional[int],
                      next_hop_key: Optional[int]) -> bool:
        if self.chain.forward is not None:
            return bool(self.chain.forward(payload, size, mtype,
                                           next_hop, next_hop_key))
        return True

    def chain_notify(self, nbr_type: int, neighbors: list[int]) -> None:
        if self.chain.notify is not None:
            self.chain.notify(nbr_type, neighbors)

    def chain_upcall(self, op: Any, arg: Any) -> Any:
        if self.chain.upcall is not None:
            return self.chain.upcall(op, arg)
        return None
