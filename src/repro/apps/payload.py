"""Application payloads carried through overlays.

The network emulator charges bytes based on the declared payload size; the
payload object itself rides along so receivers can compute per-packet latency
and loss, and so link-stress accounting can recognise the same application
packet crossing multiple overlay hops (via ``tag``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AppPayload:
    """One application packet."""

    seqno: int
    sent_at: float
    source: int
    size: int = 1000
    stream_id: int = 0

    @property
    def tag(self) -> str:
        """Stable identity used for link-stress accounting across overlay hops."""
        return f"app:{self.stream_id}:{self.source}:{self.seqno}"
