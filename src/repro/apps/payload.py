"""Application payloads carried through overlays.

The network emulator charges bytes based on the declared payload size; the
payload object itself rides along so receivers can compute per-packet latency
and loss, and so link-stress accounting can recognise the same application
packet crossing multiple overlay hops (via ``tag``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AppPayload:
    """One application packet."""

    seqno: int
    sent_at: float
    source: int
    size: int = 1000
    stream_id: int = 0

    @property
    def tag(self) -> str:
        """Stable identity used for link-stress accounting across overlay hops."""
        return f"app:{self.stream_id}:{self.source}:{self.seqno}"


# KvPayload operation codes (the ``op`` field).
KV_PUT = 0            # client -> root: store key at version
KV_PUT_REPLICATE = 1  # root -> replica: adopt key at version
KV_PUT_ACK = 2        # root/replica -> client: write acknowledged
KV_GET = 3            # client -> root: read key
KV_GET_READ = 4       # root -> replica: report your version to the client
KV_GET_REPLY = 5      # root/replica -> client: my version of key (-1 = none)
KV_REPAIR = 6         # holder -> root: anti-entropy push of a stored key


@dataclass(frozen=True)
class KvPayload:
    """One KV protocol packet (client op, replication, ack, or read reply).

    ``source`` is the address of the *client* that owns the operation for
    every packet in that operation's lifetime; ``replier`` identifies which
    replica produced an ack/reply so quorum counting can deduplicate.
    ``version`` doubles as the stored value: versions are globally unique
    and monotonically assigned, so "read returned version v" is a complete
    consistency observation.
    """

    op: int
    key: int
    version: int
    seqno: int
    sent_at: float
    source: int
    replier: int = 0
    size: int = 100
    stream_id: int = 0

    @property
    def tag(self) -> str:
        return f"kv:{self.stream_id}:{self.source}:{self.seqno}:{self.op}"


@dataclass(frozen=True)
class TopicPayload:
    """One pub/sub publication multicast to a topic group."""

    topic: int
    seqno: int
    sent_at: float
    source: int
    size: int = 1000
    stream_id: int = 0

    @property
    def tag(self) -> str:
        return f"topic:{self.stream_id}:{self.source}:{self.seqno}"
