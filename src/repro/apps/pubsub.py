"""Topic-based publish/subscribe over the overlay's group primitives.

A topic is one multicast group: subscribing joins ``group_base + topic``
(Scribe builds the per-group dissemination tree; SplitStream stripes it),
and publishing multicasts a :class:`~repro.apps.payload.TopicPayload` to the
group.  The app is a thin, measurable veneer: it records every first
delivery per publication with its end-to-end latency, counts duplicates, and
leaves tree construction entirely to the overlay — which is the point: the
same class runs over any group-capable MACEDON stack, in simulation or live.

Fail-stop: a crash loses the node's group memberships with the rest of its
protocol state; the app's subscription set is wiped lazily on the next
upcall (epoch check against ``node.crash_count``) so a driver can observe
the loss and re-subscribe.  Recorded deliveries are measurements, not
replica state, and survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..api.handlers import Handlers
from ..runtime.node import MacedonNode
from .base import AppBase
from .payload import TopicPayload

#: Default first topic group id, clear of the small ids scenario group
#: models conventionally use.
TOPIC_GROUP_BASE = 4100


@dataclass(frozen=True)
class TopicDelivery:
    """One publication received by one subscriber (first copy only)."""

    topic: int
    seqno: int
    source: int
    received_at: float
    latency: float


class PubSub(AppBase):
    """The pub/sub role of one overlay node (publisher and/or subscriber)."""

    def __init__(self, node: MacedonNode, *,
                 group_base: int = TOPIC_GROUP_BASE, stream_id: int = 0,
                 chain: Optional[Handlers] = None) -> None:
        self.group_base = group_base
        self.stream_id = stream_id
        self.subscriptions: set[int] = set()
        self.deliveries: list[TopicDelivery] = []
        self.duplicates = 0
        self.published = 0
        #: Called with each :class:`TopicDelivery` as it lands.
        self.on_delivery: Optional[Callable[[TopicDelivery], None]] = None
        self._seen: set[tuple[int, int]] = set()   # (source, seqno) delivered
        self._epoch = node.crash_count
        super().__init__(node, chain=chain)

    def group_of(self, topic: int) -> int:
        return self.group_base + int(topic)

    # ------------------------------------------------------------- fail-stop
    def _check_epoch(self) -> None:
        if self.node.crash_count != self._epoch:
            self._epoch = self.node.crash_count
            # Group membership died with the protocol state; deliveries are
            # observations and stay.
            self.subscriptions.clear()

    # ------------------------------------------------------------ client API
    def create_topic(self, topic: int) -> None:
        self._check_epoch()
        self.node.macedon_create_group(self.group_of(topic))

    def subscribe(self, topic: int) -> None:
        self._check_epoch()
        self.node.macedon_join(self.group_of(topic))
        self.subscriptions.add(int(topic))

    def unsubscribe(self, topic: int) -> None:
        self._check_epoch()
        self.node.macedon_leave(self.group_of(topic))
        self.subscriptions.discard(int(topic))

    def publish(self, topic: int, seqno: int, size: int = 1000) -> None:
        """Multicast one publication; ``seqno`` must be publisher-unique."""
        self._check_epoch()
        payload = TopicPayload(topic=int(topic), seqno=seqno,
                               sent_at=self.now, source=self.address,
                               size=size, stream_id=self.stream_id)
        self.node.macedon_multicast(self.group_of(topic), payload, size)
        self.published += 1

    # ----------------------------------------------------------------- hooks
    def on_deliver(self, payload, size, mtype) -> None:
        if not isinstance(payload, TopicPayload) or \
                payload.stream_id != self.stream_id:
            self.chain_deliver(payload, size, mtype)
            return
        self._check_epoch()
        if (payload.source, payload.seqno) in self._seen:
            self.duplicates += 1
            return
        self._seen.add((payload.source, payload.seqno))
        delivery = TopicDelivery(topic=payload.topic, seqno=payload.seqno,
                                 source=payload.source, received_at=self.now,
                                 latency=self.now - payload.sent_at)
        self.deliveries.append(delivery)
        if self.on_delivery is not None:
            self.on_delivery(delivery)
