"""Reusable MACEDON applications.

The probe applications the paper's evaluation drives its overlays with — a
constant-rate streaming source (SplitStream/Scribe experiments) and a
random-destination routing workload (the Pastry latency experiment) — plus
the real application layer on top of them: a replicated key/value store
(:class:`KvStore`) and topic pub/sub (:class:`PubSub`), both written against
:class:`AppBase`, the typed hook surface every app here subclasses.
"""

from .base import AppBase
from .kv import KvOpRecord, KvStore
from .payload import AppPayload, KvPayload, TopicPayload
from .pubsub import PubSub, TopicDelivery
from .random_route import RandomRouteWorkload, RouteSample
from .streaming import StreamReceiver, StreamingSource, bandwidth_timeseries

__all__ = [
    "AppBase",
    "AppPayload",
    "KvOpRecord",
    "KvPayload",
    "KvStore",
    "PubSub",
    "RandomRouteWorkload",
    "RouteSample",
    "StreamReceiver",
    "StreamingSource",
    "TopicDelivery",
    "TopicPayload",
    "bandwidth_timeseries",
]
