"""Reusable MACEDON test applications.

These are the applications the paper's evaluation drives its overlays with: a
constant-rate streaming source (SplitStream/Scribe experiments), a
random-destination routing workload (the Pastry latency experiment), and a
collection/summary application exercising ``macedon_collect``.
"""

from .payload import AppPayload
from .random_route import RandomRouteWorkload, RouteSample
from .streaming import StreamReceiver, StreamingSource, bandwidth_timeseries

__all__ = [
    "AppPayload",
    "RandomRouteWorkload",
    "RouteSample",
    "StreamReceiver",
    "StreamingSource",
    "bandwidth_timeseries",
]
