"""``repro.run`` — one front door for every execution mode.

The scenario engine grew four entry points as the paper's evaluation grew:
:meth:`~repro.eval.scenario.ScenarioSpec.run` (single-process simulation),
:meth:`~repro.eval.scenario.ScenarioSpec.run_sharded` (the multi-process
conservative-lockstep kernel), :class:`~repro.eval.runner.ScenarioRunner`
(multi-seed replication), and :class:`~repro.live.LiveCluster` (real
processes over real sockets).  They all execute the *same* declarative
:class:`~repro.eval.scenario.ScenarioSpec`; this module folds them behind
one function so a spec written once runs anywhere::

    result  = repro.run(spec)                       # spec.run()
    result  = repro.run(spec, shards=4)             # spec.run_sharded(4)
    summary = repro.run(spec, seeds=5, jobs=4)      # ScenarioRunner(...)
    live    = repro.run(spec, mode="live")          # LiveCluster(...)

The facade adds no semantics: each dispatch is byte-identical to calling
the underlying entry point directly (pinned by
``tests/eval/test_facade.py``), and the old entry points remain public.

Live mode maps the spec onto a :class:`~repro.live.LiveClusterConfig`:
the protocol comes from reverse-resolving the spec's agents factory
against :data:`repro.eval.library.PROTOCOLS`, the workload from the
spec's first :class:`~repro.eval.scenario.WorkloadModel`, and the fault
models from :func:`repro.live.faults.compile_fault_models` — churn and
crash models become real ``SIGKILL``/respawn schedules, partition and
degrade models become socket fault-table rules, rescaled onto the live
workload window.  A live deployment runs one seed in one piece, and the
live schedule (join wave + settle) replaces the model's ``start``/``gap``
timing — everything else carries over, including every KV quorum knob and
the pub/sub topic count.  Keyword overrides pass through to
:class:`~repro.live.LiveClusterConfig` (e.g. ``base_port=48000``), with
``faults=()`` available to opt out of fault compilation.
"""

from __future__ import annotations

from typing import Sequence, Union

#: library protocol name -> registry spec name bootable by the live runtime.
#: ``ringdht`` is absent by design: it is a hand-written agent, not a
#: ``.mac`` specification the live registry can compile.
_LIVE_PROTOCOLS = {
    "chord": "chord",
    "pastry": "pastry",
    "scribe-pastry": "scribe",
}


def _run_live(spec, overrides: dict):
    from .eval.fuzz import protocol_name_of
    from .eval.scenario import ScenarioError, WorkloadModel
    from .live import LiveCluster, LiveClusterConfig

    name = protocol_name_of(spec)
    live_name = _LIVE_PROTOCOLS.get(name)
    if live_name is None:
        raise ScenarioError(
            f"protocol {name!r} has no live deployment (it is not a "
            f"compiled .mac specification); live protocols: "
            f"{sorted(_LIVE_PROTOCOLS)}")
    workloads = [model for model in spec.models
                 if isinstance(model, WorkloadModel)]
    if not workloads:
        raise ScenarioError(
            "live mode needs a WorkloadModel in spec.models to know what "
            "traffic to drive")
    model = workloads[0]
    kwargs = dict(
        nodes=spec.num_nodes,
        protocol=live_name,
        workload=model.kind,
        packets=model.packets,
        payload_size=model.packet_bytes,
        group=model.group,
        seed=spec.seed,
    )
    if model.kind == "kv":
        kwargs.update(kv_keys=model.keys,
                      kv_zipf_s=model.zipf_s,
                      kv_read_fraction=model.read_fraction,
                      kv_replicas=model.replicas,
                      kv_write_quorum=model.write_quorum,
                      kv_read_quorum=model.read_quorum)
    elif model.kind == "pubsub":
        kwargs.update(topics=model.topics)
    kwargs.update(overrides)
    if "duration" not in kwargs:
        # Wall-clock seconds are not simulated seconds: cap the live horizon
        # so a 300s-simulated spec does not hold real sockets for 5 minutes,
        # but keep the workload window clear of the join wave.
        config_probe = LiveClusterConfig(**dict(kwargs, duration=1e9))
        kwargs["duration"] = min(float(spec.duration),
                                 config_probe.workload_start + 10.0)
    if "faults" not in kwargs:
        # Compile the spec's fault models onto the live schedule (an
        # explicit faults= override, including (), wins).
        from .live.faults import LiveFaultError, compile_fault_models
        try:
            kwargs["faults"] = compile_fault_models(
                spec, LiveClusterConfig(**kwargs))
        except LiveFaultError as exc:
            raise ScenarioError(
                f"spec has a fault model with no live equivalent: {exc}; "
                f"pass faults=() to run the workload without it") from exc
    return LiveCluster(LiveClusterConfig(**kwargs)).run()


def run(spec, *, seeds: Union[int, Sequence[int]] = 1, jobs: int = 1,
        shards: int = 1, mode: str = "sim", obs=None, **live_overrides):
    """Execute *spec* and return its results, whatever the mode.

    :param spec: a :class:`~repro.eval.scenario.ScenarioSpec`.
    :param seeds: ``1`` runs the spec's own seed and returns a
        :class:`~repro.eval.scenario.ScenarioResult`; an integer ``n > 1``
        replicates over ``spec.seed .. spec.seed + n - 1``; an explicit
        sequence runs exactly those seeds.  Multi-seed runs return a
        :class:`~repro.eval.runner.ScenarioSummary`.
    :param jobs: parallel worker processes across seeds (multi-seed only).
    :param shards: simulation kernel shards per run (``run_sharded``).
    :param mode: ``"sim"`` (default) or ``"live"`` — real processes over
        UDP sockets, returning a :class:`~repro.live.LiveClusterResult`.
    :param obs: an :class:`~repro.obs.ObsConfig` to attach observability
        (metrics snapshot, trace export, causal tracing) to this run in
        any mode; equivalent to setting ``spec.obs`` (sim) or
        ``LiveClusterConfig.obs`` (live).  Single-run only: artifact
        paths are per-run, so multi-seed replication rejects it.
    :param live_overrides: live mode only — forwarded to
        :class:`~repro.live.LiveClusterConfig` (``duration``, ``base_port``,
        ``join_spacing``, ...).
    """
    if mode not in ("sim", "live"):
        raise ValueError(f"unknown mode {mode!r} (sim or live)")
    if mode == "live":
        if shards != 1 or jobs != 1 or seeds != 1:
            raise ValueError(
                "live mode boots one real deployment: seeds, jobs, and "
                "shards do not apply (override the config instead)")
        if obs is not None:
            live_overrides = dict(live_overrides, obs=obs)
        return _run_live(spec, live_overrides)
    if live_overrides:
        raise ValueError(
            f"unknown options for sim mode: {sorted(live_overrides)}")
    if obs is not None:
        if seeds != 1:
            raise ValueError(
                "obs= attaches per-run artifacts; run one seed at a time")
        from dataclasses import replace
        spec = replace(spec, obs=obs)
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        if seeds == 1:
            return spec.run(shards=shards)
        seed_list = [spec.seed + offset for offset in range(seeds)]
    else:
        seed_list = list(seeds)
    from .eval.runner import ScenarioRunner
    return ScenarioRunner(spec, seed_list, shards=shards, jobs=jobs).run()
