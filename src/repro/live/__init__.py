"""Live execution: the unchanged protocol runtime over real sockets.

The paper evaluates each generated protocol twice — in simulation and in a
*live deployment* where the same generated code exchanges real packets.  This
package is the live half of the reproduction:

* :class:`~repro.live.driver.LiveDriver` — the wall-clock asyncio
  implementation of the :class:`~repro.runtime.driver.Driver` contract, so
  agents, timers, failure detection, and the reliable transports run
  unmodified against real elapsed time;
* :class:`~repro.transport.udp.SocketUdpNetwork` (in the transport package) —
  the socket-backed counterpart of the network emulator, framing the same
  ``Datagram``/``Segment`` envelopes over UDP datagrams between processes;
* :class:`~repro.live.cluster.LiveCluster` — the multi-process harness that
  boots N localhost nodes, drives a join wave plus a route or multicast
  workload, and aggregates per-node observations into the same metric shapes
  the scenario runner reports;
* :mod:`~repro.live.faults` — the fault plane: scenario crash/churn/
  partition/degrade models compiled onto wall-clock as real ``SIGKILL``
  schedules (with supervised respawn) and socket fault-table rules.

See docs/LIVE.md for the architecture and scripts/run_live.py for the CLI.
"""

from .cluster import LiveCluster, LiveClusterConfig, LiveClusterError, LiveClusterResult
from .driver import LiveDriver
from .faults import (DegradeFault, KillNode, LinkCut, LiveFaultError,
                     PartitionFault, compile_fault_models, fault_horizon,
                     live_runnable)

__all__ = [
    "DegradeFault",
    "KillNode",
    "LinkCut",
    "LiveCluster",
    "LiveClusterConfig",
    "LiveClusterError",
    "LiveClusterResult",
    "LiveDriver",
    "LiveFaultError",
    "PartitionFault",
    "compile_fault_models",
    "fault_horizon",
    "live_runnable",
]
