"""Wall-clock driver: the simulator's scheduling surface on asyncio.

:class:`LiveDriver` implements the :class:`~repro.runtime.driver.Driver`
contract against a real event loop, so every consumer of the simulator's
scheduling API — :class:`~repro.runtime.timers.ProtocolTimer`,
:class:`~repro.transport.reliable.ReliableConnection`'s RTO, the failure
detector's sweep, generated transition bodies — runs unchanged in live mode:
``schedule_gen`` maps to ``loop.call_later`` with the same generation-token
discard rule, ``now`` is wall-clock seconds since the driver started, and
``fork_rng`` derives per-subsystem RNG streams from the seed exactly as the
simulator does (a live node's random choices are reproducible even though its
packet timing is not).

Differences from the simulated clock, by necessity:

* a negative delay is clamped to zero instead of raising — wall-clock code
  computing ``deadline - now`` can race the clock by a microsecond;
* callbacks that raise are recorded on :attr:`LiveDriver.errors` (and logged)
  rather than tearing down the event loop — one bad transition must not kill
  a deployed node;
* there is no global event ordering across processes, which is the point.
"""

from __future__ import annotations

import asyncio
import logging
import random
from collections import deque
from typing import Any, Callable, Optional

from ..runtime.driver import Driver

logger = logging.getLogger(__name__)

#: How many callback exceptions to retain for inspection.  A deployed node
#: with a persistently failing periodic timer must not leak memory (each
#: retained exception pins its traceback frames), so the list is a ring;
#: :attr:`LiveDriver.error_count` keeps the running total.
MAX_RETAINED_ERRORS = 64


class LiveHandle:
    """Cancellable handle for :meth:`LiveDriver.schedule` events.

    Mirrors :class:`~repro.runtime.engine.EventHandle`: idempotent
    ``cancel()``, a ``cancelled`` flag, the absolute ``time`` the event is
    due, and a lazily resolved ``label``.
    """

    __slots__ = ("_timer", "_label", "time", "cancelled", "fired")

    def __init__(self, time: float, label: Any) -> None:
        self._timer: Optional[asyncio.TimerHandle] = None
        self._label = label
        self.time = time
        self.cancelled = False
        self.fired = False

    @property
    def label(self) -> str:
        label = self._label
        return label() if callable(label) else label

    def cancel(self) -> None:
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self._timer is not None:
                self._timer.cancel()


class LiveDriver(Driver):
    """The wall-clock implementation of the driver contract.

    Parameters
    ----------
    seed:
        Seed for :meth:`fork_rng`, giving live nodes the same reproducible
        per-subsystem randomness streams as their simulated counterparts.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self.rng = random.Random(seed)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._stopping: Optional[asyncio.Event] = None
        #: Callbacks dispatched so far — the live analogue of the simulator's
        #: ``events_processed``, reported in cluster metrics.
        self.events_processed = 0
        #: The most recent callback exceptions (bounded ring, newest last);
        #: ``error_count`` is the lifetime total.
        self.errors: deque = deque(maxlen=MAX_RETAINED_ERRORS)
        self.error_count = 0

    # ------------------------------------------------------------------- time
    def start(self, loop: Optional[asyncio.AbstractEventLoop] = None, *,
              now: float = 0.0) -> None:
        """Bind to *loop* (default: the running loop) and set the clock.

        ``now`` is the driver-clock reading at this instant — 0.0 for a
        node booting at the cluster's barrier-aligned zero, or the elapsed
        cluster time for a supervisor-respawned node, whose clock must
        resume mid-timeline so cluster-relative schedules stay aligned.
        """
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = self._loop.time() - now
        self._stopping = asyncio.Event()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            # Late binding: a driver used inside a coroutine without an
            # explicit start() attaches to the running loop on first use.
            self.start()
            loop = self._loop
        return loop

    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    @property
    def _now(self) -> float:
        # The timer and reliable-transport fast paths read the underscore
        # spelling directly; keep it identical to ``now``.
        return self.now

    @property
    def seed(self) -> int:
        return self._seed

    def fork_rng(self, name: str) -> random.Random:
        return random.Random(f"{self._seed}:{name}")

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, callback: Callable[..., Any], args: tuple) -> None:
        self.events_processed += 1
        try:
            callback(*args)
        except Exception as exc:  # noqa: BLE001 - a node must survive one bad event
            self.error_count += 1
            self.errors.append(exc)
            logger.exception("live event callback %r failed", callback)

    def _dispatch_handle(self, handle: LiveHandle, callback: Callable[..., Any],
                         args: tuple, kwargs: Optional[dict]) -> None:
        if handle.cancelled:
            return
        handle.fired = True
        self.events_processed += 1
        try:
            if kwargs:
                callback(*args, **kwargs)
            else:
                callback(*args)
        except Exception as exc:  # noqa: BLE001
            self.error_count += 1
            self.errors.append(exc)
            logger.exception("live event callback %r failed", callback)

    def _dispatch_gen(self, callback: Callable[[], Any], cell: list,
                      token: int) -> None:
        # Same discard rule as the simulator: a stale token means cancel_gen
        # ran after this entry was armed — not dispatched, not counted.
        if token != cell[0]:
            return
        self.events_processed += 1
        try:
            callback()
        except Exception as exc:  # noqa: BLE001
            self.error_count += 1
            self.errors.append(exc)
            logger.exception("live timer callback %r failed", callback)

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 label: Any = "", **kwargs: Any) -> LiveHandle:
        loop = self._require_loop()
        if delay < 0:
            delay = 0.0
        handle = LiveHandle(self.now + delay, label)
        handle._timer = loop.call_later(delay, self._dispatch_handle, handle,
                                        callback, args, kwargs or None)
        return handle

    def schedule_fast(self, delay: float, callback: Callable[..., Any],
                      *args: Any) -> None:
        loop = self._require_loop()
        if delay < 0:
            delay = 0.0
        loop.call_later(delay, self._dispatch, callback, args)

    def schedule_gen(self, delay: float, callback: Callable[[], Any],
                     cell: list) -> None:
        loop = self._require_loop()
        if delay < 0:
            delay = 0.0
        loop.call_later(delay, self._dispatch_gen, callback, cell, cell[0])

    def cancel_gen(self, cell: list) -> None:
        # The armed call_later still fires, sees the bumped generation, and
        # discards itself — exactly the simulator's stale-entry rule.
        cell[0] += 1

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any,
                    label: Any = "", **kwargs: Any) -> LiveHandle:
        return self.schedule(when - self.now, callback, *args,
                             label=label, **kwargs)

    def cancel(self, handle: LiveHandle) -> None:
        handle.cancel()

    # ------------------------------------------------------------------- loop
    def spawn(self, coro: Any) -> "asyncio.Task":
        return self._require_loop().create_task(coro)

    def stop(self) -> None:
        """Ask :meth:`run_for` to return early."""
        if self._stopping is not None:
            self._stopping.set()

    async def run_for(self, seconds: float) -> float:
        """Let the loop run events for *seconds* (or until :meth:`stop`).

        The live analogue of ``Simulator.run(until=...)``; returns the
        driver-clock time when the wait ended.
        """
        self._require_loop()
        try:
            await asyncio.wait_for(self._stopping.wait(), timeout=seconds)
        except asyncio.TimeoutError:
            pass
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LiveDriver(now={self.now:.3f}, "
                f"processed={self.events_processed})")
