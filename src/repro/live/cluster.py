"""Multi-process live deployments on localhost.

:class:`LiveCluster` is the live counterpart of the scenario engine's
:class:`~repro.eval.scenario.ScenarioSpec`: it boots N OS processes, each
running one :class:`~repro.runtime.node.MacedonNode` with the *unchanged*
registry-compiled protocol stack on a :class:`~repro.live.driver.LiveDriver`
clock and a :class:`~repro.transport.udp.SocketUdpNetwork` socket, drives a
staggered join wave plus a route, multicast, KV, or pub/sub workload, and
aggregates every
process's observations into the same metric shapes the scenario runner
reports (``workload.success_ratio``, ``workload.latency_*``,
``sim.events_processed``, …) so simulated and live runs of one specification
are directly comparable — the paper's Figure-1 promise.

Coordination is deliberately minimal: endpoints are a static address→port
map computed up front, a process barrier aligns the zero of every node's
wall clock, and results come back over a queue.  In the *data* path there is
still no runtime coordinator — once the barrier drops, the only
communication between nodes is protocol traffic over their UDP sockets.  The
coordinator re-enters only as the *fault* plane: when the config carries
:mod:`~repro.live.faults` directives it becomes a supervisor that delivers
real ``SIGKILL``\\ s on schedule, respawns victims under a capped exponential
backoff and a per-node restart budget (the respawned process re-enters
through the transport restart-epoch machinery, resuming the shared cluster
clock mid-timeline), and installs partition/cut/degrade rules into every
node's socket fault table over an out-of-band control channel.  A node that
exhausts its budget is accounted as *down* — graceful degradation, not a
run failure.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import signal
import socket as socket_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Optional

from ..eval.metrics import (correct_successor_fraction, mean, percentile,
                            phantom_reads, replica_coverage)
from ..eval.scenario import ScenarioResult

#: Stream id stamped on workload probes so application traffic of the
#: deployment under test is never miscounted (mirrors the scenario engine's
#: auto-assigned workload streams).
LIVE_WORKLOAD_STREAM = 7001

#: Lowest overlay address; 0 is avoided because the specs treat a zero
#: address as "unset" (``if candidate:`` guards).
_FIRST_ADDRESS = 1


class LiveClusterError(RuntimeError):
    """Raised when a live deployment fails to boot, run, or report."""


@dataclass(frozen=True)
class LiveClusterConfig:
    """One declarative live deployment (the live twin of a ScenarioSpec)."""

    nodes: int = 8
    protocol: str = "chord"
    base_overrides: Optional[dict] = None
    #: Measurement horizon in wall-clock seconds: the workload finishes by
    #: this offset; processes shut down ``drain`` seconds later.
    duration: float = 10.0
    join_spacing: float = 0.15
    #: Seconds between the last join and the first workload packet.
    settle: float = 1.0
    #: Seconds after the workload window for in-flight deliveries to land.
    drain: float = 1.0
    workload: str = "route"           # "route" | "multicast" | "kv" | "pubsub"
    packets: int = 64                 # total probes/sends/ops/publishes
    payload_size: int = 1000
    group: int = 4040                 # multicast group key
    # ---- workload="kv" knobs (mirror WorkloadModel's)
    kv_keys: int = 64
    kv_zipf_s: float = 1.1
    kv_read_fraction: float = 0.7
    kv_replicas: int = 3
    kv_write_quorum: int = 2
    kv_read_quorum: int = 2
    # ---- workload="pubsub" knobs; every node subscribes to every topic
    #      (live fanout sampling would need cross-process agreement).
    topics: int = 4
    seed: int = 1
    host: str = "127.0.0.1"
    base_port: int = 47000
    #: Chord's fix-fingers period, applied to any agent exposing the knob
    #: (None leaves the specification default).
    fix_period: Optional[float] = 0.5
    #: multiprocessing start method; None picks "fork" where available
    #: (children inherit the compiled registry) and "spawn" elsewhere.
    start_method: Optional[str] = None
    #: Seconds each process gets to import, compile, and bind its socket.
    startup_timeout: float = 60.0
    # ---- fault plane (see repro.live.faults)
    #: Live fault directives (KillNode / PartitionFault / LinkCut /
    #: DegradeFault), offsets from the barrier-aligned clock zero.
    faults: tuple = ()
    #: How many supervised respawns any one node gets before it is
    #: accounted as permanently down (graceful degradation).
    restart_budget: int = 3
    #: Exponential-backoff schedule for respawning a node that died
    #: *unexpectedly* (a deliberate kill's downtime comes from its
    #: directive): ``min(backoff_cap, backoff_base * 2**restarts)``.
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    #: Recovery window after the last fault transition; probes sent past
    #: ``fault_horizon + post_fault_settle`` score the post-fault ratio.
    post_fault_settle: float = 2.0
    #: Raise (→ non-zero exit) when any node's LiveDriver recorded
    #: callback exceptions — a live run that "passed" while swallowing
    #: transition errors is a lie.
    fail_on_driver_errors: bool = True
    #: Optional :class:`repro.obs.ObsConfig`: attaches the observability
    #: layer — per-node causal wire tracing, mid-run wall-clock stats
    #: polling over the control channel, and a ``repro.obs/1`` snapshot
    #: on the aggregate result.  ``None`` (the default) keeps wire bytes
    #: and the report schema identical to an untraced run.
    obs: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise LiveClusterError("a live cluster needs at least one node")
        if self.workload not in ("route", "multicast", "kv", "pubsub"):
            raise LiveClusterError(
                f"unknown workload {self.workload!r} "
                f"(route, multicast, kv, or pubsub)")
        if self.workload_start >= self.duration:
            raise LiveClusterError(
                f"duration {self.duration}s leaves no workload window: the "
                f"join wave plus settle takes {self.workload_start:.1f}s "
                f"({self.nodes} nodes x {self.join_spacing}s + "
                f"{self.settle}s); raise --duration or lower --nodes")
        if self.restart_budget < 0:
            raise LiveClusterError("restart_budget cannot be negative")
        for fault in self.faults:
            if fault.at < 0:
                raise LiveClusterError(
                    f"fault scheduled before the cluster starts: {fault}")

    # ------------------------------------------------------------- schedule
    @property
    def workload_start(self) -> float:
        return self.nodes * self.join_spacing + self.settle

    @property
    def total_runtime(self) -> float:
        return self.duration + self.drain

    def addresses(self) -> list[int]:
        return [_FIRST_ADDRESS + index for index in range(self.nodes)]

    def endpoints(self) -> dict[int, tuple[str, int]]:
        return {_FIRST_ADDRESS + index: (self.host, self.base_port + index)
                for index in range(self.nodes)}

    def probes_for(self, index: int) -> int:
        """Round-robin split of the workload packets across nodes."""
        if self.workload == "multicast":
            return self.packets if index == 0 else 0
        base, extra = divmod(self.packets, self.nodes)
        return base + (1 if index < extra else 0)

    def seqno_base(self, index: int) -> int:
        """First global sequence number of node *index*'s probes.

        Seqnos are globally unique across the deployment (as in the scenario
        engine, where one counter spans all probes), so the coordinator can
        compute distinct-probes-delivered-anywhere without a seqno collision
        between two senders masking a loss.
        """
        return sum(self.probes_for(i) for i in range(index))


@dataclass
class LiveClusterResult:
    """Aggregate result plus the raw per-process reports."""

    result: ScenarioResult
    per_node: list[dict] = field(default_factory=list)

    @property
    def metrics(self) -> dict[str, float]:
        return self.result.metrics


# ------------------------------------------------------------------- worker
def _apply_protocol_knobs(node, config: LiveClusterConfig) -> None:
    if config.fix_period is not None:
        for agent in node.stack:
            if hasattr(agent, "fix_period"):
                setattr(agent, "fix_period", config.fix_period)


async def _node_main(config: LiveClusterConfig, index: int, barrier, *,
                     ready=None, incarnation: int = 0,
                     clock_zero: Optional[float] = None) -> dict:
    """One node process: boot, join, run the workload, report.

    ``incarnation`` 0 is the barrier-aligned cold boot.  A supervisor
    respawn (``incarnation`` > 0) skips the barrier — the cluster is already
    running — and instead resumes the shared cluster clock from
    ``clock_zero``, rebuilding its protocol stack through the node's
    fail-stop recovery path so the transport demux re-keys under the new
    restart epoch (a peer's stale retransmission state cannot poison the
    reborn node, and vice versa).
    """
    # Imports happen here (not at module top) so a "spawn" child pays them
    # once, inside its own interpreter.
    from ..codegen.registry import get_registry
    from ..runtime.node import MacedonNode
    from ..runtime.messages import WireCodec
    from ..transport.udp import SocketUdpNetwork
    from ..apps.payload import AppPayload
    from .driver import LiveDriver

    address = _FIRST_ADDRESS + index
    bootstrap = _FIRST_ADDRESS
    if incarnation and index == 0 and config.nodes > 1:
        # A reborn bootstrap node must re-join *someone else's* ring; its
        # usual self-bootstrap would found a fresh one-node overlay.
        bootstrap = _FIRST_ADDRESS + 1
    stack = get_registry().load_stack(config.protocol,
                                     dict(config.base_overrides or {}))
    codec = WireCodec.for_agents(stack)
    network = SocketUdpNetwork(address, config.endpoints(), codec)
    await network.open()
    try:
        import asyncio
        loop = asyncio.get_running_loop()
        driver = LiveDriver(seed=config.seed)
        if incarnation == 0:
            # Every socket must be bound before any node may send: the
            # barrier also aligns the zero of every process's driver clock.
            # The ready flag lets the coordinator name the stuck node when
            # the barrier times out.
            if ready is not None:
                ready[index] = 1
            try:
                await loop.run_in_executor(
                    None, lambda: barrier.wait(config.startup_timeout))
            except Exception as exc:
                raise LiveClusterError(
                    f"node {address}: cluster start barrier broke "
                    f"(a peer failed to boot?): {exc!r}") from exc
            driver.start(loop)
        else:
            driver.start(loop, now=time.time() - clock_zero)

        # Observability (repro.obs): a per-node tracer honouring the run's
        # category overrides, plus — when causal tracing is on — the wire
        # TRACE envelope.  Installed before the node so agent trace gates
        # see the overrides at construction.
        obs_tracer = causal = None
        if config.obs is not None:
            from ..obs import LiveCausalLog
            from ..runtime.tracing import Tracer
            obs_tracer = Tracer(config.obs.max_records,
                                category_levels=config.obs.category_levels,
                                level=config.obs.trace_level)
            if config.obs.causal:
                causal = LiveCausalLog(address)
                network.enable_causal(causal)

        node = MacedonNode(driver, network, stack, tracer=obs_tracer)
        if incarnation:
            # Rebuild through the fail-stop recovery path so the transport
            # subsystem carries the real restart epoch, exactly as a
            # simulated crash/recover does.
            node.crash()
            node.crash_count = incarnation
            node.recover()
        _apply_protocol_knobs(node, config)

        # Delivery accounting mirrors the scenario engine's
        # WorkloadObservations: duplicate (this receiver, seqno) pairs are
        # counted separately, never scored, and the coordinator unions the
        # distinct delivered seqnos across nodes for the success ratio.
        sent = 0
        duplicates = 0
        delivered_seqnos: set[int] = set()
        latencies: list[float] = []
        #: (seqno, cluster time) per probe actually sent — the coordinator
        #: scores against the union of these, so probes a dead incarnation
        #: never sent are not charged and post-fault probes are dateable.
        sent_records: list[tuple[int, float]] = []
        kv_app = ps_app = None

        if config.obs is not None:
            # Answer coordinator stats polls over the control channel while
            # still dispatching every fault op through the default handler —
            # the obs plane must not disable the fault plane.
            def on_control(op: dict) -> None:
                if op.get("op") != "obs-report":
                    network.apply_fault_op(op)
                    return
                reply_to = op.get("reply_to")
                if not reply_to:
                    return
                stats_op = {
                    "op": "obs-stats",
                    "address": address,
                    "events_processed": driver.events_processed,
                    "errors": driver.error_count,
                    "sent": sent,
                    "delivered": len(delivered_seqnos),
                    "socket": network.stats(),
                }
                network.send_raw(
                    SocketUdpNetwork.control_frame(stats_op, src=address),
                    (reply_to[0], int(reply_to[1])))

            network.set_control_callback(on_control)

        if config.workload in ("route", "multicast"):
            def on_deliver(payload, size, mtype) -> None:
                nonlocal duplicates
                if isinstance(payload, AppPayload) \
                        and payload.stream_id == LIVE_WORKLOAD_STREAM:
                    if payload.seqno in delivered_seqnos:
                        duplicates += 1
                        return
                    delivered_seqnos.add(payload.seqno)
                    latencies.append(time.time() - payload.sent_at)

            node.macedon_register_handlers(deliver=on_deliver)
        elif config.workload == "kv":
            from ..apps.kv import KvStore
            kv_app = KvStore(node, replicas=config.kv_replicas,
                             write_quorum=config.kv_write_quorum,
                             read_quorum=config.kv_read_quorum,
                             op_bytes=config.payload_size,
                             stream_id=LIVE_WORKLOAD_STREAM)
        else:
            from ..apps.pubsub import PubSub
            ps_app = PubSub(node, stream_id=LIVE_WORKLOAD_STREAM)

        # --- join wave (bootstrap at t=0, the rest staggered); a respawn
        #     re-joins almost immediately — its downtime already happened.
        if incarnation == 0:
            join_at = 0.0 if index == 0 else index * config.join_spacing
            driver.schedule_at(join_at, node.macedon_init, bootstrap,
                               label="live-join")
        else:
            driver.schedule(0.05, node.macedon_init, bootstrap,
                            label="live-rejoin")

        # --- workload ------------------------------------------------------
        probes = config.probes_for(index)
        seqno_base = config.seqno_base(index)
        rng = driver.fork_rng(f"live-workload:{address}")
        window = config.duration - config.workload_start

        kv_issued_writes: list[tuple[int, int]] = []

        def send_probe(seqno: int) -> None:
            nonlocal sent
            sent += 1
            sent_records.append((seqno, round(driver.now, 3)))
            payload = AppPayload(seqno=seqno, sent_at=time.time(),
                                 source=address, size=config.payload_size,
                                 stream_id=LIVE_WORKLOAD_STREAM)
            if config.workload == "route":
                target = rng.randrange(node.highest_agent.key_space.size)
                node.macedon_route(target, payload, config.payload_size)
            else:
                node.macedon_multicast(config.group, payload,
                                       config.payload_size)

        if config.workload == "kv":
            # The key working set must be identical on every node, so it
            # comes from a shared-label RNG fork (same seed everywhere);
            # which keys this node's ops hit stays on the per-node stream.
            import bisect
            keys_rng = driver.fork_rng("live-kv-keys")
            key_space = node.highest_agent.key_space
            key_ids = [keys_rng.randrange(key_space.size)
                       for _ in range(config.kv_keys)]
            weights = [1.0 / (rank + 1) ** config.kv_zipf_s
                       for rank in range(config.kv_keys)]
            total_weight = sum(weights)
            zipf_cdf: list[float] = []
            acc = 0.0
            for weight in weights:
                acc += weight / total_weight
                zipf_cdf.append(acc)
            zipf_cdf[-1] = 1.0

            def send_op(seqno: int) -> None:
                nonlocal sent
                sent += 1
                sent_records.append((seqno, round(driver.now, 3)))
                key = key_ids[bisect.bisect_left(zipf_cdf, rng.random())]
                if rng.random() < config.kv_read_fraction:
                    kv_app.get(key, seqno)
                else:
                    # Versions double as values: the globally unique seqno.
                    kv_issued_writes.append((key, seqno))
                    kv_app.put(key, seqno, seqno)

            send = send_op
        elif config.workload == "pubsub":
            group_setup = max(0.0, config.workload_start - config.settle)
            if incarnation == 0:
                for topic in range(config.topics):
                    if index == 0:
                        driver.schedule_at(group_setup, ps_app.create_topic,
                                           topic, label="live-create-topic")
                    driver.schedule_at(group_setup + 0.2 + 0.01 * index,
                                       ps_app.subscribe, topic,
                                       label="live-subscribe")
            else:
                # The topics already exist; a reborn subscriber re-registers.
                for topic in range(config.topics):
                    driver.schedule(0.4 + 0.01 * topic, ps_app.subscribe,
                                    topic, label="live-resubscribe")

            def send_publish(seqno: int) -> None:
                nonlocal sent
                sent += 1
                sent_records.append((seqno, round(driver.now, 3)))
                ps_app.publish(seqno % config.topics, seqno,
                               size=config.payload_size)

            send = send_publish
        else:
            if config.workload == "multicast":
                group_setup = max(0.0, config.workload_start - config.settle)
                if incarnation == 0 and index == 0:
                    driver.schedule_at(group_setup, node.macedon_create_group,
                                       config.group, label="live-create-group")
                elif incarnation == 0:
                    driver.schedule_at(group_setup + 0.2, node.macedon_join,
                                       config.group, label="live-join-group")
                else:
                    driver.schedule(0.4, node.macedon_join, config.group,
                                    label="live-rejoin-group")
            send = send_probe
        skipped = 0
        if probes:
            gap = window / (probes + 1)
            for offset in range(probes):
                when = config.workload_start + (offset + 1) * gap
                if when <= driver.now + 0.01:
                    # This incarnation was born after the probe's slot; the
                    # dead incarnation may or may not have sent it, but its
                    # record is gone either way — count, don't resend.
                    skipped += 1
                    continue
                driver.schedule_at(when, send, seqno_base + offset,
                                   label="live-probe")

        await driver.run_for(max(0.0, config.total_runtime - driver.now))

        # --- report --------------------------------------------------------
        kv_extra = ps_extra = None
        if config.workload == "kv":
            # A KV "delivery" is one completed client op; seqnos are globally
            # unique, so the per-node completed sets union cleanly upstream.
            for record in kv_app.completed:
                delivered_seqnos.add(record.seqno)
                latencies.append(record.latency)
            kv_app._check_epoch()
            kv_extra = {
                "records": [(record.seqno, 0 if record.kind == "put" else 1,
                             record.key, record.version, record.acks)
                            for record in sorted(kv_app.completed,
                                                 key=lambda r: r.seqno)],
                "issued_writes": kv_issued_writes,
                "store": sorted(kv_app.store.items()),
            }
        elif config.workload == "pubsub":
            duplicates = ps_app.duplicates
            for delivery in ps_app.deliveries:
                delivered_seqnos.add(delivery.seqno)
                latencies.append(delivery.latency)
            ps_extra = {"deliveries": len(ps_app.deliveries)}

        transport_totals = {"messages_sent": 0, "messages_delivered": 0,
                            "segments_sent": 0, "segments_received": 0,
                            "retransmissions": 0, "drops": 0}
        for stats in node.transport_host.stats().values():
            for key in transport_totals:
                transport_totals[key] += getattr(stats, key)
        report: dict[str, Any] = {
            "address": address,
            "state": node.highest_agent.state,
            "incarnation": incarnation,
            "epoch": node.transport_host.epoch,
            "sent": sent,
            "skipped": skipped,
            "sent_records": sent_records,
            "delivered": len(delivered_seqnos),
            "delivered_seqnos": sorted(delivered_seqnos),
            "duplicates": duplicates,
            "latencies": latencies[:1000],
            "events_processed": driver.events_processed,
            "callback_errors": [repr(exc) for exc in driver.errors][:5],
            "callback_error_count": driver.error_count,
            "transport": transport_totals,
            "socket": network.stats(),
        }
        if config.obs is not None:
            report["trace"] = {
                "records": sum(node.tracer.counts.values()),
                "dropped": node.tracer.dropped,
            }
            if causal is not None:
                report["causal"] = {"traces": causal.traces,
                                    "hops": causal.hop_count,
                                    "records": causal.hops}
        if kv_extra is not None:
            report["kv"] = kv_extra
        if ps_extra is not None:
            report["pubsub"] = ps_extra
        highest = node.highest_agent
        if hasattr(highest, "successor"):
            report["ring"] = {"my_key": highest.my_key,
                              "successor": highest.successor}
        return report
    finally:
        network.close()


def _worker_entry(config: LiveClusterConfig, index: int, barrier,
                  results, ready=None, incarnation: int = 0,
                  clock_zero: Optional[float] = None) -> None:
    import asyncio
    try:
        report = asyncio.run(_node_main(config, index, barrier, ready=ready,
                                        incarnation=incarnation,
                                        clock_zero=clock_zero))
    except BaseException as exc:   # noqa: BLE001 - ship the failure home
        if barrier is not None:
            try:
                barrier.abort()   # release peers still waiting to start
            except Exception:
                pass
        results.put((index, {"address": _FIRST_ADDRESS + index,
                             "incarnation": incarnation,
                             "error": repr(exc),
                             "traceback": traceback.format_exc()}))
        return
    results.put((index, report))


# -------------------------------------------------------------- coordinator
class LiveCluster:
    """Boot a :class:`LiveClusterConfig` across processes and aggregate."""

    def __init__(self, config: LiveClusterConfig) -> None:
        self.config = config

    def _context(self):
        method = self.config.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(method)

    # ------------------------------------------------------------ fault plan
    def _compile_actions(self, push_action) -> None:
        """Turn the config's fault directives into timed coordinator actions.

        Kills become ``("kill", directive)``; network directives become
        ``("control", (key, op))`` pairs — *key* identifies the standing rule
        so its heal/restore can retire it from the replay set a respawned
        node receives.
        """
        from .faults import DegradeFault, KillNode, LinkCut, PartitionFault

        for fault in self.config.faults:
            if isinstance(fault, KillNode):
                push_action(fault.at, "kill", fault)
            elif isinstance(fault, PartitionFault):
                groups = [[_FIRST_ADDRESS + i for i in group]
                          for group in fault.groups]
                push_action(fault.at, "control",
                            ("partition", {"op": "partition",
                                           "groups": groups}))
                if fault.heal_after is not None:
                    push_action(fault.end, "control",
                                ("partition", {"op": "heal-partition"}))
            elif isinstance(fault, LinkCut):
                pairs = [[_FIRST_ADDRESS + u, _FIRST_ADDRESS + v]
                         for u, v in fault.pairs]
                key = ("cut", tuple(tuple(pair) for pair in pairs))
                push_action(fault.at, "control",
                            (key, {"op": "cut", "pairs": pairs,
                                   "one_way": bool(fault.one_way)}))
                if fault.heal_after is not None:
                    push_action(fault.end, "control",
                                (key, {"op": "heal", "pairs": pairs}))
            elif isinstance(fault, DegradeFault):
                targets = [_FIRST_ADDRESS + i for i in fault.indices]
                key = ("degrade", tuple(targets))
                push_action(fault.at, "control",
                            (key, {"op": "degrade", "targets": targets,
                                   "delay": fault.delay,
                                   "loss": fault.loss}))
                if fault.restore_after is not None:
                    push_action(fault.end, "control",
                                (key, {"op": "restore", "targets": targets}))
            else:
                raise LiveClusterError(
                    f"unknown live fault directive {fault!r}")

    # ------------------------------------------------------------------- run
    def run(self) -> LiveClusterResult:
        config = self.config
        # Compile the stack up front: it validates the protocol name before
        # any process starts, and fork children inherit the warm registry.
        from ..codegen.registry import get_registry
        from ..transport.udp import SocketUdpNetwork
        get_registry().load_stack(config.protocol,
                                  dict(config.base_overrides or {}))

        ctx = self._context()
        supervise = bool(config.faults)
        # The coordinator is the (nodes+1)-th barrier party, so it learns
        # "everyone booted" (and the cluster clock zero) without a report.
        barrier = ctx.Barrier(config.nodes + 1)
        ready = ctx.Array("b", config.nodes)
        results_queue = ctx.Queue()
        endpoints = config.endpoints()

        state: dict[int, dict] = {
            index: {"incarnation": 0, "restarts": 0, "killed": 0,
                    "down": False, "pending_respawn": False, "proc": None}
            for index in range(config.nodes)
        }
        all_processes: list = []

        def spawn(index: int, incarnation: int,
                  clock_zero: Optional[float]) -> None:
            name = f"live-node-{_FIRST_ADDRESS + index}"
            if incarnation:
                name = f"{name}.{incarnation}"
            process = ctx.Process(
                target=_worker_entry,
                args=(config, index,
                      barrier if incarnation == 0 else None,
                      results_queue,
                      ready if incarnation == 0 else None,
                      incarnation, clock_zero),
                name=name, daemon=True)
            process.start()
            all_processes.append(process)
            state[index]["proc"] = process

        actions: list = []
        action_seq = itertools.count()

        def push_action(at: float, kind: str, payload) -> None:
            heapq.heappush(actions, (at, next(action_seq), kind, payload))

        self._compile_actions(push_action)
        #: Standing network-fault rules (key → op), replayed to respawned
        #: nodes whose fresh fault tables would otherwise leak traffic
        #: through an unhealed partition.
        active_ops: dict = {}
        control_socket = socket_module.socket(socket_module.AF_INET,
                                              socket_module.SOCK_DGRAM)
        #: Wall-clock obs samples: [{"t": offset, "nodes": [stats_op, ...]}]
        #: collected by polling every node over the control channel mid-run.
        wall_samples: list[dict] = []
        if config.obs is not None:
            # The control socket doubles as the reply channel for stats
            # polls, so it needs a concrete bound address.
            control_socket.bind((config.host, 0))
            poll_step = max(1.0,
                            (config.duration - config.workload_start) / 4.0)
            poll_at = config.workload_start
            while poll_at < config.duration:
                push_action(poll_at, "obs-poll", None)
                poll_at += poll_step

        def send_control(op: dict, addresses=None) -> None:
            frame = SocketUdpNetwork.control_frame(op)
            for address in (addresses if addresses is not None
                            else list(endpoints)):
                for _ in range(2):   # UDP: fire twice, ops are idempotent
                    try:
                        control_socket.sendto(frame, endpoints[address])
                    except OSError:   # pragma: no cover - endpoint gone
                        pass

        reports: dict[int, dict] = {}

        try:
            for index in range(config.nodes):
                spawn(index, 0, None)
            try:
                barrier.wait(config.startup_timeout)
            except threading.BrokenBarrierError:
                raise self._startup_failure(results_queue, reports, state,
                                            ready) from None
            t0 = time.time()
            deadline = t0 + config.total_runtime + 30.0

            while True:
                now = time.time() - t0
                # 1. fire due fault-plane actions
                while actions and actions[0][0] <= now:
                    _, _, kind, payload = heapq.heappop(actions)
                    if kind == "kill":
                        self._do_kill(payload, state, push_action, now)
                    elif kind == "control":
                        key, op = payload
                        if op["op"] in ("partition", "cut", "degrade"):
                            active_ops[key] = op
                        else:
                            active_ops.pop(key, None)
                        send_control(op)
                    elif kind == "respawn":
                        index = payload
                        node_state = state[index]
                        node_state["incarnation"] += 1
                        node_state["restarts"] += 1
                        node_state["pending_respawn"] = False
                        spawn(index, node_state["incarnation"], t0)
                        if active_ops:
                            # The reborn socket needs the standing rules;
                            # send once it is plausibly bound, then again in
                            # case the first volley raced the bind.
                            push_action(now + 0.5, "replay", index)
                            push_action(now + 1.5, "replay", index)
                    elif kind == "replay":
                        for op in list(active_ops.values()):
                            send_control(op, [_FIRST_ADDRESS + payload])
                    elif kind == "obs-poll":
                        reply_to = list(control_socket.getsockname())
                        send_control({"op": "obs-report",
                                      "reply_to": reply_to})
                        replies: dict[int, dict] = {}
                        control_socket.settimeout(0.25)
                        try:
                            while len(replies) < config.nodes:
                                try:
                                    data, _addr = control_socket.recvfrom(
                                        65535)
                                except socket_module.timeout:
                                    break
                                stats_op = \
                                    SocketUdpNetwork.parse_control_frame(data)
                                if (stats_op is None or
                                        stats_op.get("op") != "obs-stats"):
                                    continue
                                # send_control fires twice; dedupe replies.
                                replies[stats_op["address"]] = stats_op
                        finally:
                            control_socket.settimeout(None)
                        wall_samples.append({
                            "t": round(time.time() - t0, 3),
                            "nodes": [replies[key]
                                      for key in sorted(replies)],
                        })

                expected = [i for i in range(config.nodes)
                            if not state[i]["down"]]
                if (all(i in reports for i in expected)
                        and not any(kind in ("kill", "respawn")
                                    for _, _, kind, _ in actions)):
                    # Leftover control actions (a heal scheduled past the
                    # run's end) have nobody left to heal — don't wait.
                    break
                remaining = deadline - time.time()
                if remaining <= 0:
                    missing = sorted(set(expected) - set(reports))
                    raise LiveClusterError(
                        f"live cluster timed out waiting for node reports "
                        f"(missing indices: {missing})")

                # 2. drain the results queue (bounded by the next action)
                next_action_in = actions[0][0] - now if actions else 2.0
                timeout = max(0.05, min(remaining, next_action_in, 0.5))
                drained = False
                try:
                    index, report = results_queue.get(timeout=timeout)
                    reports[index] = report
                    drained = True
                    while True:
                        index, report = results_queue.get_nowait()
                        reports[index] = report
                except Empty:
                    pass
                if drained:
                    continue

                # 3. supervise: a worker that died without reporting either
                # respawns (within budget) or is accounted down; without a
                # fault plan, keep the original fail-fast contract.
                for index in expected:
                    node_state = state[index]
                    if (index in reports or node_state["pending_respawn"]
                            or node_state["proc"].is_alive()):
                        continue
                    if not supervise:
                        raise LiveClusterError(
                            f"live node process died without reporting "
                            f"(index {index}, exit code "
                            f"{node_state['proc'].exitcode})")
                    if node_state["restarts"] < config.restart_budget:
                        node_state["pending_respawn"] = True
                        delay = min(config.backoff_cap,
                                    config.backoff_base
                                    * (2 ** node_state["restarts"]))
                        push_action(now + delay, "respawn", index)
                    else:
                        node_state["down"] = True
        finally:
            control_socket.close()
            # Orphan cleanup covers every process ever started, including
            # respawned incarnations: join, then escalate to terminate and
            # finally kill — a coordinator exit must leave no node behind.
            for process in all_processes:
                process.join(timeout=10.0)
            for process in all_processes:
                if process.is_alive():   # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5.0)
            for process in all_processes:
                if process.is_alive():   # pragma: no cover - unkillable
                    process.kill()
                    process.join(timeout=5.0)

        failures = {index: report for index, report in reports.items()
                    if "error" in report}
        if failures:
            detail = "; ".join(
                f"node {report['address']}: {report['error']}"
                for _, report in sorted(failures.items()))
            tb = next(iter(failures.values())).get("traceback", "")
            raise LiveClusterError(
                f"{len(failures)}/{config.nodes} live nodes failed — "
                f"{detail}\nfirst traceback:\n{tb}")

        per_node = [reports.get(index) or self._down_report(index, state[index])
                    for index in range(config.nodes)]
        supervisor = {
            "killed": sum(s["killed"] for s in state.values()),
            "respawns": sum(s["restarts"] for s in state.values()),
            "down": sum(1 for s in state.values() if s["down"]),
        }
        outcome = self._aggregate(per_node, supervisor=supervisor,
                                  wall_samples=wall_samples)

        if config.fail_on_driver_errors:
            noisy = [(report["address"], report["callback_error_count"],
                      report["callback_errors"])
                     for report in per_node
                     if report.get("callback_error_count")]
            if noisy:
                detail = "; ".join(
                    f"node {address}: {count} error(s), first {errors[0]}"
                    for address, count, errors in noisy)
                raise LiveClusterError(
                    f"live drivers recorded callback exceptions on "
                    f"{len(noisy)} node(s) — {detail}")
        return outcome

    # --------------------------------------------------------- fault helpers
    def _do_kill(self, fault, state: dict, push_action, now: float) -> None:
        node_state = state[fault.index]
        if node_state["down"] or node_state["pending_respawn"]:
            return   # already dead; a second kill is a no-op
        process = node_state["proc"]
        if process is not None and process.is_alive():
            try:
                os.kill(process.pid, signal.SIGKILL)
            except ProcessLookupError:   # pragma: no cover - exit race
                pass
            process.join(5.0)
        node_state["killed"] += 1
        if (fault.respawn_after is not None
                and node_state["restarts"] < self.config.restart_budget):
            node_state["pending_respawn"] = True
            # The directive's downtime, stretched by the capped exponential
            # backoff when this node has already burned restarts.
            delay = min(self.config.backoff_cap,
                        fault.respawn_after * (2 ** node_state["restarts"]))
            push_action(now + delay, "respawn", fault.index)
        else:
            node_state["down"] = True

    def _startup_failure(self, results_queue, reports: dict, state: dict,
                         ready) -> LiveClusterError:
        """Name the node(s) that broke the start barrier."""
        # A worker that merely observed the broken barrier is a casualty,
        # not the cause; only errors raised *before* the barrier (port bind,
        # import failure) explain the breakage.  The causing report may
        # still be in flight through the queue feeder when the barrier
        # breaks, so poll briefly before settling for the stuck diagnostic.
        booted_errors: dict[int, dict] = {}
        deadline = time.time() + 2.0
        while True:
            try:
                while True:
                    index, report = results_queue.get_nowait()
                    reports[index] = report
            except Empty:
                pass
            booted_errors = {
                index: report for index, report in reports.items()
                if "error" in report
                and "barrier broke" not in report["error"]}
            if booted_errors or time.time() >= deadline:
                break
            time.sleep(0.05)
        if booted_errors:
            detail = "; ".join(
                f"node {report['address']}: {report['error']}"
                for _, report in sorted(booted_errors.items()))
            return LiveClusterError(
                f"live cluster failed to start — {detail}")
        stuck = [index for index in range(self.config.nodes)
                 if not ready[index]]
        parts = []
        for index in stuck:
            process = state[index]["proc"]
            status = ("alive" if process.is_alive()
                      else f"exit code {process.exitcode}")
            parts.append(f"node {_FIRST_ADDRESS + index} "
                         f"(pid {process.pid}, {status})")
        return LiveClusterError(
            f"cluster startup timed out after "
            f"{self.config.startup_timeout:.0f}s: {len(stuck)} node(s) "
            f"never reached the start barrier — {', '.join(parts)}; "
            f"still importing/compiling, or stuck binding a port?")

    def _down_report(self, index: int, node_state: dict) -> dict:
        """Placeholder report for a node that stayed down (budget spent or
        killed with no respawn): zero contribution, visible in the count."""
        return {
            "address": _FIRST_ADDRESS + index,
            "state": "down",
            "down": True,
            "incarnation": node_state["incarnation"],
            "epoch": node_state["incarnation"],
            "sent": 0,
            "skipped": 0,
            "sent_records": [],
            "delivered": 0,
            "delivered_seqnos": [],
            "duplicates": 0,
            "latencies": [],
            "events_processed": 0,
            "callback_errors": [],
            "callback_error_count": 0,
            "transport": {"messages_sent": 0, "messages_delivered": 0,
                          "segments_sent": 0, "segments_received": 0,
                          "retransmissions": 0, "drops": 0},
            "socket": {"frames_sent": 0, "frames_received": 0,
                       "bytes_sent": 0, "bytes_received": 0,
                       "send_drops": 0, "decode_errors": 0,
                       "fault_drops": 0, "fragments_sent": 0,
                       "fragments_received": 0, "reassembly_timeouts": 0,
                       "control_frames": 0},
        }

    # ------------------------------------------------------------ aggregation
    def _aggregate(self, per_node: list[dict],
                   supervisor: Optional[dict] = None,
                   wall_samples: Optional[list] = None) -> LiveClusterResult:
        """Score exactly as the scenario engine's WorkloadObservations does:
        ``deliveries`` counts deduped (receiver, seqno) upcalls, and
        ``success_ratio`` is distinct probes delivered *anywhere* over
        probes *accounted as sent* (the union of surviving incarnations'
        send records — a probe whose sender died before its slot is not a
        loss, it was never sent) — so a live run and a simulated run of one
        spec are read off the same ruler."""
        config = self.config
        sent = sum(report["sent"] for report in per_node)
        deliveries = sum(report["delivered"] for report in per_node)
        delivered_anywhere: set[int] = set()
        accounted: set[int] = set()
        latencies: list[float] = []
        for report in per_node:
            delivered_anywhere.update(report["delivered_seqnos"])
            accounted.update(seqno for seqno, _
                             in report.get("sent_records", ()))
            latencies.extend(report["latencies"])
        if accounted:
            success_ratio = (len(delivered_anywhere & accounted)
                             / len(accounted))
        else:
            success_ratio = len(delivered_anywhere) / sent if sent else 0.0
        metrics: dict[str, float] = {
            "workload.sent": float(sent),
            "workload.skipped": float(sum(
                report.get("skipped", 0) for report in per_node)),
            "workload.deliveries": float(deliveries),
            "workload.duplicates": float(sum(
                report["duplicates"] for report in per_node)),
            "workload.success_ratio": success_ratio,
            "workload.latency_mean": mean(latencies),
            "workload.latency_p95": percentile(latencies, 0.95),
            "nodes.count": float(config.nodes),
            "nodes.joined": float(sum(
                1 for report in per_node
                if report["state"] not in ("init", "down"))),
            "nodes.callback_errors": float(sum(
                report["callback_error_count"] for report in per_node)),
            "sim.events_processed": float(sum(
                report["events_processed"] for report in per_node)),
            "transport.messages_sent": float(sum(
                report["transport"]["messages_sent"] for report in per_node)),
            "transport.retransmissions": float(sum(
                report["transport"]["retransmissions"] for report in per_node)),
            "socket.decode_errors": float(sum(
                report["socket"]["decode_errors"] for report in per_node)),
            "socket.fault_drops": float(sum(
                report["socket"].get("fault_drops", 0)
                for report in per_node)),
            "socket.reassembly_timeouts": float(sum(
                report["socket"].get("reassembly_timeouts", 0)
                for report in per_node)),
        }
        if supervisor is not None:
            metrics["nodes.killed"] = float(supervisor["killed"])
            metrics["nodes.respawns"] = float(supervisor["respawns"])
            metrics["nodes.down"] = float(supervisor["down"])
        if config.faults:
            from .faults import fault_horizon
            recovered_at = (fault_horizon(config.faults)
                            + config.post_fault_settle)
            late = {seqno for report in per_node
                    for seqno, at in report.get("sent_records", ())
                    if at >= recovered_at}
            if late:
                metrics["workload.post_fault_success_ratio"] = \
                    len(delivered_anywhere & late) / len(late)
        if config.workload == "kv":
            # success_ratio already reads as quorum success (distinct
            # completed ops over ops issued); add the consistency metrics
            # that are sound across processes.  Staleness needs a
            # strictly-before clock, which wall clocks across processes do
            # not give us, so live reports the version-space checks only.
            records = []
            issued_writes: set[tuple[int, int]] = set()
            stores = []
            for report in per_node:
                if "kv" not in report:
                    continue   # a down node's store is gone with it
                records.extend(report["kv"]["records"])
                issued_writes.update(
                    (key, version)
                    for key, version in report["kv"]["issued_writes"])
                stores.append(dict(report["kv"]["store"]))
            reads = [(key, version) for _, kind, key, version, _ in records
                     if kind == 1]
            metrics["workload.completed"] = float(len(records))
            metrics["workload.puts"] = float(sum(
                1 for _, kind, *_ in records if kind == 0))
            metrics["workload.gets"] = float(len(reads))
            metrics["workload.quorum_success"] = \
                metrics["workload.success_ratio"]
            metrics["workload.phantom_reads"] = float(
                phantom_reads(reads, issued_writes))
            latest_writes: dict[int, int] = {}
            for key, version in issued_writes:
                latest_writes[key] = max(latest_writes.get(key, -1), version)
            metrics["workload.replica_coverage"] = replica_coverage(
                stores, latest_writes, config.kv_replicas)
        elif config.workload == "pubsub":
            expected = sent * max(config.nodes - 1, 0)
            metrics["workload.expected"] = float(expected)
            metrics["workload.coverage"] = \
                deliveries / expected if expected else 0.0
        alive_reports = [report for report in per_node
                         if not report.get("down")]
        rings = [report["ring"] for report in alive_reports
                 if "ring" in report]
        if len(rings) == len(alive_reports) and rings:
            membership = [(ring["my_key"], report["address"])
                          for ring, report in zip(rings, alive_reports)]
            successors = {report["address"]: ring["successor"]
                          for ring, report in zip(rings, alive_reports)}
            metrics["ring.correct_successor_fraction"] = \
                correct_successor_fraction(membership, successors)
        obs_snapshot = None
        if config.obs is not None:
            from ..obs import (artifact, base_registry, fill_live,
                               write_obs_snapshot, write_trace_file)
            registry = base_registry()
            hop_records = fill_live(
                registry, per_node, nodes_total=config.nodes,
                nodes_alive=len(alive_reports))
            obs_snapshot = artifact(
                registry, mode="live",
                name=f"live-{config.protocol}-{config.workload}",
                seed=config.seed, duration=config.duration)
            obs_snapshot["wallclock"] = wall_samples or []
            if config.obs.snapshot_path:
                write_obs_snapshot(config.obs.snapshot_path, obs_snapshot)
            if config.obs.trace_path:
                write_trace_file(config.obs.trace_path, hop_records,
                                 meta={"mode": "live",
                                       "seed": config.seed})
        result = ScenarioResult(
            name=f"live-{config.protocol}-{config.workload}",
            seed=config.seed,
            duration=config.duration,
            metrics=metrics,
            series={},
            events=[],
            experiment=None,
            obs=obs_snapshot,
        )
        return LiveClusterResult(result=result, per_node=per_node)
