"""Multi-process live deployments on localhost.

:class:`LiveCluster` is the live counterpart of the scenario engine's
:class:`~repro.eval.scenario.ScenarioSpec`: it boots N OS processes, each
running one :class:`~repro.runtime.node.MacedonNode` with the *unchanged*
registry-compiled protocol stack on a :class:`~repro.live.driver.LiveDriver`
clock and a :class:`~repro.transport.udp.SocketUdpNetwork` socket, drives a
staggered join wave plus a route, multicast, KV, or pub/sub workload, and
aggregates every
process's observations into the same metric shapes the scenario runner
reports (``workload.success_ratio``, ``workload.latency_*``,
``sim.events_processed``, …) so simulated and live runs of one specification
are directly comparable — the paper's Figure-1 promise.

Coordination is deliberately minimal: endpoints are a static address→port
map computed up front, a process barrier aligns the zero of every node's
wall clock, and results come back over a queue.  There is no runtime
coordinator in the data path — once the barrier drops, the only
communication between nodes is protocol traffic over their UDP sockets.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from ..eval.metrics import (correct_successor_fraction, mean, percentile,
                            phantom_reads, replica_coverage)
from ..eval.scenario import ScenarioResult

#: Stream id stamped on workload probes so application traffic of the
#: deployment under test is never miscounted (mirrors the scenario engine's
#: auto-assigned workload streams).
LIVE_WORKLOAD_STREAM = 7001

#: Lowest overlay address; 0 is avoided because the specs treat a zero
#: address as "unset" (``if candidate:`` guards).
_FIRST_ADDRESS = 1


class LiveClusterError(RuntimeError):
    """Raised when a live deployment fails to boot, run, or report."""


@dataclass(frozen=True)
class LiveClusterConfig:
    """One declarative live deployment (the live twin of a ScenarioSpec)."""

    nodes: int = 8
    protocol: str = "chord"
    base_overrides: Optional[dict] = None
    #: Measurement horizon in wall-clock seconds: the workload finishes by
    #: this offset; processes shut down ``drain`` seconds later.
    duration: float = 10.0
    join_spacing: float = 0.15
    #: Seconds between the last join and the first workload packet.
    settle: float = 1.0
    #: Seconds after the workload window for in-flight deliveries to land.
    drain: float = 1.0
    workload: str = "route"           # "route" | "multicast" | "kv" | "pubsub"
    packets: int = 64                 # total probes/sends/ops/publishes
    payload_size: int = 1000
    group: int = 4040                 # multicast group key
    # ---- workload="kv" knobs (mirror WorkloadModel's)
    kv_keys: int = 64
    kv_zipf_s: float = 1.1
    kv_read_fraction: float = 0.7
    kv_replicas: int = 3
    kv_write_quorum: int = 2
    kv_read_quorum: int = 2
    # ---- workload="pubsub" knobs; every node subscribes to every topic
    #      (live fanout sampling would need cross-process agreement).
    topics: int = 4
    seed: int = 1
    host: str = "127.0.0.1"
    base_port: int = 47000
    #: Chord's fix-fingers period, applied to any agent exposing the knob
    #: (None leaves the specification default).
    fix_period: Optional[float] = 0.5
    #: multiprocessing start method; None picks "fork" where available
    #: (children inherit the compiled registry) and "spawn" elsewhere.
    start_method: Optional[str] = None
    #: Seconds each process gets to import, compile, and bind its socket.
    startup_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise LiveClusterError("a live cluster needs at least one node")
        if self.workload not in ("route", "multicast", "kv", "pubsub"):
            raise LiveClusterError(
                f"unknown workload {self.workload!r} "
                f"(route, multicast, kv, or pubsub)")
        if self.workload_start >= self.duration:
            raise LiveClusterError(
                f"duration {self.duration}s leaves no workload window: the "
                f"join wave plus settle takes {self.workload_start:.1f}s "
                f"({self.nodes} nodes x {self.join_spacing}s + "
                f"{self.settle}s); raise --duration or lower --nodes")

    # ------------------------------------------------------------- schedule
    @property
    def workload_start(self) -> float:
        return self.nodes * self.join_spacing + self.settle

    @property
    def total_runtime(self) -> float:
        return self.duration + self.drain

    def addresses(self) -> list[int]:
        return [_FIRST_ADDRESS + index for index in range(self.nodes)]

    def endpoints(self) -> dict[int, tuple[str, int]]:
        return {_FIRST_ADDRESS + index: (self.host, self.base_port + index)
                for index in range(self.nodes)}

    def probes_for(self, index: int) -> int:
        """Round-robin split of the workload packets across nodes."""
        if self.workload == "multicast":
            return self.packets if index == 0 else 0
        base, extra = divmod(self.packets, self.nodes)
        return base + (1 if index < extra else 0)

    def seqno_base(self, index: int) -> int:
        """First global sequence number of node *index*'s probes.

        Seqnos are globally unique across the deployment (as in the scenario
        engine, where one counter spans all probes), so the coordinator can
        compute distinct-probes-delivered-anywhere without a seqno collision
        between two senders masking a loss.
        """
        return sum(self.probes_for(i) for i in range(index))


@dataclass
class LiveClusterResult:
    """Aggregate result plus the raw per-process reports."""

    result: ScenarioResult
    per_node: list[dict] = field(default_factory=list)

    @property
    def metrics(self) -> dict[str, float]:
        return self.result.metrics


# ------------------------------------------------------------------- worker
def _apply_protocol_knobs(node, config: LiveClusterConfig) -> None:
    if config.fix_period is not None:
        for agent in node.stack:
            if hasattr(agent, "fix_period"):
                setattr(agent, "fix_period", config.fix_period)


async def _node_main(config: LiveClusterConfig, index: int, barrier) -> dict:
    """One node process: boot, join, run the workload, report."""
    # Imports happen here (not at module top) so a "spawn" child pays them
    # once, inside its own interpreter.
    from ..codegen.registry import get_registry
    from ..runtime.node import MacedonNode
    from ..runtime.messages import WireCodec
    from ..transport.udp import SocketUdpNetwork
    from ..apps.payload import AppPayload
    from .driver import LiveDriver

    address = _FIRST_ADDRESS + index
    bootstrap = _FIRST_ADDRESS
    stack = get_registry().load_stack(config.protocol,
                                     dict(config.base_overrides or {}))
    codec = WireCodec.for_agents(stack)
    network = SocketUdpNetwork(address, config.endpoints(), codec)
    await network.open()
    try:
        # Every socket must be bound before any node may send: the barrier
        # also aligns the zero of every process's driver clock.
        import asyncio
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, lambda: barrier.wait(config.startup_timeout))
        except Exception as exc:
            raise LiveClusterError(
                f"node {address}: cluster start barrier broke "
                f"(a peer failed to boot?): {exc!r}") from exc

        driver = LiveDriver(seed=config.seed)
        driver.start(loop)
        node = MacedonNode(driver, network, stack)
        _apply_protocol_knobs(node, config)

        # Delivery accounting mirrors the scenario engine's
        # WorkloadObservations: duplicate (this receiver, seqno) pairs are
        # counted separately, never scored, and the coordinator unions the
        # distinct delivered seqnos across nodes for the success ratio.
        sent = 0
        duplicates = 0
        delivered_seqnos: set[int] = set()
        latencies: list[float] = []
        kv_app = ps_app = None

        if config.workload in ("route", "multicast"):
            def on_deliver(payload, size, mtype) -> None:
                nonlocal duplicates
                if isinstance(payload, AppPayload) \
                        and payload.stream_id == LIVE_WORKLOAD_STREAM:
                    if payload.seqno in delivered_seqnos:
                        duplicates += 1
                        return
                    delivered_seqnos.add(payload.seqno)
                    latencies.append(time.time() - payload.sent_at)

            node.macedon_register_handlers(deliver=on_deliver)
        elif config.workload == "kv":
            from ..apps.kv import KvStore
            kv_app = KvStore(node, replicas=config.kv_replicas,
                             write_quorum=config.kv_write_quorum,
                             read_quorum=config.kv_read_quorum,
                             op_bytes=config.payload_size,
                             stream_id=LIVE_WORKLOAD_STREAM)
        else:
            from ..apps.pubsub import PubSub
            ps_app = PubSub(node, stream_id=LIVE_WORKLOAD_STREAM)

        # --- join wave (bootstrap at t=0, the rest staggered) -------------
        join_at = 0.0 if index == 0 else index * config.join_spacing
        driver.schedule(join_at, node.macedon_init, bootstrap,
                        label="live-join")

        # --- workload ------------------------------------------------------
        probes = config.probes_for(index)
        seqno_base = config.seqno_base(index)
        rng = driver.fork_rng(f"live-workload:{address}")
        window = config.duration - config.workload_start

        kv_issued_writes: list[tuple[int, int]] = []

        def send_probe(seqno: int) -> None:
            nonlocal sent
            sent += 1
            payload = AppPayload(seqno=seqno, sent_at=time.time(),
                                 source=address, size=config.payload_size,
                                 stream_id=LIVE_WORKLOAD_STREAM)
            if config.workload == "route":
                target = rng.randrange(node.highest_agent.key_space.size)
                node.macedon_route(target, payload, config.payload_size)
            else:
                node.macedon_multicast(config.group, payload,
                                       config.payload_size)

        if config.workload == "kv":
            # The key working set must be identical on every node, so it
            # comes from a shared-label RNG fork (same seed everywhere);
            # which keys this node's ops hit stays on the per-node stream.
            import bisect
            keys_rng = driver.fork_rng("live-kv-keys")
            key_space = node.highest_agent.key_space
            key_ids = [keys_rng.randrange(key_space.size)
                       for _ in range(config.kv_keys)]
            weights = [1.0 / (rank + 1) ** config.kv_zipf_s
                       for rank in range(config.kv_keys)]
            total_weight = sum(weights)
            zipf_cdf: list[float] = []
            acc = 0.0
            for weight in weights:
                acc += weight / total_weight
                zipf_cdf.append(acc)
            zipf_cdf[-1] = 1.0

            def send_op(seqno: int) -> None:
                nonlocal sent
                sent += 1
                key = key_ids[bisect.bisect_left(zipf_cdf, rng.random())]
                if rng.random() < config.kv_read_fraction:
                    kv_app.get(key, seqno)
                else:
                    # Versions double as values: the globally unique seqno.
                    kv_issued_writes.append((key, seqno))
                    kv_app.put(key, seqno, seqno)

            send = send_op
        elif config.workload == "pubsub":
            group_setup = max(0.0, config.workload_start - config.settle)
            for topic in range(config.topics):
                if index == 0:
                    driver.schedule(group_setup, ps_app.create_topic, topic,
                                    label="live-create-topic")
                driver.schedule(group_setup + 0.2 + 0.01 * index,
                                ps_app.subscribe, topic,
                                label="live-subscribe")

            def send_publish(seqno: int) -> None:
                nonlocal sent
                sent += 1
                ps_app.publish(seqno % config.topics, seqno,
                               size=config.payload_size)

            send = send_publish
        else:
            if config.workload == "multicast":
                group_setup = max(0.0, config.workload_start - config.settle)
                if index == 0:
                    driver.schedule(group_setup, node.macedon_create_group,
                                    config.group, label="live-create-group")
                else:
                    driver.schedule(group_setup + 0.2, node.macedon_join,
                                    config.group, label="live-join-group")
            send = send_probe
        if probes:
            gap = window / (probes + 1)
            for offset in range(probes):
                driver.schedule(config.workload_start + (offset + 1) * gap,
                                send, seqno_base + offset,
                                label="live-probe")

        await driver.run_for(config.total_runtime)

        # --- report --------------------------------------------------------
        kv_extra = ps_extra = None
        if config.workload == "kv":
            # A KV "delivery" is one completed client op; seqnos are globally
            # unique, so the per-node completed sets union cleanly upstream.
            for record in kv_app.completed:
                delivered_seqnos.add(record.seqno)
                latencies.append(record.latency)
            kv_app._check_epoch()
            kv_extra = {
                "records": [(record.seqno, 0 if record.kind == "put" else 1,
                             record.key, record.version, record.acks)
                            for record in sorted(kv_app.completed,
                                                 key=lambda r: r.seqno)],
                "issued_writes": kv_issued_writes,
                "store": sorted(kv_app.store.items()),
            }
        elif config.workload == "pubsub":
            duplicates = ps_app.duplicates
            for delivery in ps_app.deliveries:
                delivered_seqnos.add(delivery.seqno)
                latencies.append(delivery.latency)
            ps_extra = {"deliveries": len(ps_app.deliveries)}

        transport_totals = {"messages_sent": 0, "messages_delivered": 0,
                            "segments_sent": 0, "segments_received": 0,
                            "retransmissions": 0, "drops": 0}
        for stats in node.transport_host.stats().values():
            for key in transport_totals:
                transport_totals[key] += getattr(stats, key)
        report: dict[str, Any] = {
            "address": address,
            "state": node.highest_agent.state,
            "sent": sent,
            "delivered": len(delivered_seqnos),
            "delivered_seqnos": sorted(delivered_seqnos),
            "duplicates": duplicates,
            "latencies": latencies[:1000],
            "events_processed": driver.events_processed,
            "callback_errors": [repr(exc) for exc in driver.errors][:5],
            "callback_error_count": driver.error_count,
            "transport": transport_totals,
            "socket": network.stats(),
        }
        if kv_extra is not None:
            report["kv"] = kv_extra
        if ps_extra is not None:
            report["pubsub"] = ps_extra
        highest = node.highest_agent
        if hasattr(highest, "successor"):
            report["ring"] = {"my_key": highest.my_key,
                              "successor": highest.successor}
        return report
    finally:
        network.close()


def _worker_entry(config: LiveClusterConfig, index: int, barrier,
                  results) -> None:
    import asyncio
    try:
        report = asyncio.run(_node_main(config, index, barrier))
    except BaseException as exc:   # noqa: BLE001 - ship the failure home
        try:
            barrier.abort()   # release peers still waiting to start
        except Exception:
            pass
        results.put((index, {"address": _FIRST_ADDRESS + index,
                             "error": repr(exc),
                             "traceback": traceback.format_exc()}))
        return
    results.put((index, report))


# -------------------------------------------------------------- coordinator
class LiveCluster:
    """Boot a :class:`LiveClusterConfig` across processes and aggregate."""

    def __init__(self, config: LiveClusterConfig) -> None:
        self.config = config

    def _context(self):
        method = self.config.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(method)

    def run(self) -> LiveClusterResult:
        config = self.config
        # Compile the stack up front: it validates the protocol name before
        # any process starts, and fork children inherit the warm registry.
        from ..codegen.registry import get_registry
        get_registry().load_stack(config.protocol,
                                  dict(config.base_overrides or {}))

        ctx = self._context()
        barrier = ctx.Barrier(config.nodes)
        results_queue = ctx.Queue()
        processes = [
            ctx.Process(target=_worker_entry,
                        args=(config, index, barrier, results_queue),
                        name=f"live-node-{_FIRST_ADDRESS + index}",
                        daemon=True)
            for index in range(config.nodes)
        ]
        started = time.time()
        for process in processes:
            process.start()

        deadline = (started + config.startup_timeout
                    + config.total_runtime + 30.0)
        reports: dict[int, dict] = {}
        try:
            while len(reports) < config.nodes:
                remaining = deadline - time.time()
                if remaining <= 0:
                    missing = sorted(set(range(config.nodes)) - set(reports))
                    raise LiveClusterError(
                        f"live cluster timed out waiting for node reports "
                        f"(missing indices: {missing})")
                try:
                    index, report = results_queue.get(
                        timeout=min(remaining, 2.0))
                except Exception:
                    # Fail fast on a worker that died without reporting
                    # (OOM-kill, segfault): its except-clause never ran, so
                    # nothing will ever arrive for it on the queue.
                    dead = sorted(
                        index for index, process in enumerate(processes)
                        if index not in reports and not process.is_alive())
                    if dead:
                        # Drain reports still in flight from workers that
                        # reported and then exited before declaring anyone
                        # silently dead.
                        try:
                            while True:
                                index, report = results_queue.get_nowait()
                                reports[index] = report
                        except Exception:
                            pass
                        dead = [index for index in dead
                                if index not in reports]
                    if dead:
                        codes = {index: processes[index].exitcode
                                 for index in dead}
                        raise LiveClusterError(
                            f"live node process(es) died without reporting "
                            f"(index: exit code) {codes}") from None
                    continue
                reports[index] = report
        finally:
            for process in processes:
                process.join(timeout=10.0)
            for process in processes:
                if process.is_alive():   # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5.0)

        failures = {index: report for index, report in reports.items()
                    if "error" in report}
        if failures:
            detail = "; ".join(
                f"node {report['address']}: {report['error']}"
                for _, report in sorted(failures.items()))
            tb = next(iter(failures.values())).get("traceback", "")
            raise LiveClusterError(
                f"{len(failures)}/{config.nodes} live nodes failed — "
                f"{detail}\nfirst traceback:\n{tb}")

        return self._aggregate([reports[i] for i in range(config.nodes)])

    # ------------------------------------------------------------ aggregation
    def _aggregate(self, per_node: list[dict]) -> LiveClusterResult:
        """Score exactly as the scenario engine's WorkloadObservations does:
        ``deliveries`` counts deduped (receiver, seqno) upcalls, and
        ``success_ratio`` is distinct probes delivered *anywhere* over probes
        sent — so a live run and a simulated run of one spec are read off
        the same ruler."""
        config = self.config
        sent = sum(report["sent"] for report in per_node)
        deliveries = sum(report["delivered"] for report in per_node)
        delivered_anywhere: set[int] = set()
        latencies: list[float] = []
        for report in per_node:
            delivered_anywhere.update(report["delivered_seqnos"])
            latencies.extend(report["latencies"])
        metrics: dict[str, float] = {
            "workload.sent": float(sent),
            "workload.deliveries": float(deliveries),
            "workload.duplicates": float(sum(
                report["duplicates"] for report in per_node)),
            "workload.success_ratio":
                len(delivered_anywhere) / sent if sent else 0.0,
            "workload.latency_mean": mean(latencies),
            "workload.latency_p95": percentile(latencies, 0.95),
            "nodes.count": float(config.nodes),
            "nodes.joined": float(sum(
                1 for report in per_node if report["state"] != "init")),
            "nodes.callback_errors": float(sum(
                report["callback_error_count"] for report in per_node)),
            "sim.events_processed": float(sum(
                report["events_processed"] for report in per_node)),
            "transport.messages_sent": float(sum(
                report["transport"]["messages_sent"] for report in per_node)),
            "transport.retransmissions": float(sum(
                report["transport"]["retransmissions"] for report in per_node)),
            "socket.decode_errors": float(sum(
                report["socket"]["decode_errors"] for report in per_node)),
        }
        if config.workload == "kv":
            # success_ratio already reads as quorum success (distinct
            # completed ops over ops issued); add the consistency metrics
            # that are sound across processes.  Staleness needs a
            # strictly-before clock, which wall clocks across processes do
            # not give us, so live reports the version-space checks only.
            records = []
            issued_writes: set[tuple[int, int]] = set()
            stores = []
            for report in per_node:
                records.extend(report["kv"]["records"])
                issued_writes.update(
                    (key, version)
                    for key, version in report["kv"]["issued_writes"])
                stores.append(dict(report["kv"]["store"]))
            reads = [(key, version) for _, kind, key, version, _ in records
                     if kind == 1]
            metrics["workload.completed"] = float(len(records))
            metrics["workload.puts"] = float(sum(
                1 for _, kind, *_ in records if kind == 0))
            metrics["workload.gets"] = float(len(reads))
            metrics["workload.quorum_success"] = \
                metrics["workload.success_ratio"]
            metrics["workload.phantom_reads"] = float(
                phantom_reads(reads, issued_writes))
            latest_writes: dict[int, int] = {}
            for key, version in issued_writes:
                latest_writes[key] = max(latest_writes.get(key, -1), version)
            metrics["workload.replica_coverage"] = replica_coverage(
                stores, latest_writes, config.kv_replicas)
        elif config.workload == "pubsub":
            expected = sent * max(config.nodes - 1, 0)
            metrics["workload.expected"] = float(expected)
            metrics["workload.coverage"] = \
                deliveries / expected if expected else 0.0
        rings = [report["ring"] for report in per_node if "ring" in report]
        if len(rings) == len(per_node) and rings:
            membership = [(ring["my_key"], report["address"])
                          for ring, report in zip(rings, per_node)]
            successors = {report["address"]: ring["successor"]
                          for ring, report in zip(rings, per_node)}
            metrics["ring.correct_successor_fraction"] = \
                correct_successor_fraction(membership, successors)
        result = ScenarioResult(
            name=f"live-{config.protocol}-{config.workload}",
            seed=config.seed,
            duration=config.duration,
            metrics=metrics,
            series={},
            events=[],
            experiment=None,
        )
        return LiveClusterResult(result=result, per_node=per_node)
