"""Live fault directives: the scenario fault vocabulary on wall-clock.

The scenario engine compiles :class:`~repro.eval.scenario.ScenarioModel`
fault models onto the simulator timeline; this module compiles the same
models onto a :class:`~repro.live.cluster.LiveClusterConfig` wall-clock
schedule as *live fault directives* — small frozen dataclasses the cluster
coordinator executes for real:

* :class:`KillNode` — a real ``SIGKILL`` of the node's OS process, with an
  optional supervised respawn (the respawned process re-enters through the
  transport restart-epoch machinery);
* :class:`PartitionFault` — host-group partition rules installed in every
  node's :class:`~repro.transport.udp.SocketFaults` table over the
  coordinator control channel;
* :class:`LinkCut` — targeted (optionally one-way) cuts between node pairs;
* :class:`DegradeFault` — per-peer delay/loss rules standing in for the
  emulator's bandwidth/latency degradation.

Times are offsets from the cluster's barrier-aligned clock zero.  Because a
live run compresses a multi-minute simulated timeline into a few wall-clock
seconds, :func:`compile_fault_models` rescales model times linearly onto the
live workload window (join wave and settle excluded) and floors the rescaled
downtimes so a respawn is a real outage, not a scheduling artifact.  Victim
sampling draws from ``random.Random(f"{seed}:live-faults")`` — reproducible
per seed, though not the same victims the simulator samples (the
differential harness compares metric distributions, not event logs).

Models that need the emulated underlay (link-level cuts and degradation,
rack-correlated crashes) have no live mapping and raise
:class:`LiveFaultError`; :func:`live_runnable` turns that into the tag the
fuzzer stamps on generated specs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple, Union

#: One simulated latency-factor unit maps to this many seconds of added
#: one-way delay on a degraded node's access link (localhost has no
#: meaningful base RTT to scale, so the unit is declared, not measured).
DEGRADE_DELAY_UNIT = 0.02

#: Ceilings keeping rescaled degradation survivable on a compressed
#: timeline: more delay than this stalls reliable windows for the whole
#: (short) live run, reporting transport collapse instead of degradation.
MAX_DEGRADE_DELAY = 0.25
MAX_DEGRADE_LOSS = 0.75

#: Floors for rescaled outage/heal spans (seconds): a respawn needs real
#: process-boot time, and a partition shorter than a few RTTs is noise.
MIN_DOWNTIME = 1.0
MIN_HEAL_SPAN = 0.5


class LiveFaultError(RuntimeError):
    """A scenario fault model has no live (real-socket) equivalent."""


@dataclass(frozen=True)
class KillNode:
    """SIGKILL node *index* at *at*; respawn ``respawn_after`` seconds later
    (None = the node stays down for the rest of the run)."""

    at: float
    index: int
    respawn_after: Optional[float] = None

    @property
    def end(self) -> float:
        return self.at + (self.respawn_after or 0.0)


@dataclass(frozen=True)
class PartitionFault:
    """Host-group partition (node indices) installed at *at*, healed
    ``heal_after`` seconds later (None = never)."""

    at: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_after: Optional[float] = None

    @property
    def end(self) -> float:
        return self.at + (self.heal_after or 0.0)


@dataclass(frozen=True)
class LinkCut:
    """Cut traffic between node-index pairs (``one_way``: only the
    ``u -> v`` direction), healed ``heal_after`` seconds later."""

    at: float
    pairs: Tuple[Tuple[int, int], ...]
    one_way: bool = False
    heal_after: Optional[float] = None

    @property
    def end(self) -> float:
        return self.at + (self.heal_after or 0.0)


@dataclass(frozen=True)
class DegradeFault:
    """Degrade the access links of the given node indices: arrivals from
    (and to) them gain *delay* seconds and *loss* drop probability."""

    at: float
    indices: Tuple[int, ...]
    delay: float = 0.0
    loss: float = 0.0
    restore_after: Optional[float] = None

    @property
    def end(self) -> float:
        return self.at + (self.restore_after or 0.0)


LiveFault = Union[KillNode, PartitionFault, LinkCut, DegradeFault]


def fault_horizon(faults) -> float:
    """Offset of the last scheduled fault transition (0.0 for no faults).

    Post-fault accounting (the "recovers after the settle window" gate)
    starts here; a kill with no respawn still ends at its kill time — the
    membership change is instantaneous even if the outage is permanent.
    """
    return max((fault.end for fault in faults), default=0.0)


def _sample_indices(num_nodes: int, exempt, fraction: float,
                    rng: random.Random) -> list[int]:
    exempt_set = set(exempt)
    candidates = [i for i in range(num_nodes) if i not in exempt_set]
    count = min(len(candidates), round(fraction * len(candidates)))
    return sorted(rng.sample(candidates, count))


def _check_indices(indices, num_nodes: int, what: str) -> list[int]:
    out = []
    for index in indices:
        index = int(index)
        if not 0 <= index < num_nodes:
            raise LiveFaultError(
                f"{what} index {index} out of range for {num_nodes} nodes")
        out.append(index)
    return out


def compile_fault_models(spec, config) -> Tuple[LiveFault, ...]:
    """Compile *spec*'s fault models onto *config*'s wall-clock schedule.

    Model times (sim seconds in ``[0, spec.duration]``) map linearly onto
    the live workload window ``[config.workload_start, config.duration]``;
    spans (downtime, heal delays) scale by the same factor with floors (see
    module docstring).  Join scheduling is *not* compiled — the live join
    wave replaces it, exactly as the facade replaces the workload model's
    ``start``/``gap`` timing.

    Raises :class:`LiveFaultError` for models with no live equivalent.
    """
    from ..eval.scenario import (ChurnModel, CorrelatedCrashModel,
                                 CrashModel, DegradeModel,
                                 FlappingPartitionModel, FlashCrowdModel,
                                 GroupModel, PartitionModel, WorkloadModel)

    rng = random.Random(f"{config.seed}:live-faults")
    num_nodes = config.nodes
    window = config.duration - config.workload_start
    scale = window / float(spec.duration)

    def map_at(t: float) -> float:
        t = min(max(float(t), 0.0), float(spec.duration))
        return round(min(config.workload_start + t * scale,
                         config.duration - 0.25), 3)

    def map_span(span: float, floor: float) -> float:
        return round(max(floor, float(span) * scale), 3)

    faults: list[LiveFault] = []
    for model in spec.models:
        if isinstance(model, (WorkloadModel, GroupModel)):
            continue   # the live workload/group choreography covers these
        if isinstance(model, ChurnModel):
            if model.churn_fraction <= 0:
                continue   # pure join schedule: replaced by the join wave
            victims = _sample_indices(num_nodes, model.exempt,
                                      model.churn_fraction, rng)
            downtime = (map_span(model.downtime, MIN_DOWNTIME)
                        if model.rejoin else None)
            start = map_at(model.churn_start)
            end_src = (model.churn_end if model.churn_end is not None
                       else spec.duration)
            end = max(start, map_at(end_src) - (downtime or 0.0))
            for index in victims:
                at = round(rng.uniform(start, end), 3)
                faults.append(KillNode(at=at, index=index,
                                       respawn_after=downtime))
        elif isinstance(model, CrashModel):
            if model.victims:
                victims = _check_indices(model.victims, num_nodes,
                                         "crash victim")
            else:
                victims = _sample_indices(num_nodes, model.exempt,
                                          model.fraction, rng)
            respawn = (map_span(model.recover_after, MIN_DOWNTIME)
                       if model.recover_after is not None else None)
            at = map_at(model.at)
            for index in victims:
                faults.append(KillNode(at=at, index=index,
                                       respawn_after=respawn))
        elif isinstance(model, PartitionModel):
            if model.links:
                raise LiveFaultError(
                    "link-level partition cuts need the emulated underlay; "
                    "live mode supports host groups only")
            groups = tuple(tuple(_check_indices(group, num_nodes,
                                                "partition member"))
                           for group in model.groups)
            heal = (map_span(model.heal_after, MIN_HEAL_SPAN)
                    if model.heal_after is not None else None)
            faults.append(PartitionFault(at=map_at(model.at), groups=groups,
                                         heal_after=heal))
        elif isinstance(model, FlappingPartitionModel):
            if model.links:
                raise LiveFaultError(
                    "flapping link cuts need the emulated underlay; live "
                    "mode flaps host groups only")
            groups = tuple(tuple(_check_indices(group, num_nodes,
                                                "partition member"))
                           for group in model.groups)
            period = map_span(model.period, 2 * MIN_HEAL_SPAN)
            cut_span = max(MIN_HEAL_SPAN, model.duty * period)
            first = map_at(model.at)
            for cycle in range(model.cycles):
                at = round(first + cycle * period, 3)
                if at >= config.duration - 0.25:
                    break   # cycles past the live horizon never fire
                faults.append(PartitionFault(at=at, groups=groups,
                                             heal_after=cut_span))
        elif isinstance(model, DegradeModel):
            if model.links:
                raise LiveFaultError(
                    "link-level degradation needs the emulated underlay; "
                    "live mode degrades host access links only")
            if model.hosts:
                chosen = _check_indices(model.hosts, num_nodes,
                                        "degraded host")
            else:
                chosen = _sample_indices(num_nodes, model.exempt,
                                         model.host_fraction, rng)
            if not chosen:
                continue
            delay = min(MAX_DEGRADE_DELAY,
                        (model.latency_factor - 1.0) * DEGRADE_DELAY_UNIT)
            loss = min(MAX_DEGRADE_LOSS,
                       max(0.0, 1.0 - model.bandwidth_factor))
            restore = (map_span(model.restore_after, MIN_HEAL_SPAN)
                       if model.restore_after is not None else None)
            faults.append(DegradeFault(at=map_at(model.at),
                                       indices=tuple(chosen),
                                       delay=round(delay, 4),
                                       loss=round(loss, 4),
                                       restore_after=restore))
        elif isinstance(model, FlashCrowdModel):
            if model.stay is not None:
                raise LiveFaultError(
                    "flash-crowd mass departure is sim-only (the live join "
                    "wave replaces the crowd's arrival, but departures "
                    "would need per-node leave scheduling)")
            continue   # the live join wave replaces the burst schedule
        elif isinstance(model, CorrelatedCrashModel):
            raise LiveFaultError(
                "rack-correlated crashes need the emulated topology's "
                "attachment groups; live localhost nodes have none")
        else:
            raise LiveFaultError(
                f"no live mapping for {type(model).__name__}")
    return tuple(sorted(faults, key=lambda fault: (fault.at, repr(fault))))


def live_runnable(spec) -> Tuple[bool, Optional[str]]:
    """Is *spec* runnable as a live deployment?  Returns ``(ok, reason)``.

    A spec is live-runnable when its protocol is one the live registry can
    boot, it carries a workload, and every fault model compiles onto
    wall-clock — the tag the fuzzer stamps on generated specs so the
    differential harness can consume fuzzer artifacts.
    """
    from ..eval.scenario import WorkloadModel
    from ..facade import _LIVE_PROTOCOLS
    from ..eval.fuzz import protocol_name_of
    from .cluster import LiveClusterConfig, LiveClusterError

    try:
        name = protocol_name_of(spec)
    except Exception as exc:   # noqa: BLE001 - unknown factory shapes
        return False, f"protocol not resolvable: {exc}"
    if name not in _LIVE_PROTOCOLS:
        return False, (f"protocol {name!r} has no live deployment "
                       f"(not a compiled .mac specification)")
    if not any(isinstance(model, WorkloadModel) for model in spec.models):
        return False, "no WorkloadModel to drive live traffic"
    try:
        probe = LiveClusterConfig(
            nodes=spec.num_nodes, protocol=_LIVE_PROTOCOLS[name],
            seed=spec.seed,
            duration=spec.num_nodes * 0.15 + 1.0 + 10.0)
        compile_fault_models(spec, probe)
    except (LiveFaultError, LiveClusterError) as exc:
        return False, str(exc)
    return True, None
