"""Network topology generation.

The paper evaluates overlays over 20,000-node INET topologies emulated with
ModelNet, plus an 8-site Internet-like topology reconstructed from the NICE
SIGCOMM paper.  This module builds equivalent router-level topologies as
``networkx`` graphs annotated with per-link latency and bandwidth, and marks a
set of *client* nodes where overlay hosts attach.

Two generators are provided:

* :func:`transit_stub_topology` — a hierarchical transit-stub graph in the
  spirit of GT-ITM / INET: a small core of well-connected transit routers,
  each with several stub domains hanging off it.  Core links are fast and
  long; stub links are slower and short; client access links are slowest.
* :func:`multi_site_topology` — a handful of "sites" (campuses) connected by
  wide-area links with configurable inter-site latencies, used to reconstruct
  the NICE evaluation topology for Figures 8 and 9.

Topologies are deterministic functions of their seed.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

#: Graph attribute names used throughout the emulator.
LATENCY_ATTR = "latency"      # one-way propagation delay, seconds
BANDWIDTH_ATTR = "bandwidth"  # bytes per second
ROLE_ATTR = "role"            # "transit" | "stub" | "client"


class TopologyError(ValueError):
    """Raised when a topology request cannot be satisfied."""


@dataclass
class LinkProfile:
    """Latency/bandwidth ranges for one class of link."""

    latency_range: tuple[float, float]
    bandwidth: float

    def sample_latency(self, rng: random.Random) -> float:
        low, high = self.latency_range
        return rng.uniform(low, high)


@dataclass
class TopologyProfile:
    """Tunable knobs of the transit-stub generator.

    Defaults approximate wide-area Internet characteristics: tens of
    milliseconds across the core, a few milliseconds inside a stub domain, and
    megabit-class client access links (the regime in which the paper's
    SplitStream experiments are bandwidth-limited).
    """

    transit_link: LinkProfile = field(
        default_factory=lambda: LinkProfile((0.010, 0.040), 1_250_000_000.0)
    )
    stub_link: LinkProfile = field(
        default_factory=lambda: LinkProfile((0.002, 0.010), 125_000_000.0)
    )
    client_link: LinkProfile = field(
        default_factory=lambda: LinkProfile((0.0005, 0.0030), 1_250_000.0)
    )

    def scaled_client_bandwidth(self, bandwidth: float) -> "TopologyProfile":
        """A copy of this profile with a different client access bandwidth."""
        return TopologyProfile(
            transit_link=self.transit_link,
            stub_link=self.stub_link,
            client_link=LinkProfile(self.client_link.latency_range, bandwidth),
        )


@dataclass
class Topology:
    """A generated topology: the router graph plus the list of client nodes."""

    graph: nx.Graph
    clients: list[int]
    name: str = "topology"
    #: Optional mapping of client node -> site index (used by multi-site topologies).
    client_sites: dict[int, int] = field(default_factory=dict)

    @property
    def num_routers(self) -> int:
        return sum(1 for _, data in self.graph.nodes(data=True)
                   if data.get(ROLE_ATTR) != "client")

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def validate(self) -> None:
        """Sanity-check link annotations and connectivity."""
        if not nx.is_connected(self.graph):
            raise TopologyError(f"topology {self.name!r} is not connected")
        for u, v, data in self.graph.edges(data=True):
            if LATENCY_ATTR not in data or data[LATENCY_ATTR] <= 0:
                raise TopologyError(f"edge {u}-{v} missing positive latency")
            if BANDWIDTH_ATTR not in data or data[BANDWIDTH_ATTR] <= 0:
                raise TopologyError(f"edge {u}-{v} missing positive bandwidth")
        missing = [c for c in self.clients if c not in self.graph]
        if missing:
            raise TopologyError(f"clients {missing} not present in graph")


def _add_link(graph: nx.Graph, u: int, v: int, profile: LinkProfile,
              rng: random.Random) -> None:
    graph.add_edge(u, v, **{
        LATENCY_ATTR: profile.sample_latency(rng),
        BANDWIDTH_ATTR: profile.bandwidth,
    })


def transit_stub_topology(
    num_clients: int,
    *,
    transit_routers: int = 10,
    stubs_per_transit: int = 4,
    routers_per_stub: int = 4,
    extra_transit_edges: int = 6,
    profile: Optional[TopologyProfile] = None,
    seed: int = 0,
    name: str = "transit-stub",
) -> Topology:
    """Generate a transit-stub topology with *num_clients* client hosts.

    The transit core is a ring plus random chords (so there is path diversity
    but the graph stays sparse).  Each transit router anchors
    ``stubs_per_transit`` stub domains; each stub domain is a small clique of
    ``routers_per_stub`` routers.  Clients attach to stub routers round-robin.
    """
    if num_clients <= 0:
        raise TopologyError("num_clients must be positive")
    if transit_routers < 3:
        raise TopologyError("need at least 3 transit routers")
    profile = profile or TopologyProfile()
    rng = random.Random(seed)
    graph = nx.Graph()
    counter = itertools.count()

    transit = [next(counter) for _ in range(transit_routers)]
    for node in transit:
        graph.add_node(node, **{ROLE_ATTR: "transit"})
    # Transit ring.
    for i, node in enumerate(transit):
        _add_link(graph, node, transit[(i + 1) % len(transit)],
                  profile.transit_link, rng)
    # Random chords across the core.
    for _ in range(extra_transit_edges):
        u, v = rng.sample(transit, 2)
        if not graph.has_edge(u, v):
            _add_link(graph, u, v, profile.transit_link, rng)

    stub_routers: list[int] = []
    for t in transit:
        for _ in range(stubs_per_transit):
            members = [next(counter) for _ in range(routers_per_stub)]
            for node in members:
                graph.add_node(node, **{ROLE_ATTR: "stub"})
            # Stub domain internal mesh (small clique keeps intra-stub paths short).
            for u, v in itertools.combinations(members, 2):
                _add_link(graph, u, v, profile.stub_link, rng)
            # Uplink from one stub router to its transit router.
            _add_link(graph, members[0], t, profile.transit_link, rng)
            stub_routers.extend(members)

    clients: list[int] = []
    for i in range(num_clients):
        attach = stub_routers[i % len(stub_routers)]
        client = next(counter)
        graph.add_node(client, **{ROLE_ATTR: "client"})
        _add_link(graph, client, attach, profile.client_link, rng)
        clients.append(client)

    topology = Topology(graph=graph, clients=clients, name=name)
    topology.validate()
    return topology


def multi_site_topology(
    members_per_site: Sequence[int],
    *,
    inter_site_latency_ms: Optional[Sequence[Sequence[float]]] = None,
    intra_site_latency_ms: float = 1.0,
    site_bandwidth: float = 12_500_000.0,
    access_bandwidth: float = 1_250_000.0,
    seed: int = 0,
    name: str = "multi-site",
) -> Topology:
    """Generate a multi-site (campus-style) topology.

    Each site has a gateway router and ``members_per_site[i]`` client hosts on
    a local LAN.  Sites are fully meshed with wide-area links whose latencies
    come from *inter_site_latency_ms* (a symmetric matrix in milliseconds); if
    omitted, latencies are drawn uniformly from 5–40 ms, the range reported in
    the NICE evaluation.
    """
    num_sites = len(members_per_site)
    if num_sites < 2:
        raise TopologyError("need at least two sites")
    rng = random.Random(seed)
    if inter_site_latency_ms is None:
        matrix = [[0.0] * num_sites for _ in range(num_sites)]
        for i in range(num_sites):
            for j in range(i + 1, num_sites):
                matrix[i][j] = matrix[j][i] = rng.uniform(5.0, 40.0)
        inter_site_latency_ms = matrix
    else:
        if len(inter_site_latency_ms) != num_sites:
            raise TopologyError("latency matrix does not match number of sites")

    graph = nx.Graph()
    counter = itertools.count()
    gateways = []
    for site in range(num_sites):
        gateway = next(counter)
        graph.add_node(gateway, **{ROLE_ATTR: "transit"})
        gateways.append(gateway)
    for i in range(num_sites):
        for j in range(i + 1, num_sites):
            latency = inter_site_latency_ms[i][j] / 1000.0
            if latency <= 0:
                raise TopologyError(f"non-positive inter-site latency between {i} and {j}")
            graph.add_edge(gateways[i], gateways[j], **{
                LATENCY_ATTR: latency,
                BANDWIDTH_ATTR: site_bandwidth,
            })

    clients: list[int] = []
    client_sites: dict[int, int] = {}
    for site, count in enumerate(members_per_site):
        for _ in range(count):
            client = next(counter)
            graph.add_node(client, **{ROLE_ATTR: "client"})
            graph.add_edge(client, gateways[site], **{
                LATENCY_ATTR: intra_site_latency_ms / 1000.0,
                BANDWIDTH_ATTR: access_bandwidth,
            })
            clients.append(client)
            client_sites[client] = site

    topology = Topology(graph=graph, clients=clients, name=name,
                        client_sites=client_sites)
    topology.validate()
    return topology


def dumbbell_topology(
    clients_per_side: int = 2,
    *,
    bottleneck_bandwidth: float = 125_000.0,
    bottleneck_latency_ms: float = 20.0,
    access_bandwidth: float = 1_250_000.0,
    access_latency_ms: float = 1.0,
    name: str = "dumbbell",
) -> Topology:
    """A classic dumbbell: two access routers joined by one bottleneck link.

    Used by the transport tests to exercise congestion, queueing, and loss on
    a single well-understood bottleneck.
    """
    if clients_per_side <= 0:
        raise TopologyError("clients_per_side must be positive")
    graph = nx.Graph()
    left, right = 0, 1
    graph.add_node(left, **{ROLE_ATTR: "transit"})
    graph.add_node(right, **{ROLE_ATTR: "transit"})
    graph.add_edge(left, right, **{
        LATENCY_ATTR: bottleneck_latency_ms / 1000.0,
        BANDWIDTH_ATTR: bottleneck_bandwidth,
    })
    clients = []
    next_id = 2
    for side, router in ((0, left), (1, right)):
        for _ in range(clients_per_side):
            client = next_id
            next_id += 1
            graph.add_node(client, **{ROLE_ATTR: "client"})
            graph.add_edge(client, router, **{
                LATENCY_ATTR: access_latency_ms / 1000.0,
                BANDWIDTH_ATTR: access_bandwidth,
            })
            clients.append(client)
    topology = Topology(graph=graph, clients=clients, name=name)
    topology.validate()
    return topology
