"""Packets carried by the emulated network.

A packet is the unit the emulator queues, delays, and drops.  The payload is
opaque to the network layer — transports put their own segments inside — but
the size in bytes is what drives transmission delay and queue occupancy, as in
a hop-by-hop emulator such as ModelNet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Fixed per-packet header overhead (IP + transport headers), in bytes.
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A network-layer packet in flight between two hosts."""

    src: int
    dst: int
    payload: Any
    size: int
    protocol: str = "udp"
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    #: Filled in by the emulator: topology path the packet followed.
    path: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet payload size cannot be negative")

    @property
    def wire_size(self) -> int:
        """Bytes the packet occupies on a link (payload plus headers)."""
        return self.size + HEADER_BYTES

    def copy_for_retransmit(self) -> "Packet":
        """A fresh packet (new id, zero hops) carrying the same payload."""
        return Packet(
            src=self.src,
            dst=self.dst,
            payload=self.payload,
            size=self.size,
            protocol=self.protocol,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} proto={self.protocol} "
            f"size={self.size})"
        )
