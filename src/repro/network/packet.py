"""Packets carried by the emulated network.

A packet is the unit the emulator queues, delays, and drops.  The payload is
opaque to the network layer — transports put their own segments inside — but
the size in bytes is what drives transmission delay and queue occupancy, as in
a hop-by-hop emulator such as ModelNet.

``Packet`` is allocated once per simulated packet, so it is a flat
``__slots__`` class; ``wire_size`` is precomputed at construction because the
emulator reads it once per hop.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Fixed per-packet header overhead (IP + transport headers), in bytes.
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


class Packet:
    """A network-layer packet in flight between two hosts."""

    __slots__ = ("src", "dst", "payload", "size", "protocol", "created_at",
                 "packet_id", "hops", "path", "wire_size", "trace_id",
                 "trace_hop")

    def __init__(self, src: int, dst: int, payload: Any, size: int,
                 protocol: str = "udp", created_at: float = 0.0,
                 packet_id: Optional[int] = None, hops: int = 0,
                 path: Optional[tuple[int, ...]] = None,
                 trace_id: Optional[int] = None, trace_hop: int = 0) -> None:
        if size < 0:
            raise ValueError("packet payload size cannot be negative")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.protocol = protocol
        self.created_at = created_at
        self.packet_id = packet_id if packet_id is not None else next(_packet_ids)
        self.hops = hops
        #: Filled in by the emulator: topology path the packet followed.
        self.path = path
        #: Bytes the packet occupies on a link (payload plus headers).
        self.wire_size = size + HEADER_BYTES
        #: Causal tracing (``repro.obs``): id of the request this packet
        #: belongs to and its hop index along the route.  ``None`` unless a
        #: causal tap tagged the packet; carried intact through the sharded
        #: kernel's cross-shard pickle.
        self.trace_id = trace_id
        self.trace_hop = trace_hop

    def copy_for_retransmit(self) -> "Packet":
        """A fresh packet (new id, zero hops) carrying the same payload."""
        return Packet(
            src=self.src,
            dst=self.dst,
            payload=self.payload,
            size=self.size,
            protocol=self.protocol,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} proto={self.protocol} "
            f"size={self.size})"
        )
