"""Global IP routing over the emulated topology.

The emulator routes every packet along the latency-weighted shortest path
between the source and destination attachment routers, the same policy a
ModelNet core applies.  Routes are computed lazily (single-source Dijkstra per
distinct source router) and cached, which keeps large topologies affordable.

On top of the per-source Dijkstra cache sits a per-(src, dst) **route plan**
cache: one :class:`RoutePlan` holding the resolved node path, directed edge
list, end-to-end propagation latency, hop count, and bottleneck bandwidth.
Every query method (:meth:`Router.path`, :meth:`Router.latency`,
:meth:`Router.hop_count`, :meth:`Router.bottleneck_bandwidth`) reads the plan,
so repeated queries for the same pair — the per-packet common case — cost one
dict lookup instead of re-walking Dijkstra output.

The router is also the component the evaluation framework queries for *global*
information — direct IP latency between any two hosts and the underlay path a
packet takes — which the paper highlights as necessary for metrics such as
latency stretch, relative delay penalty, and link stress.

Fault injection (the scenario engine's link-cut and partition models) goes
through :meth:`Router.disable_edge` / :meth:`Router.enable_edge`.  Disabling
an edge performs **targeted** invalidation instead of a full rebuild: only
single-source Dijkstra entries whose shortest-path tree uses the edge, and
only cached plans whose path traverses it, are dropped — every other cached
plan is provably still optimal, because removing an edge can only lengthen
paths that used it.  Re-enabling an edge is the opposite situation (a new
edge can shorten *any* path), so it falls back to a full invalidation; heals
are rare next to the per-packet plan lookups the targeted path protects.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

from .topology import BANDWIDTH_ATTR, LATENCY_ATTR, Topology


class RoutingError(RuntimeError):
    """Raised when no route exists between two attachment points."""


class RoutePlan:
    """Resolved route between one (src, dst) router pair.

    ``latency`` is the Dijkstra distance (not a re-summation of edge weights),
    so it is bit-identical to what the shortest-path search reported.  The
    bottleneck bandwidth is computed lazily on first access — most plans are
    built by the packet send path, which never reads it.
    """

    __slots__ = ("path", "edges", "latency", "hop_count", "_bottleneck")

    def __init__(self, path: tuple[int, ...], edges: tuple[tuple[int, int], ...],
                 latency: float) -> None:
        self.path = path
        self.edges = edges
        self.latency = latency
        self.hop_count = len(edges)
        self._bottleneck: Optional[float] = None


class Router:
    """Latency-weighted shortest-path routing with per-source caching."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._graph = topology.graph
        # Flat adjacency (node -> [(neighbour, latency), ...]) built lazily
        # from the graph; Dijkstra over this is several times faster than
        # going through networkx per-edge attribute access.
        self._adjacency: Optional[dict[int, list[tuple[int, float]]]] = None
        # Cache of single-source Dijkstra results: source -> (dist, pred).
        self._sssp_cache: dict[int, tuple[dict[int, float], dict[int, Optional[int]]]] = {}
        # Cache of resolved plans: (src, dst) -> RoutePlan.
        self._plan_cache: dict[tuple[int, int], RoutePlan] = {}
        # Callbacks fired by invalidate(); components that cache resolved
        # routes derived from this router (the emulator) register here so a
        # router-level invalidation cannot leave them holding stale plans.
        self._invalidation_listeners: list[Callable[[], None]] = []
        # Callbacks fired by disable_edge() with the (u, v) edge, so plan
        # caches one layer up can prune only the affected entries.
        self._edge_listeners: list[Callable[[int, int], None]] = []
        # Currently disabled undirected edges, stored in both orders so the
        # adjacency filter is one set lookup per directed edge.
        self._disabled_edges: set[tuple[int, int]] = set()

    @property
    def topology(self) -> Topology:
        return self._topology

    # ----------------------------------------------------------------- paths
    def _adj(self) -> dict[int, list[tuple[int, float]]]:
        adjacency = self._adjacency
        if adjacency is None:
            disabled = self._disabled_edges
            if disabled:
                adjacency = self._adjacency = {
                    node: [(neighbour, data[LATENCY_ATTR])
                           for neighbour, data in neighbours.items()
                           if (node, neighbour) not in disabled]
                    for node, neighbours in self._graph.adj.items()
                }
            else:
                adjacency = self._adjacency = {
                    node: [(neighbour, data[LATENCY_ATTR])
                           for neighbour, data in neighbours.items()]
                    for node, neighbours in self._graph.adj.items()
                }
        return adjacency

    def _dijkstra(self, source: int) -> tuple[dict[int, float], dict[int, Optional[int]]]:
        """Single-source shortest paths over the flat adjacency.

        Replicates networkx's ``_dijkstra_multisource`` exactly — same float
        accumulation (``dist[v] + edge_latency``), same insertion-counter tie
        breaking, same first-seen-wins behaviour on equal distances — so the
        distances and predecessor choices are bit-identical to what earlier
        revisions obtained through networkx.  That equivalence is what keeps
        fixed-seed experiment metrics stable across the fast path, and is
        pinned by tests/network/test_topology_router.py.
        """
        adjacency = self._adj()
        if source not in adjacency:
            raise RoutingError(f"source {source} not in topology")
        dist: dict[int, float] = {}
        pred: dict[int, Optional[int]] = {source: None}
        seen: dict[int, float] = {source: 0}
        seen_get = seen.get
        tie = 0
        fringe: list[tuple[float, int, int]] = [(0, tie, source)]
        while fringe:
            d, _, v = heappop(fringe)
            if v in dist:
                continue
            dist[v] = d
            for u, edge_latency in adjacency[v]:
                if u in dist:
                    continue
                vu_dist = d + edge_latency
                seen_u = seen_get(u)
                if seen_u is None or vu_dist < seen_u:
                    seen[u] = vu_dist
                    tie += 1
                    heappush(fringe, (vu_dist, tie, u))
                    pred[u] = v
        return dist, pred

    def _sssp(self, source: int) -> tuple[dict[int, float], dict[int, Optional[int]]]:
        cached = self._sssp_cache.get(source)
        if cached is None:
            cached = self._dijkstra(source)
            self._sssp_cache[source] = cached
        return cached

    def plan(self, src_node: int, dst_node: int) -> RoutePlan:
        """The cached :class:`RoutePlan` from *src_node* to *dst_node*."""
        key = (src_node, dst_node)
        cached = self._plan_cache.get(key)
        if cached is None:
            cached = self._build_plan(src_node, dst_node)
            self._plan_cache[key] = cached
        return cached

    def _build_plan(self, src_node: int, dst_node: int) -> RoutePlan:
        if src_node == dst_node:
            return RoutePlan((src_node,), (), 0.0)
        dist, pred = self._sssp(src_node)
        latency = dist.get(dst_node)
        if latency is None:
            raise RoutingError(f"no route from {src_node} to {dst_node}")
        nodes = [dst_node]
        node: Optional[int] = pred[dst_node]
        while node is not None:
            nodes.append(node)
            node = pred[node]
        nodes.reverse()
        path = tuple(nodes)
        edges = tuple(zip(path[:-1], path[1:]))
        return RoutePlan(path, edges, latency)

    def path(self, src_node: int, dst_node: int) -> list[int]:
        """Topology path (list of router ids) from *src_node* to *dst_node*."""
        return list(self.plan(src_node, dst_node).path)

    def latency(self, src_node: int, dst_node: int) -> float:
        """One-way propagation latency of the shortest path, in seconds."""
        return self.plan(src_node, dst_node).latency

    def path_edges(self, src_node: int, dst_node: int) -> list[tuple[int, int]]:
        """The directed edges traversed along the path."""
        return list(self.plan(src_node, dst_node).edges)

    def bottleneck_bandwidth(self, src_node: int, dst_node: int) -> float:
        """Minimum link bandwidth along the path (bytes/second)."""
        plan = self.plan(src_node, dst_node)
        bottleneck = plan._bottleneck
        if bottleneck is None:
            if plan.edges:
                graph_edges = self._graph.edges
                bottleneck = min(graph_edges[u, v][BANDWIDTH_ATTR]
                                 for u, v in plan.edges)
            else:
                bottleneck = float("inf")
            plan._bottleneck = bottleneck
        return bottleneck

    def hop_count(self, src_node: int, dst_node: int) -> int:
        """Number of links on the latency-shortest path."""
        return self.plan(src_node, dst_node).hop_count

    def min_cross_latency(self, groups: "list[list[int]]") -> float:
        """Minimum shortest-path latency between nodes of *different* groups.

        The sharded kernel's lookahead: the conservative lockstep window must
        not exceed the fastest possible cross-shard packet, and propagation
        latency lower-bounds every delivery delay (queueing and transmission
        only add).  One multi-source Dijkstra per group — all of the group's
        nodes start at distance zero — with an early exit once the fringe
        distance exceeds the best cross answer found so far.  Returns ``inf``
        when no cross-group pair is reachable.
        """
        group_of: dict[int, int] = {}
        for index, members in enumerate(groups):
            for node in members:
                group_of[node] = index
        adjacency = self._adj()
        best = float("inf")
        for index, members in enumerate(groups):
            sources = [node for node in members if node in adjacency]
            if not sources:
                continue
            dist: dict[int, float] = {}
            fringe: list[tuple[float, int]] = []
            for source in sources:
                dist[source] = 0.0
                heappush(fringe, (0.0, source))
            while fringe:
                d, v = heappop(fringe)
                if d >= best:
                    break
                if d > dist.get(v, float("inf")):
                    continue
                other = group_of.get(v)
                if other is not None and other != index:
                    best = d
                    break
                for u, edge_latency in adjacency.get(v, ()):
                    vu_dist = d + edge_latency
                    if vu_dist < dist.get(u, float("inf")):
                        dist[u] = vu_dist
                        heappush(fringe, (vu_dist, u))
        return best

    # ------------------------------------------------------------ fault hooks
    @staticmethod
    def _plan_uses_edge(plan: RoutePlan, u: int, v: int) -> bool:
        """Whether *plan*'s path traverses the undirected edge (u, v)."""
        path = plan.path
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            if (a == u and b == v) or (a == v and b == u):
                return True
        return False

    def disable_edge(self, u: int, v: int) -> None:
        """Cut the undirected edge (u, v) with targeted cache invalidation.

        Only cached state that can have become stale is dropped:

        * single-source Dijkstra entries whose shortest-path *tree* uses the
          edge (``pred[v] is u`` or ``pred[u] is v``) — any route derived from
          them might have crossed the cut;
        * cached plans whose resolved path traverses the edge.

        Plans that avoid the edge remain shortest paths (removing an edge
        never shortens an alternative route), so they are kept — this is the
        "targeted invalidation, not full rebuild" contract the emulator's
        per-packet plan cache relies on during churny scenarios.
        Registered edge listeners are notified so downstream caches (the
        emulator's resolved-link plans) can prune the same way.  Idempotent.
        """
        if not self._graph.has_edge(u, v):
            raise RoutingError(f"cannot disable edge ({u}, {v}): not in topology")
        if (u, v) in self._disabled_edges:
            return
        self._disabled_edges.add((u, v))
        self._disabled_edges.add((v, u))
        adjacency = self._adjacency
        if adjacency is not None:
            adjacency[u] = [pair for pair in adjacency.get(u, ()) if pair[0] != v]
            adjacency[v] = [pair for pair in adjacency.get(v, ()) if pair[0] != u]
        for source in [s for s, (dist, pred) in self._sssp_cache.items()
                       if pred.get(v) == u or pred.get(u) == v]:
            del self._sssp_cache[source]
        for key in [k for k, plan in self._plan_cache.items()
                    if self._plan_uses_edge(plan, u, v)]:
            del self._plan_cache[key]
        for callback in self._edge_listeners:
            callback(u, v)

    def reweigh_edge(self, u: int, v: int, latency: float,
                     *, may_shorten: bool = False) -> None:
        """Change the undirected edge (u, v)'s routing weight at runtime.

        This is the routing half of link degradation.  With ``may_shorten``
        False (the edge got *slower*), invalidation is targeted exactly like
        :meth:`disable_edge`: a shortest-path tree that does not use the edge
        stays optimal when the edge lengthens, so only Dijkstra entries whose
        tree crosses it and plans whose path traverses it are dropped — and
        edge listeners are notified so the emulator prunes its resolved plans
        the same way.  With ``may_shorten`` True (restoration), the edge may
        now shorten *any* path, so this falls back to a full
        :meth:`invalidate`, mirroring :meth:`enable_edge`.
        """
        if not self._graph.has_edge(u, v):
            raise RoutingError(f"cannot reweigh edge ({u}, {v}): not in topology")
        self._graph[u][v][LATENCY_ATTR] = latency
        if may_shorten:
            self.invalidate()
            return
        adjacency = self._adjacency
        if adjacency is not None:
            adjacency[u] = [(n, latency if n == v else w)
                            for n, w in adjacency.get(u, ())]
            adjacency[v] = [(n, latency if n == u else w)
                            for n, w in adjacency.get(v, ())]
        for source in [s for s, (dist, pred) in self._sssp_cache.items()
                       if pred.get(v) == u or pred.get(u) == v]:
            del self._sssp_cache[source]
        for key in [k for k, plan in self._plan_cache.items()
                    if self._plan_uses_edge(plan, u, v)]:
            del self._plan_cache[key]
        for callback in self._edge_listeners:
            callback(u, v)

    def enable_edge(self, u: int, v: int) -> None:
        """Heal a previously cut edge.

        A restored edge can shorten any cached route, so this performs a full
        :meth:`invalidate` (which also notifies full-invalidation listeners).
        Idempotent for edges that are not currently disabled.
        """
        if (u, v) not in self._disabled_edges:
            return
        self._disabled_edges.discard((u, v))
        self._disabled_edges.discard((v, u))
        self.invalidate()

    def disabled_edges(self) -> set[tuple[int, int]]:
        """The currently cut edges, one canonical (min, max) tuple per edge."""
        return {(min(u, v), max(u, v)) for u, v in self._disabled_edges}

    def add_edge_invalidation_listener(
            self, callback: Callable[[int, int], None]) -> None:
        """Register *callback*\\(u, v) to run whenever an edge is disabled."""
        self._edge_listeners.append(callback)

    def add_invalidation_listener(self, callback: Callable[[], None]) -> None:
        """Register *callback* to run whenever :meth:`invalidate` is called."""
        self._invalidation_listeners.append(callback)

    def invalidate(self) -> None:
        """Drop cached routes and plans (call after mutating the topology).

        Also notifies registered listeners, so invalidating the router of a
        live :class:`~repro.network.emulator.NetworkEmulator` refreshes the
        emulator's resolved route plans and link table too.
        """
        self._adjacency = None
        self._sssp_cache.clear()
        self._plan_cache.clear()
        for callback in self._invalidation_listeners:
            callback()
