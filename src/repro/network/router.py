"""Global IP routing over the emulated topology.

The emulator routes every packet along the latency-weighted shortest path
between the source and destination attachment routers, the same policy a
ModelNet core applies.  Routes are computed lazily (single-source Dijkstra per
distinct source router) and cached, which keeps large topologies affordable.

The router is also the component the evaluation framework queries for *global*
information — direct IP latency between any two hosts and the underlay path a
packet takes — which the paper highlights as necessary for metrics such as
latency stretch, relative delay penalty, and link stress.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import networkx as nx

from .topology import BANDWIDTH_ATTR, LATENCY_ATTR, Topology


class RoutingError(RuntimeError):
    """Raised when no route exists between two attachment points."""


class Router:
    """Latency-weighted shortest-path routing with per-source caching."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._graph = topology.graph
        # Cache of single-source Dijkstra results: source -> (dist, paths).
        self._sssp_cache: dict[int, tuple[dict[int, float], dict[int, list[int]]]] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    # ----------------------------------------------------------------- paths
    def _sssp(self, source: int) -> tuple[dict[int, float], dict[int, list[int]]]:
        cached = self._sssp_cache.get(source)
        if cached is None:
            dist, paths = nx.single_source_dijkstra(
                self._graph, source, weight=LATENCY_ATTR
            )
            cached = (dist, paths)
            self._sssp_cache[source] = cached
        return cached

    def path(self, src_node: int, dst_node: int) -> list[int]:
        """Topology path (list of router ids) from *src_node* to *dst_node*."""
        if src_node == dst_node:
            return [src_node]
        dist, paths = self._sssp(src_node)
        try:
            return paths[dst_node]
        except KeyError as exc:
            raise RoutingError(f"no route from {src_node} to {dst_node}") from exc

    def latency(self, src_node: int, dst_node: int) -> float:
        """One-way propagation latency of the shortest path, in seconds."""
        if src_node == dst_node:
            return 0.0
        dist, _ = self._sssp(src_node)
        try:
            return dist[dst_node]
        except KeyError as exc:
            raise RoutingError(f"no route from {src_node} to {dst_node}") from exc

    def path_edges(self, src_node: int, dst_node: int) -> list[tuple[int, int]]:
        """The directed edges traversed along the path."""
        nodes = self.path(src_node, dst_node)
        return list(zip(nodes[:-1], nodes[1:]))

    def bottleneck_bandwidth(self, src_node: int, dst_node: int) -> float:
        """Minimum link bandwidth along the path (bytes/second)."""
        edges = self.path_edges(src_node, dst_node)
        if not edges:
            return float("inf")
        return min(self._graph.edges[u, v][BANDWIDTH_ATTR] for u, v in edges)

    def hop_count(self, src_node: int, dst_node: int) -> int:
        """Number of links on the latency-shortest path."""
        return max(0, len(self.path(src_node, dst_node)) - 1)

    def invalidate(self) -> None:
        """Drop cached routes (call after mutating the topology)."""
        self._sssp_cache.clear()
