"""IP-style addressing for the emulated network.

Overlay nodes are attached to hosts in the emulated topology.  Each host gets
a compact integer address (analogous to an IPv4 address in the paper's
ModelNet runs) plus a human-readable dotted form for traces and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Base of the emulated address block (10.0.0.0/8 style, purely cosmetic).
_ADDRESS_BASE = 10 << 24


class AddressError(ValueError):
    """Raised for malformed or unknown network addresses."""


def format_address(address: int) -> str:
    """Render an integer host address in dotted-quad form."""
    if address < 0 or address > 0xFFFFFFFF:
        raise AddressError(f"address {address!r} out of 32-bit range")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_address(text: str) -> int:
    """Parse a dotted-quad string back into an integer host address."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise AddressError(f"malformed address {text!r}") from exc
        if octet < 0 or octet > 255:
            raise AddressError(f"malformed address {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class HostAddress:
    """An assigned host address: integer form plus topology attachment point."""

    address: int
    topology_node: int

    @property
    def dotted(self) -> str:
        return format_address(self.address)

    def __int__(self) -> int:
        return self.address


class AddressAllocator:
    """Sequentially allocates host addresses and remembers their attachment."""

    def __init__(self, base: int = _ADDRESS_BASE) -> None:
        self._base = base
        self._next = 1
        self._by_address: dict[int, HostAddress] = {}

    def allocate(self, topology_node: int) -> HostAddress:
        """Allocate the next free address, attached to *topology_node*."""
        address = self._base + self._next
        self._next += 1
        host = HostAddress(address=address, topology_node=topology_node)
        self._by_address[address] = host
        return host

    def lookup(self, address: int) -> HostAddress:
        """Return the :class:`HostAddress` record for *address*."""
        try:
            return self._by_address[address]
        except KeyError as exc:
            raise AddressError(f"unknown host address {address}") from exc

    def __contains__(self, address: int) -> bool:
        return address in self._by_address

    def __len__(self) -> int:
        return len(self._by_address)

    def __iter__(self) -> Iterator[HostAddress]:
        return iter(self._by_address.values())
