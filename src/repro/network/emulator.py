"""Packet-level network emulator (the ModelNet analogue).

The emulator owns the topology, the global router, and the per-link queue
state.  Hosts register a receive callback; a packet submitted with
:meth:`NetworkEmulator.send` is walked hop-by-hop along the shortest underlay
path, accumulating transmission, queueing, and propagation delay at every
link, and is delivered (or dropped) at the destination via the simulator's
event queue.

The emulator also doubles as the source of the *global knowledge* the paper's
evaluation framework extracts from ModelNet/ns: direct IP latency between any
two hosts, the underlay path of any overlay edge, and per-link traffic
counters used for link-stress metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..runtime.engine import Simulator
from .addressing import AddressAllocator, AddressError, HostAddress
from .links import DirectedLink, LinkDropped
from .packet import Packet
from .router import Router
from .topology import BANDWIDTH_ATTR, LATENCY_ATTR, Topology

ReceiveCallback = Callable[[Packet], None]


@dataclass
class EmulatorStats:
    """Aggregate counters across the whole emulated network."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bytes_delivered: int = 0

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


@dataclass
class Host:
    """A host attached to the emulated network."""

    address: HostAddress
    receive: Optional[ReceiveCallback] = None
    #: Per-host delivery counters, handy in tests.
    delivered: int = 0
    dropped: int = 0


class NetworkEmulator:
    """Hop-by-hop packet emulator over a :class:`Topology`."""

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        *,
        random_loss_rate: float = 0.0,
        max_queue_delay: float = 0.5,
    ) -> None:
        if not 0.0 <= random_loss_rate <= 1.0:
            raise ValueError("random_loss_rate must be in [0, 1]")
        self.simulator = simulator
        self.topology = topology
        self.router = Router(topology)
        self.random_loss_rate = random_loss_rate
        self._rng = simulator.fork_rng("network-emulator")
        self._allocator = AddressAllocator()
        self._hosts: dict[int, Host] = {}
        self._links: dict[tuple[int, int], DirectedLink] = {}
        self._max_queue_delay = max_queue_delay
        self.stats = EmulatorStats()
        self._build_links()

    # ------------------------------------------------------------------ setup
    def _build_links(self) -> None:
        for u, v, data in self.topology.graph.edges(data=True):
            latency = data[LATENCY_ATTR]
            bandwidth = data[BANDWIDTH_ATTR]
            self._links[(u, v)] = DirectedLink(
                src=u, dst=v, latency=latency, bandwidth=bandwidth,
                max_queue_delay=self._max_queue_delay,
            )
            self._links[(v, u)] = DirectedLink(
                src=v, dst=u, latency=latency, bandwidth=bandwidth,
                max_queue_delay=self._max_queue_delay,
            )

    def attach_host(self, topology_node: Optional[int] = None,
                    receive: Optional[ReceiveCallback] = None) -> HostAddress:
        """Attach a new host and return its address.

        If *topology_node* is None, the next unused client attachment point is
        used (in the order the topology generator listed them).
        """
        if topology_node is None:
            used = {host.address.topology_node for host in self._hosts.values()}
            for candidate in self.topology.clients:
                if candidate not in used:
                    topology_node = candidate
                    break
            else:
                # All dedicated client slots taken: reuse round-robin.
                clients = self.topology.clients
                topology_node = clients[len(self._hosts) % len(clients)]
        if topology_node not in self.topology.graph:
            raise AddressError(f"attachment point {topology_node} not in topology")
        address = self._allocator.allocate(topology_node)
        self._hosts[address.address] = Host(address=address, receive=receive)
        return address

    def set_receive_callback(self, address: int, receive: ReceiveCallback) -> None:
        self._host(address).receive = receive

    def _host(self, address: int) -> Host:
        try:
            return self._hosts[address]
        except KeyError as exc:
            raise AddressError(f"unknown host address {address}") from exc

    @property
    def hosts(self) -> list[HostAddress]:
        return [host.address for host in self._hosts.values()]

    # ------------------------------------------------------------------ send
    def send(self, packet: Packet, payload_tag: Optional[str] = None) -> bool:
        """Inject *packet* into the network.

        Returns ``True`` if the packet was accepted and will be delivered,
        ``False`` if it was dropped (queue overflow or random loss).  Delivery
        happens asynchronously via the simulator.
        """
        src_host = self._host(packet.src)
        dst_host = self._host(packet.dst)
        packet.created_at = self.simulator.now
        self.stats.packets_sent += 1

        if self.random_loss_rate and self._rng.random() < self.random_loss_rate:
            self.stats.packets_dropped += 1
            dst_host.dropped += 1
            return False

        path = self.router.path(src_host.address.topology_node,
                                dst_host.address.topology_node)
        packet.path = tuple(path)
        total_delay = 0.0
        now = self.simulator.now
        for u, v in zip(path[:-1], path[1:]):
            link = self._links[(u, v)]
            try:
                # Queue state is advanced at submission time; this approximates
                # store-and-forward pipelining well enough for our metrics.
                total_delay += link.transit_time(now + total_delay,
                                                 packet.wire_size, payload_tag)
            except LinkDropped:
                self.stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
        packet.hops = max(0, len(path) - 1)
        self.simulator.schedule(total_delay, self._deliver, packet,
                                label=f"deliver:{packet.protocol}")
        return True

    def _deliver(self, packet: Packet) -> None:
        host = self._hosts.get(packet.dst)
        if host is None:
            # Host detached while the packet was in flight.
            self.stats.packets_dropped += 1
            return
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        host.delivered += 1
        if host.receive is not None:
            host.receive(packet)

    # --------------------------------------------------------- global queries
    def ip_latency(self, src: int, dst: int) -> float:
        """One-way propagation latency between two *host addresses* (seconds)."""
        a = self._host(src).address.topology_node
        b = self._host(dst).address.topology_node
        return self.router.latency(a, b)

    def ip_path(self, src: int, dst: int) -> list[int]:
        """Underlay router path between two host addresses."""
        a = self._host(src).address.topology_node
        b = self._host(dst).address.topology_node
        return self.router.path(a, b)

    def bottleneck_bandwidth(self, src: int, dst: int) -> float:
        a = self._host(src).address.topology_node
        b = self._host(dst).address.topology_node
        return self.router.bottleneck_bandwidth(a, b)

    def link_stats(self) -> dict[tuple[int, int], "LinkStatsView"]:
        """Per-directed-link traffic counters (for link-stress metrics)."""
        return {key: LinkStatsView(link) for key, link in self._links.items()}


class LinkStatsView:
    """Read-only view over one link's counters."""

    def __init__(self, link: DirectedLink) -> None:
        self._link = link

    @property
    def packets(self) -> int:
        return self._link.stats.packets

    @property
    def bytes(self) -> int:
        return self._link.stats.bytes

    @property
    def drops(self) -> int:
        return self._link.stats.drops

    @property
    def max_stress(self) -> int:
        return self._link.stats.max_stress
