"""Packet-level network emulator (the ModelNet analogue).

The emulator owns the topology, the global router, and the per-link queue
state.  Hosts register a receive callback; a packet submitted with
:meth:`NetworkEmulator.send` is walked hop-by-hop along the shortest underlay
path, accumulating transmission, queueing, and propagation delay at every
link, and is delivered (or dropped) at the destination via the simulator's
event queue.

``send()`` is the hottest function in the repository after the event loop
itself, so the per-hop work is precomputed: the first packet between a pair
of attachment routers resolves the route into a :class:`_ResolvedRoute` — the
:class:`DirectedLink` objects in hop order plus the shared path tuple — and
every subsequent packet replays that plan with zero dict lookups per hop, no
path copy, and no label formatting.  See docs/PERFORMANCE.md.

The emulator also doubles as the source of the *global knowledge* the paper's
evaluation framework extracts from ModelNet/ns: direct IP latency between any
two hosts, the underlay path of any overlay edge, and per-link traffic
counters used for link-stress metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime.engine import Simulator
from .addressing import AddressAllocator, AddressError, HostAddress
from .links import DirectedLink
from .packet import Packet
from .router import Router, RoutingError
from .topology import BANDWIDTH_ATTR, LATENCY_ATTR, Topology, TopologyError

ReceiveCallback = Callable[[Packet], None]


@dataclass
class EmulatorStats:
    """Aggregate counters across the whole emulated network."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bytes_delivered: int = 0

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


class Host:
    """A host attached to the emulated network."""

    __slots__ = ("address", "node", "receive", "delivered", "dropped",
                 "attached")

    def __init__(self, address: HostAddress,
                 receive: Optional[ReceiveCallback] = None) -> None:
        self.address = address
        #: Topology attachment point, denormalised from ``address`` so the
        #: send path reads one attribute instead of two.
        self.node = address.topology_node
        self.receive = receive
        #: Per-host delivery counters, handy in tests.
        self.delivered = 0
        self.dropped = 0
        #: False while the host is detached (fail-stop crash); packets to or
        #: from a detached host are dropped instead of raising.
        self.attached = True


class _ResolvedRoute:
    """A route plan with the per-hop links resolved to objects."""

    __slots__ = ("links", "path", "hop_count")

    def __init__(self, links: tuple[DirectedLink, ...],
                 path: tuple[int, ...]) -> None:
        self.links = links
        self.path = path
        self.hop_count = len(links)


class NetworkEmulator:
    """Hop-by-hop packet emulator over a :class:`Topology`."""

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        *,
        random_loss_rate: float = 0.0,
        max_queue_delay: float = 0.5,
    ) -> None:
        if not 0.0 <= random_loss_rate <= 1.0:
            raise ValueError("random_loss_rate must be in [0, 1]")
        self.simulator = simulator
        self.topology = topology
        self.router = Router(topology)
        self.random_loss_rate = random_loss_rate
        self._rng = simulator.fork_rng("network-emulator")
        self._allocator = AddressAllocator()
        self._hosts: dict[int, Host] = {}
        self._links: dict[tuple[int, int], DirectedLink] = {}
        # Resolved (src router, dst router) -> _ResolvedRoute plans.
        self._routes: dict[tuple[int, int], _ResolvedRoute] = {}
        # O(1)-amortised auto-attachment: nodes already hosting someone, and a
        # cursor over ``topology.clients`` marking how far allocation got.
        self._used_attachments: set[int] = set()
        self._client_cursor = 0
        self._max_queue_delay = max_queue_delay
        self.stats = EmulatorStats()
        # Fault-injection state.  ``_faults_active`` gates one branch in
        # send(); it is False until the first detach/partition, so the
        # no-fault hot path is byte-identical to the pre-fault-hook emulator.
        self._faults_active = False
        self._detached_count = 0
        self._partition_of: Optional[dict[int, int]] = None
        # One-directional blackholes: (u, v) pairs whose u->v DirectedLink is
        # cut while v->u (and routing over the undirected edge) stays up.
        # Non-empty set => the fault branch filters per packet.
        self._directed_cuts: set[tuple[int, int]] = set()
        # Degraded undirected edges: canonical (min, max) -> original
        # (latency, bandwidth), so restore_edge is exact.
        self._degraded_edges: dict[tuple[int, int], tuple[float, float]] = {}
        # Hosts degraded via degrade_host: address -> edges it degraded.
        self._degraded_hosts: dict[int, list[tuple[int, int]]] = {}
        # Bound-method caches for the per-packet path (skips one descriptor
        # lookup per send and per delivery).
        self._schedule_fast = simulator.schedule_fast
        self._deliver_callback = self._deliver
        self._build_links()
        # Keep our resolved plans and link table in sync even when callers
        # invalidate at the router level rather than through us.
        self.router.add_invalidation_listener(self._on_router_invalidated)
        self.router.add_edge_invalidation_listener(self._on_edge_disabled)

    # ------------------------------------------------------------------ setup
    def _build_links(self) -> None:
        for u, v, data in self.topology.graph.edges(data=True):
            latency = data[LATENCY_ATTR]
            bandwidth = data[BANDWIDTH_ATTR]
            if (u, v) not in self._links:
                self._links[(u, v)] = DirectedLink(
                    src=u, dst=v, latency=latency, bandwidth=bandwidth,
                    max_queue_delay=self._max_queue_delay,
                )
            if (v, u) not in self._links:
                self._links[(v, u)] = DirectedLink(
                    src=v, dst=u, latency=latency, bandwidth=bandwidth,
                    max_queue_delay=self._max_queue_delay,
                )

    def attach_host(self, topology_node: Optional[int] = None,
                    receive: Optional[ReceiveCallback] = None) -> HostAddress:
        """Attach a new host and return its address.

        If *topology_node* is None, the next unused client attachment point is
        used (in the order the topology generator listed them).  Attaching N
        hosts is O(N + num_clients) total: a cursor walks the client list once
        instead of rebuilding the used-set per call.
        """
        if topology_node is None:
            clients = self.topology.clients
            if not clients:
                raise TopologyError(
                    f"topology {self.topology.name!r} has no client attachment "
                    f"points; generate it with num_clients >= 1 (or pass an "
                    f"explicit topology_node to attach_host)")
            while self._client_cursor < len(clients):
                candidate = clients[self._client_cursor]
                if candidate not in self._used_attachments:
                    topology_node = candidate
                    break
                self._client_cursor += 1
            else:
                # All dedicated client slots taken: reuse round-robin.
                topology_node = clients[len(self._hosts) % len(clients)]
        if topology_node not in self.topology.graph:
            raise AddressError(f"attachment point {topology_node} not in topology")
        address = self._allocator.allocate(topology_node)
        self._hosts[address.address] = Host(address=address, receive=receive)
        self._used_attachments.add(topology_node)
        return address

    def set_receive_callback(self, address: int, receive: ReceiveCallback) -> None:
        self._host(address).receive = receive

    def _host(self, address: int) -> Host:
        try:
            return self._hosts[address]
        except KeyError as exc:
            raise AddressError(f"unknown host address {address}") from exc

    @property
    def hosts(self) -> list[HostAddress]:
        return [host.address for host in self._hosts.values()]

    # ------------------------------------------------------------ fault hooks
    def _recompute_faults_active(self) -> None:
        self._faults_active = (self._detached_count > 0
                               or self._partition_of is not None
                               or bool(self._directed_cuts))

    def detach_host(self, address: int) -> None:
        """Fail-stop a host: packets to or from it are dropped, not raised.

        The host keeps its address and attachment point so
        :meth:`reattach_host` restores it exactly where it was (the scenario
        engine's crash/recover cycle).  Idempotent.
        """
        host = self._host(address)
        if host.attached:
            host.attached = False
            self._detached_count += 1
            self._recompute_faults_active()

    def reattach_host(self, address: int) -> None:
        """Undo :meth:`detach_host`.  Idempotent."""
        host = self._host(address)
        if not host.attached:
            host.attached = True
            self._detached_count -= 1
            self._recompute_faults_active()

    def disable_link(self, u: int, v: int) -> None:
        """Cut the undirected topology edge (u, v).

        Both :class:`DirectedLink` directions are flagged, the router drops
        exactly the Dijkstra trees and plans that crossed the edge (targeted
        invalidation), and this emulator's resolved route plans are pruned the
        same way via the edge-invalidation listener.  Packets already resolved
        and scheduled keep flying; packets planned after the cut route around
        it, or are dropped if no path remains.
        """
        self.router.disable_edge(u, v)
        link = self._links.get((u, v))
        if link is not None:
            link.disable()
        link = self._links.get((v, u))
        if link is not None:
            link.disable()

    def enable_link(self, u: int, v: int) -> None:
        """Heal a previously cut edge (full route-plan invalidation)."""
        self.router.enable_edge(u, v)
        link = self._links.get((u, v))
        if link is not None:
            link.enable()
        link = self._links.get((v, u))
        if link is not None:
            link.enable()

    def _on_edge_disabled(self, u: int, v: int) -> None:
        """Prune resolved route plans that traversed the now-disabled edge."""
        uses_edge = Router._plan_uses_edge  # works on anything with .path
        stale = [key for key, route in self._routes.items()
                 if uses_edge(route, u, v)]
        for key in stale:
            del self._routes[key]

    def partition_hosts(self, groups: "list[list[int]]") -> None:
        """Install a host-level partition: a packet whose source and
        destination host addresses fall in different groups is dropped.

        *groups* are lists of host addresses; hosts not listed form their
        own implicit group (index ``0`` — listed groups are numbered from
        ``1``), so a single listed group really is isolated from everyone
        else.  This is the testbed-style partition (per-host filtering, like
        iptables rules on a ModelNet edge node); :meth:`disable_link` is the
        physical-layer alternative for cutting specific underlay edges.
        """
        partition: dict[int, int] = {}
        for index, members in enumerate(groups):
            for address in members:
                self._host(address)  # validate
                partition[int(address)] = index + 1
        self._partition_of = partition
        self._recompute_faults_active()

    def heal_partition(self) -> None:
        """Remove the host-level partition installed by :meth:`partition_hosts`."""
        self._partition_of = None
        self._recompute_faults_active()

    def disable_link_direction(self, u: int, v: int) -> None:
        """Blackhole the u->v direction of an edge (asymmetric partition).

        Unlike :meth:`disable_link`, routing is *not* told: the edge stays in
        every plan (real asymmetric faults — misconfigured filters, one dead
        transceiver — are invisible to shortest-path routing), and packets
        whose resolved route crosses the dead direction are dropped at send
        time.  The check lives inside the ``_faults_active`` branch, so the
        no-fault hot path is unchanged.  Idempotent.
        """
        if not self.topology.graph.has_edge(u, v):
            raise RoutingError(
                f"cannot cut link direction ({u}, {v}): not in topology")
        if (u, v) in self._directed_cuts:
            return
        self._directed_cuts.add((u, v))
        self._links[(u, v)].disable()
        self._recompute_faults_active()

    def enable_link_direction(self, u: int, v: int) -> None:
        """Heal a one-directional cut.  Idempotent."""
        if (u, v) not in self._directed_cuts:
            return
        self._directed_cuts.discard((u, v))
        self._links[(u, v)].enable()
        self._recompute_faults_active()

    def degrade_edge(self, u: int, v: int, *, bandwidth_factor: float = 1.0,
                     latency_factor: float = 1.0) -> None:
        """Degrade an underlay edge at runtime: scale its bandwidth down by
        ``bandwidth_factor`` and its latency up by ``latency_factor``.

        Both :class:`DirectedLink` directions and the topology graph
        attributes are updated, and the router reweighs the edge with the
        same *targeted* invalidation :meth:`disable_link` uses (lengthening
        an edge never invalidates a plan that avoids it).  Factors apply to
        the edge's original values, so repeated degrades do not compound.
        No per-packet filtering is involved: the per-hop transit loop reads
        the mutated link fields directly, and the no-fault hot path is
        untouched.
        """
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1] "
                             "(degradation only slows links down)")
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 "
                             "(degradation only slows links down)")
        if not self.topology.graph.has_edge(u, v):
            raise RoutingError(
                f"cannot degrade edge ({u}, {v}): not in topology")
        key = (min(u, v), max(u, v))
        if key not in self._degraded_edges:
            data = self.topology.graph[u][v]
            self._degraded_edges[key] = (data[LATENCY_ATTR],
                                         data[BANDWIDTH_ATTR])
        base_latency, base_bandwidth = self._degraded_edges[key]
        self.topology.graph[u][v][BANDWIDTH_ATTR] = \
            base_bandwidth * bandwidth_factor
        for direction in ((u, v), (v, u)):
            self._links[direction].degrade(bandwidth_factor=bandwidth_factor,
                                           latency_factor=latency_factor)
        # Router last: it writes the graph latency attribute and prunes
        # exactly the SSSP trees/plans (ours included, via the edge
        # listener) that crossed the now-slower edge.
        self.router.reweigh_edge(u, v, base_latency * latency_factor)

    def restore_edge(self, u: int, v: int) -> None:
        """Undo :meth:`degrade_edge`.  A restored edge may shorten any route,
        so the router performs a full invalidation (as :meth:`enable_link`
        does).  Idempotent for edges that are not degraded."""
        key = (min(u, v), max(u, v))
        original = self._degraded_edges.pop(key, None)
        if original is None:
            return
        base_latency, base_bandwidth = original
        self.topology.graph[u][v][BANDWIDTH_ATTR] = base_bandwidth
        for direction in ((u, v), (v, u)):
            self._links[direction].restore()
        self.router.reweigh_edge(u, v, base_latency, may_shorten=True)

    def degrade_host(self, address: int, *, bandwidth_factor: float = 1.0,
                     latency_factor: float = 1.0) -> None:
        """Slow-node model: degrade every edge incident to the host's
        attachment router (its access links), via :meth:`degrade_edge`."""
        host = self._host(address)
        edges = [(host.node, neighbour)
                 for neighbour in self.topology.graph.neighbors(host.node)]
        for u, v in edges:
            self.degrade_edge(u, v, bandwidth_factor=bandwidth_factor,
                              latency_factor=latency_factor)
        self._degraded_hosts[address] = edges

    def restore_host(self, address: int) -> None:
        """Undo :meth:`degrade_host`.  Idempotent."""
        for u, v in self._degraded_hosts.pop(address, ()):  # type: ignore[arg-type]
            self.restore_edge(u, v)

    # ------------------------------------------------------------------ routes
    def _route(self, src_node: int, dst_node: int) -> _ResolvedRoute:
        """The resolved (links + path) plan between two attachment routers."""
        key = (src_node, dst_node)
        route = self._routes.get(key)
        if route is None:
            plan = self.router.plan(src_node, dst_node)
            links = self._links
            route = _ResolvedRoute(tuple(links[edge] for edge in plan.edges),
                                   plan.path)
            self._routes[key] = route
        return route

    def invalidate(self) -> None:
        """Drop cached routes after a topology mutation.

        Clears the emulator's resolved route plans and the router's Dijkstra
        and plan caches, then registers links for any edges added to the
        topology graph (existing links keep their queue state and counters).
        Calling ``router.invalidate()`` directly is equivalent — the emulator
        listens for it.
        """
        self.router.invalidate()

    def _on_router_invalidated(self) -> None:
        self._routes.clear()
        self._build_links()

    # ------------------------------------------------------------------ send
    def send(self, packet: Packet, payload_tag: Optional[str] = None) -> bool:
        """Inject *packet* into the network.

        Returns ``True`` if the packet was accepted and will be delivered,
        ``False`` if it was dropped (queue overflow or random loss).  Delivery
        happens asynchronously via the simulator.
        """
        hosts = self._hosts
        src_host = hosts.get(packet.src)
        dst_host = hosts.get(packet.dst)
        if src_host is None or dst_host is None:
            missing = packet.src if src_host is None else packet.dst
            raise AddressError(f"unknown host address {missing}")
        # Direct read of the simulator clock (the .now property costs a
        # descriptor call per packet).
        now = self.simulator._now
        packet.created_at = now
        stats = self.stats
        stats.packets_sent += 1

        if self._faults_active:
            # Crash/partition checks live behind one flag so the fault-free
            # hot path costs a single predictable branch per packet.
            if not (src_host.attached and dst_host.attached):
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
            partition = self._partition_of
            if partition is not None and \
                    partition.get(packet.src, 0) != partition.get(packet.dst, 0):
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
            if self._directed_cuts:
                # Asymmetric cuts are invisible to routing, so the route is
                # resolved early (cache-hit for the re-resolution below; no
                # RNG is consumed, keeping the loss draw sequence intact) and
                # the packet blackholed if any hop's direction is dead.
                try:
                    route = self._route(src_host.node, dst_host.node)
                except RoutingError:
                    stats.packets_dropped += 1
                    dst_host.dropped += 1
                    return False
                for link in route.links:
                    if not link.enabled:
                        link.drops += 1
                        stats.packets_dropped += 1
                        dst_host.dropped += 1
                        return False

        if self.random_loss_rate and self._rng.random() < self.random_loss_rate:
            stats.packets_dropped += 1
            dst_host.dropped += 1
            return False

        route = self._routes.get((src_host.node, dst_host.node))
        if route is None:
            try:
                route = self._route(src_host.node, dst_host.node)
            except RoutingError:
                # Link cuts severed every underlay path: the packet is lost,
                # not an error — overlays are expected to ride this out.
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
        packet.path = route.path
        wire_size = packet.wire_size
        total_delay = 0.0
        for link in route.links:
            # Inlined DirectedLink.try_transit — one method call per hop is
            # measurable at 100k+ packets/sec, and this loop must stay
            # float-op-for-float-op identical to it (same delay accumulation
            # order) so fixed-seed metrics do not drift.
            hop_now = now + total_delay
            queue_delay = link.next_free - hop_now
            if queue_delay < 0.0:
                queue_delay = 0.0
            if queue_delay > link.max_queue_delay:
                link.drops += 1
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
            transmission = wire_size / link.bandwidth
            link.next_free = hop_now + queue_delay + transmission
            link.packets += 1
            link.bytes += wire_size
            if payload_tag is not None:
                payloads = link.overlay_payloads
                payloads[payload_tag] = payloads.get(payload_tag, 0) + 1
            # Queue state is advanced at submission time; this approximates
            # store-and-forward pipelining well enough for our metrics.
            total_delay += queue_delay + transmission + link.latency
        packet.hops = route.hop_count
        self._schedule_fast(total_delay, self._deliver_callback, packet)
        return True

    def install_cross_shard_egress(
            self, shard_of_address: dict[int, int], shard_id: int,
            capture: Callable[[float, int, int, Packet], None]) -> None:
        """Divert deliveries to hosts owned by other shards into *capture*.

        The send path schedules every delivery through the ``_schedule_fast``
        bound-method cache; swapping that attribute intercepts packets at
        *send* time — the only safe point, because by delivery time the
        destination shard may already have simulated past the arrival.  A
        diverted packet costs its full per-hop route walk first, so link
        counters and the computed delay come from the owning shard;
        ``capture(arrival_time, dst_shard, dst_address, packet)`` then hands
        it to the shard mailbox instead of the local event queue.  Local
        deliveries keep the original one-call fast path.

        This also swaps :meth:`send` for :meth:`_send_sharded`, the
        contention-free sharded variant — see its docstring for the fidelity
        trade that buys shard-count-independent results.
        """
        inner = self._schedule_fast
        deliver = self._deliver_callback
        simulator = self.simulator

        def egress(delay: float, callback, packet) -> None:
            if callback is deliver:
                dst_shard = shard_of_address.get(packet.dst, shard_id)
                if dst_shard != shard_id:
                    capture(simulator._now + delay, dst_shard,
                            packet.dst, packet)
                    return
            inner(delay, callback, packet)

        self._schedule_fast = egress
        # All transports resolve ``self.emulator.send`` per call, so an
        # instance attribute shadows the class method for the whole worker.
        self._loss_rngs = {}
        self.send = self._send_sharded  # type: ignore[method-assign]

    def install_delivery_wrapper(
            self, wrap: Callable[[Callable[[Packet], None]],
                                 Callable[[Packet], None]]) -> None:
        """Swap the delivery callback for ``wrap(current)`` (observability).

        Uses the same bound-method-cache swap as the sharded egress hook:
        the send paths schedule ``self._deliver_callback`` read per call, so
        replacing the attribute reroutes every future delivery — including
        packets re-entering via :meth:`inject_delivery` — at zero cost to
        the uninstrumented run.

        Ordering matters in shard workers: this must run *before*
        :meth:`install_cross_shard_egress`, whose egress closure captures
        the delivery callback by identity to tell deliveries apart from
        other fast events.  A wrapper installed after it would make
        cross-shard packets miss the export check and deliver locally.
        """
        self._deliver_callback = wrap(self._deliver_callback)

    def install_send_tap(self, tap: Callable[[Packet], None]) -> None:
        """Run ``tap(packet)`` before every send (observability).

        Wraps whatever :meth:`send` currently is by instance-attribute
        shadowing — the mechanism :meth:`install_cross_shard_egress` uses —
        so in a shard worker this must be installed *after* ``enter_shard``
        swapped in the sharded send, or the swap would discard the tap.
        """
        inner = self.send

        def send_with_tap(packet: Packet,
                          payload_tag: Optional[str] = None) -> bool:
            tap(packet)
            return inner(packet, payload_tag)

        self.send = send_with_tap  # type: ignore[method-assign]

    def _send_sharded(self, packet: Packet,
                      payload_tag: Optional[str] = None) -> bool:
        """:meth:`send` for shard workers: traffic-independent link physics.

        Two properties of the single-process send make results depend on the
        *global* interleaving of sends, which no shard can observe:

        * **queue coupling** — per-link ``next_free`` occupancy, advanced by
          every packet crossing the link.  A shard only sees its own nodes'
          sends, so shared transit links would carry shard-local queue state
          and delays would drift with the partition.  The sharded send models
          transmission + propagation but no queueing wait (and therefore no
          queue-overflow drops): each packet's delay is a pure function of
          its route and size.
        * **random loss** — the single shared loss RNG is consumed in global
          send order.  Here each *source host* draws from its own stream,
          forked deterministically as ``loss-<address>``; a host's send
          sequence does not depend on the partition, so neither do its loss
          draws.

        Both make fixed-seed sharded results identical for every shard count
        K > 1 (and stable across repeats), at the cost of not reproducing the
        single-process run's contention effects — docs/PERFORMANCE.md,
        "Sharded execution", spells out the trade.  This must otherwise stay
        branch-for-branch identical to :meth:`send`.
        """
        hosts = self._hosts
        src_host = hosts.get(packet.src)
        dst_host = hosts.get(packet.dst)
        if src_host is None or dst_host is None:
            missing = packet.src if src_host is None else packet.dst
            raise AddressError(f"unknown host address {missing}")
        now = self.simulator._now
        packet.created_at = now
        stats = self.stats
        stats.packets_sent += 1

        if self._faults_active:
            if not (src_host.attached and dst_host.attached):
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
            partition = self._partition_of
            if partition is not None and \
                    partition.get(packet.src, 0) != partition.get(packet.dst, 0):
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
            if self._directed_cuts:
                try:
                    route = self._route(src_host.node, dst_host.node)
                except RoutingError:
                    stats.packets_dropped += 1
                    dst_host.dropped += 1
                    return False
                for link in route.links:
                    if not link.enabled:
                        link.drops += 1
                        stats.packets_dropped += 1
                        dst_host.dropped += 1
                        return False

        if self.random_loss_rate:
            rng = self._loss_rngs.get(packet.src)
            if rng is None:
                rng = self.simulator.fork_rng(f"loss-{packet.src}")
                self._loss_rngs[packet.src] = rng
            if rng.random() < self.random_loss_rate:
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False

        route = self._routes.get((src_host.node, dst_host.node))
        if route is None:
            try:
                route = self._route(src_host.node, dst_host.node)
            except RoutingError:
                stats.packets_dropped += 1
                dst_host.dropped += 1
                return False
        packet.path = route.path
        wire_size = packet.wire_size
        total_delay = 0.0
        for link in route.links:
            link.packets += 1
            link.bytes += wire_size
            if payload_tag is not None:
                payloads = link.overlay_payloads
                payloads[payload_tag] = payloads.get(payload_tag, 0) + 1
            total_delay += wire_size / link.bandwidth + link.latency
        packet.hops = route.hop_count
        self._schedule_fast(total_delay, self._deliver_callback, packet)
        return True

    def inject_delivery(self, delay: float, packet: Packet) -> None:
        """Schedule a delivery for a packet that arrived from another shard.

        The barrier merge already fixed the deterministic injection order;
        this just re-enters the normal delivery path, so destination-side
        stats (``packets_delivered``, ``bytes_delivered`` — the WireCodec
        size model travels inside the packet) match the single-process run.
        """
        self.simulator.schedule_fast(delay, self._deliver_callback, packet)

    def _deliver(self, packet: Packet) -> None:
        host = self._hosts.get(packet.dst)
        if host is None or not host.attached:
            # Host detached while the packet was in flight.
            self.stats.packets_dropped += 1
            return
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size
        host.delivered += 1
        receive = host.receive
        if receive is not None:
            receive(packet)

    # --------------------------------------------------------- global queries
    def ip_latency(self, src: int, dst: int) -> float:
        """One-way propagation latency between two *host addresses* (seconds)."""
        return self.router.latency(self._host(src).node, self._host(dst).node)

    def ip_path(self, src: int, dst: int) -> list[int]:
        """Underlay router path between two host addresses."""
        return self.router.path(self._host(src).node, self._host(dst).node)

    def bottleneck_bandwidth(self, src: int, dst: int) -> float:
        return self.router.bottleneck_bandwidth(self._host(src).node,
                                                self._host(dst).node)

    def link_stats(self) -> dict[tuple[int, int], "LinkStatsView"]:
        """Per-directed-link traffic counters (for link-stress metrics)."""
        return {key: LinkStatsView(link) for key, link in self._links.items()}


class LinkStatsView:
    """Read-only view over one link's counters."""

    def __init__(self, link: DirectedLink) -> None:
        self._link = link

    @property
    def packets(self) -> int:
        return self._link.packets

    @property
    def bytes(self) -> int:
        return self._link.bytes

    @property
    def drops(self) -> int:
        return self._link.drops

    @property
    def max_stress(self) -> int:
        return self._link.max_stress
