"""Emulated network substrate (the ModelNet analogue).

Public surface:

* :class:`~repro.network.topology.Topology` and the generators
  :func:`~repro.network.topology.transit_stub_topology`,
  :func:`~repro.network.topology.multi_site_topology`,
  :func:`~repro.network.topology.dumbbell_topology`;
* :class:`~repro.network.emulator.NetworkEmulator` — hop-by-hop packet
  delivery with queueing, congestion, and loss;
* :class:`~repro.network.router.Router` — global shortest-path routing and
  latency queries used by the evaluation framework.
"""

from .addressing import AddressAllocator, AddressError, HostAddress, format_address, parse_address
from .emulator import EmulatorStats, NetworkEmulator
from .links import DirectedLink, LinkStats
from .packet import HEADER_BYTES, Packet
from .router import Router, RoutingError
from .topology import (
    Topology,
    TopologyError,
    TopologyProfile,
    LinkProfile,
    dumbbell_topology,
    multi_site_topology,
    transit_stub_topology,
)

__all__ = [
    "AddressAllocator",
    "AddressError",
    "HostAddress",
    "format_address",
    "parse_address",
    "EmulatorStats",
    "NetworkEmulator",
    "DirectedLink",
    "LinkStats",
    "HEADER_BYTES",
    "Packet",
    "Router",
    "RoutingError",
    "Topology",
    "TopologyError",
    "TopologyProfile",
    "LinkProfile",
    "dumbbell_topology",
    "multi_site_topology",
    "transit_stub_topology",
]
