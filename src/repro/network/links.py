"""Per-link state for the packet-level emulator.

Each directed link models three things the paper's ModelNet substrate
provides and that hand-crafted overlay simulators usually omit:

* **transmission delay** — ``wire_size / bandwidth``;
* **queueing delay** — packets wait for the link to drain (FIFO, drop-tail);
* **loss** — a packet that would have to wait longer than the queue can hold
  is dropped.

The implementation keeps, per link, the time at which the link next becomes
free; the queueing delay seen by an arriving packet is the gap between that
time and "now".  This fluid approximation of a FIFO queue is accurate for the
metrics the evaluation framework reports (latency, delivered bandwidth, link
stress) and is what lets thousands of nodes run on one machine.

Links sit on the per-packet, per-hop hot path, so :class:`DirectedLink` is a
flat ``__slots__`` object with its traffic counters stored directly on the
link (no nested stats object to dereference per hop), and the common no-drop
case goes through :meth:`DirectedLink.try_transit`, which signals a drop by
returning a negative sentinel instead of raising (:class:`LinkDropped` costs
an exception per drop and a ``try`` frame per hop on paths that do not drop).
``link.stats`` remains available as a live view for tests and metrics code.

Fault injection (the scenario engine's partition/link-cut models) flips the
:attr:`DirectedLink.enabled` flag via :meth:`DirectedLink.disable` /
:meth:`DirectedLink.enable`.  The flag is *not* consulted inside the per-hop
transit loop — that loop must stay branch-free — because enforcement happens
one layer up: the router excludes disabled edges from its adjacency and every
cached route plan that traversed the edge is invalidated at disable time (see
``Router.disable_edge``), so no new packet can be planned across a dead link.
Packets already resolved onto the wire before the cut still arrive, which is
the physically sensible semantics (bits in flight are not recalled).
"""

from __future__ import annotations

from typing import Optional


class LinkDropped(Exception):
    """Internal signal: the packet was dropped at this link."""


class LinkStats:
    """Live view over one link's counters.

    Kept for API compatibility (``link.stats.packets`` etc.); the counters
    themselves live flat on :class:`DirectedLink` so the per-hop hot path
    touches one object, not two.
    """

    __slots__ = ("_link",)

    def __init__(self, link: "DirectedLink") -> None:
        self._link = link

    @property
    def packets(self) -> int:
        return self._link.packets

    @property
    def bytes(self) -> int:
        return self._link.bytes

    @property
    def drops(self) -> int:
        return self._link.drops

    @property
    def overlay_payloads(self) -> dict[str, int]:
        """Duplicate transmissions of the same overlay payload (link stress numerator)."""
        return self._link.overlay_payloads

    def record_payload(self, tag: Optional[str]) -> None:
        if tag is not None:
            payloads = self._link.overlay_payloads
            payloads[tag] = payloads.get(tag, 0) + 1

    @property
    def max_stress(self) -> int:
        """Maximum number of times any single overlay payload crossed this link."""
        return self._link.max_stress

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        link = self._link
        return (f"LinkStats(packets={link.packets}, bytes={link.bytes}, "
                f"drops={link.drops})")


class DirectedLink:
    """One direction of an edge in the topology."""

    __slots__ = ("src", "dst", "latency", "bandwidth", "max_queue_delay",
                 "next_free", "packets", "bytes", "drops", "overlay_payloads",
                 "enabled", "base_latency", "base_bandwidth")

    def __init__(self, src: int, dst: int, latency: float, bandwidth: float,
                 max_queue_delay: float = 0.5, next_free: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.latency = latency
        self.bandwidth = bandwidth
        #: Undegraded values, kept so :meth:`restore` undoes any number of
        #: stacked :meth:`degrade` calls exactly.  The per-hop transit loop
        #: reads only ``latency``/``bandwidth``, so degradation adds nothing
        #: to the hot path.
        self.base_latency = latency
        self.base_bandwidth = bandwidth
        #: Maximum queueing delay (seconds of backlog) before drop-tail loss.
        self.max_queue_delay = max_queue_delay
        #: Simulated time at which the transmitter becomes free.
        self.next_free = next_free
        # Traffic counters the evaluation framework reads (via ``stats``).
        self.packets = 0
        self.bytes = 0
        self.drops = 0
        self.overlay_payloads: dict[str, int] = {}
        #: Fault-injection state.  Enforced at the routing layer (disabled
        #: edges never appear in a route plan), recorded here so link views
        #: and scenario assertions can observe which links are cut.
        self.enabled = True

    @property
    def stats(self) -> LinkStats:
        """Live view over this link's counters."""
        return LinkStats(self)

    # ------------------------------------------------------------ fault hooks
    def disable(self) -> None:
        """Mark this direction of the link as cut (scenario fault injection)."""
        self.enabled = False

    def enable(self) -> None:
        """Restore a previously cut link direction.

        The queue state (``next_free``) is kept: if the cut was short enough
        that the transmitter would still have been draining backlog, the
        backlog is still there — and if simulated time has moved past it, the
        stale value is harmless (negative queueing delay clamps to zero).
        """
        self.enabled = True

    def degrade(self, *, bandwidth_factor: float = 1.0,
                latency_factor: float = 1.0) -> None:
        """Scale this direction's service rate at runtime (slow-node /
        bottleneck-link fault injection).

        Factors are applied to the *base* values, so repeated degrades do not
        compound: ``degrade(bandwidth_factor=0.5)`` twice still leaves the
        link at half its original bandwidth.  Routing-layer consequences
        (stale latency-weighted plans) are the caller's job — see
        ``NetworkEmulator.degrade_edge``.
        """
        self.latency = self.base_latency * latency_factor
        self.bandwidth = self.base_bandwidth * bandwidth_factor

    def restore(self) -> None:
        """Undo :meth:`degrade`: back to the construction-time service rate."""
        self.latency = self.base_latency
        self.bandwidth = self.base_bandwidth

    @property
    def degraded(self) -> bool:
        return (self.latency != self.base_latency
                or self.bandwidth != self.base_bandwidth)

    @property
    def max_stress(self) -> int:
        """Maximum number of times any single overlay payload crossed this link."""
        if not self.overlay_payloads:
            return 0
        return max(self.overlay_payloads.values())

    def try_transit(self, now: float, wire_size: int,
                    payload_tag: Optional[str] = None) -> float:
        """Total time for a packet of *wire_size* bytes to cross this link.

        Updates the link's queue state and statistics.  Returns a negative
        value (and records the drop) if the packet would overflow the queue —
        the fast-path equivalent of :meth:`transit_time` raising
        :class:`LinkDropped`.

        NetworkEmulator.send inlines this logic; the two must stay
        float-op-for-float-op identical.
        """
        queue_delay = self.next_free - now
        if queue_delay < 0.0:
            queue_delay = 0.0
        if queue_delay > self.max_queue_delay:
            self.drops += 1
            return -1.0
        transmission = wire_size / self.bandwidth
        self.next_free = now + queue_delay + transmission
        self.packets += 1
        self.bytes += wire_size
        if payload_tag is not None:
            payloads = self.overlay_payloads
            payloads[payload_tag] = payloads.get(payload_tag, 0) + 1
        return queue_delay + transmission + self.latency

    def transit_time(self, now: float, wire_size: int,
                     payload_tag: Optional[str] = None) -> float:
        """Exception-raising form of :meth:`try_transit`.

        Raises :class:`LinkDropped` if the packet would overflow the queue.
        """
        total = self.try_transit(now, wire_size, payload_tag)
        if total < 0.0:
            raise LinkDropped()
        return total

    def utilization(self, now: float) -> float:
        """Instantaneous backlog on this link, in seconds of transmission time."""
        return max(0.0, self.next_free - now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DirectedLink({self.src}->{self.dst}, latency={self.latency}, "
                f"bandwidth={self.bandwidth})")
