"""Per-link state for the packet-level emulator.

Each directed link models three things the paper's ModelNet substrate
provides and that hand-crafted overlay simulators usually omit:

* **transmission delay** — ``wire_size / bandwidth``;
* **queueing delay** — packets wait for the link to drain (FIFO, drop-tail);
* **loss** — a packet that would have to wait longer than the queue can hold
  is dropped.

The implementation keeps, per link, the time at which the link next becomes
free; the queueing delay seen by an arriving packet is the gap between that
time and "now".  This fluid approximation of a FIFO queue is accurate for the
metrics the evaluation framework reports (latency, delivered bandwidth, link
stress) and is what lets thousands of nodes run on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class LinkDropped(Exception):
    """Internal signal: the packet was dropped at this link."""


@dataclass
class LinkStats:
    """Counters the evaluation framework reads for link-stress style metrics."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0
    #: Duplicate transmissions of the same overlay payload (link stress numerator).
    overlay_payloads: dict[str, int] = field(default_factory=dict)

    def record_payload(self, tag: Optional[str]) -> None:
        if tag is not None:
            self.overlay_payloads[tag] = self.overlay_payloads.get(tag, 0) + 1

    @property
    def max_stress(self) -> int:
        """Maximum number of times any single overlay payload crossed this link."""
        if not self.overlay_payloads:
            return 0
        return max(self.overlay_payloads.values())


@dataclass
class DirectedLink:
    """One direction of an edge in the topology."""

    src: int
    dst: int
    latency: float
    bandwidth: float
    #: Maximum queueing delay (seconds of backlog) before drop-tail loss.
    max_queue_delay: float = 0.5
    #: Simulated time at which the transmitter becomes free.
    next_free: float = 0.0
    stats: LinkStats = field(default_factory=LinkStats)

    def transit_time(self, now: float, wire_size: int,
                     payload_tag: Optional[str] = None) -> float:
        """Total time for a packet of *wire_size* bytes to cross this link.

        Updates the link's queue state and statistics.  Raises
        :class:`LinkDropped` if the packet would overflow the queue.
        """
        transmission = wire_size / self.bandwidth
        queue_delay = max(0.0, self.next_free - now)
        if queue_delay > self.max_queue_delay:
            self.stats.drops += 1
            raise LinkDropped()
        self.next_free = now + queue_delay + transmission
        self.stats.packets += 1
        self.stats.bytes += wire_size
        self.stats.record_payload(payload_tag)
        return queue_delay + transmission + self.latency

    def utilization(self, now: float) -> float:
        """Instantaneous backlog on this link, in seconds of transmission time."""
        return max(0.0, self.next_free - now)
