"""The execution-driver contract: one protocol runtime, two clocks.

MACEDON's headline claim is that a single specification is evaluated both in
*simulation* and in *live deployment* over real networks.  The runtime code
(agents, timers, transports, failure detection) therefore never talks to the
:class:`~repro.runtime.engine.Simulator` by concrete type — it talks to the
**driver contract** defined here: a clock (``now``), the three scheduling
entry points the hot paths use (``schedule`` with a cancellable handle,
fire-and-forget ``schedule_fast``, generation-cancellable ``schedule_gen`` /
``cancel_gen``), deterministic RNG forking, and ``spawn`` for runtimes that
host coroutines.

Three implementations exist:

* the discrete-event :class:`~repro.runtime.engine.Simulator` itself (today's
  path, registered below as a virtual subclass so ``isinstance`` checks hold
  without adding a base class to the hottest object in the repository);
* :class:`repro.live.driver.LiveDriver`, which maps the same surface onto a
  wall-clock asyncio event loop and real elapsed time, so the *unchanged*
  generated agents and transports run over real sockets between OS processes
  (see docs/LIVE.md);
* :class:`repro.runtime.sharded.driver.ShardedDriver`, which wraps one
  shard's simulator inside the multi-process conservative-lockstep kernel —
  same scheduling surface per worker, cross-shard packets exchanged at
  window barriers (see docs/PERFORMANCE.md, "Sharded execution").

:class:`SimDriver` is a thin explicit wrapper around a ``Simulator`` for call
sites that want to name the abstraction; because the simulator already
satisfies the contract structurally, passing the bare simulator (as all
existing code does) is equally valid and costs nothing on the hot path.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Optional

from .engine import EventHandle, Simulator


class Driver(abc.ABC):
    """What the protocol runtime requires from its execution environment.

    Time is in seconds: simulated seconds under the simulator, wall-clock
    seconds since driver start under a live driver.  The scheduling methods
    mirror :class:`~repro.runtime.engine.Simulator` exactly — see its
    docstrings for the semantics the implementations must preserve (FIFO
    ordering of same-instant events, the one-pending-entry-per-cell invariant
    of ``schedule_gen``, idempotent handle cancellation).
    """

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock since start)."""

    @abc.abstractmethod
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 label: Any = "", **kwargs: Any):
        """Run *callback* in ``delay`` seconds; returns a cancellable handle."""

    @abc.abstractmethod
    def schedule_fast(self, delay: float, callback: Callable[..., Any],
                      *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no kwargs, no label."""

    @abc.abstractmethod
    def schedule_gen(self, delay: float, callback: Callable[[], Any],
                     cell: list) -> None:
        """Generation-cancellable scheduling (see ``Simulator.schedule_gen``)."""

    @abc.abstractmethod
    def cancel_gen(self, cell: list) -> None:
        """Cancel the single pending :meth:`schedule_gen` entry tied to *cell*."""

    @abc.abstractmethod
    def fork_rng(self, name: str) -> random.Random:
        """A new RNG deterministically derived from the driver seed and *name*."""

    def cancel(self, handle: Any) -> None:
        """Cancel a handle returned by :meth:`schedule`.  Idempotent."""
        handle.cancel()

    def spawn(self, coro: Any) -> Any:
        """Run a coroutine on the driver's event loop, if it has one.

        The simulator is synchronous and does not host coroutines; only live
        drivers implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not host coroutines")


# The simulator satisfies the contract structurally; register it as a virtual
# subclass rather than inserting an ABC into its MRO (it is the hottest class
# in the repository and its method dispatch must stay flat).
Driver.register(Simulator)


class SimDriver(Driver):
    """Explicit :class:`Driver` facade over a :class:`Simulator`.

    Delegation is by rebinding the simulator's bound methods at construction,
    so going through the facade adds no per-call indirection.  Code that
    already holds a ``Simulator`` can pass it directly (it *is* a virtual
    ``Driver``); this wrapper exists for call sites built against the
    abstraction, e.g. harnesses that accept either clock.
    """

    def __init__(self, simulator: Optional[Simulator] = None, *,
                 seed: int = 0) -> None:
        self.simulator = simulator if simulator is not None else Simulator(seed)
        sim = self.simulator
        self.schedule = sim.schedule            # type: ignore[method-assign]
        self.schedule_fast = sim.schedule_fast  # type: ignore[method-assign]
        self.schedule_gen = sim.schedule_gen    # type: ignore[method-assign]
        self.cancel_gen = sim.cancel_gen        # type: ignore[method-assign]
        self.fork_rng = sim.fork_rng            # type: ignore[method-assign]

    @property
    def now(self) -> float:
        return self.simulator.now

    @property
    def _now(self) -> float:
        # ProtocolTimer and the reliable transports read the underscore form
        # on their fast paths; keep both spellings in lockstep.
        return self.simulator._now

    @property
    def seed(self) -> int:
        return self.simulator.seed

    @property
    def events_processed(self) -> int:
        return self.simulator.events_processed

    # The abstract methods are rebound per instance in __init__; these bodies
    # only exist so the class is instantiable.
    def schedule(self, delay, callback, *args, label="", **kwargs):  # pragma: no cover
        return self.simulator.schedule(delay, callback, *args,
                                       label=label, **kwargs)

    def schedule_fast(self, delay, callback, *args):  # pragma: no cover
        self.simulator.schedule_fast(delay, callback, *args)

    def schedule_gen(self, delay, callback, cell):  # pragma: no cover
        self.simulator.schedule_gen(delay, callback, cell)

    def cancel_gen(self, cell):  # pragma: no cover
        self.simulator.cancel_gen(cell)

    def fork_rng(self, name):  # pragma: no cover
        return self.simulator.fork_rng(name)

    def cancel(self, handle: EventHandle) -> None:
        handle.cancel()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimDriver({self.simulator!r})"
