"""Protocol layering: the MACEDON agent stack.

A node runs an ordered stack of agents (Figure 2 of the paper): the lowest
agent talks to the transport subsystem, the highest talks to the application,
and adjacent agents talk through the standard API (downcalls) and the
``forward``/``deliver``/``notify``/``upcall_ext`` upcalls.  A stack may have
any number of layers; ``protocol scribe uses pastry`` simply puts the Scribe
agent above the Pastry agent.
"""

from __future__ import annotations

from typing import Optional, Sequence, Type

from .agent import Agent, AgentError


class StackError(RuntimeError):
    """Raised for malformed stacks (empty, or inconsistent layering)."""


class ProtocolStack:
    """The ordered agents of one node, lowest layer first."""

    def __init__(self, node: "MacedonNode",  # noqa: F821 - forward reference
                 agent_classes: Sequence[Type[Agent]]) -> None:
        if not agent_classes:
            raise StackError("a protocol stack needs at least one agent class")
        self.node = node
        self.agents: list[Agent] = []
        for agent_class in agent_classes:
            agent = agent_class(node)
            if self.agents:
                below = self.agents[-1]
                below.upper = agent
                agent.lower = below
            self.agents.append(agent)
        self._by_protocol = {agent.PROTOCOL: agent for agent in self.agents}
        if len(self._by_protocol) != len(self.agents):
            raise StackError("duplicate protocol names in one stack")

    # ------------------------------------------------------------------ access
    @property
    def lowest(self) -> Agent:
        return self.agents[0]

    @property
    def highest(self) -> Agent:
        return self.agents[-1]

    def agent(self, protocol: str) -> Agent:
        try:
            return self._by_protocol[protocol]
        except KeyError as exc:
            raise StackError(
                f"no agent for protocol {protocol!r} in stack "
                f"(have: {sorted(self._by_protocol)})"
            ) from exc

    def __contains__(self, protocol: str) -> bool:
        return protocol in self._by_protocol

    def __iter__(self):
        return iter(self.agents)

    def __len__(self) -> int:
        return len(self.agents)

    def find_for_message(self, protocol: str) -> Optional[Agent]:
        """The agent that owns wire messages tagged with *protocol*, if any."""
        return self._by_protocol.get(protocol)

    # ------------------------------------------------------------------- checks
    def validate_layering(self) -> None:
        """Check declared ``uses`` relationships against the actual stack order.

        A generated agent whose specification says ``protocol scribe uses
        pastry`` must sit directly above an agent whose protocol name is
        ``pastry`` (or a protocol that itself claims to provide it).  The
        lowest layer must not declare a base protocol.
        """
        for index, agent in enumerate(self.agents):
            base = agent.BASE_PROTOCOL
            if index == 0:
                if base:
                    raise StackError(
                        f"lowest-layer protocol {agent.PROTOCOL!r} declares "
                        f"'uses {base}' but has no layer below"
                    )
                continue
            if base and self.agents[index - 1].PROTOCOL != base:
                raise StackError(
                    f"protocol {agent.PROTOCOL!r} declares 'uses {base}' but is "
                    f"layered above {self.agents[index - 1].PROTOCOL!r}"
                )

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``splitstream/scribe/pastry``."""
        return "/".join(agent.PROTOCOL for agent in reversed(self.agents))
